"""Figure 12: table-based TMC vs PTMC (inline metadata + LLP).

Eliminating the metadata lookup lifts both compressible and
incompressible workloads; graphs still lose under Static-PTMC (their
slowdown is the remaining inherent compression cost, Fig. 14).
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_speedups
from repro.sim.results import geometric_mean
from repro.sim.runner import compare
from repro.workloads import GAP, MEMORY_INTENSIVE, MIXES, SPEC06, SPEC17


def _fig12(config):
    speedups = {}
    for workload in MEMORY_INTENSIVE:
        speedups[workload.name] = {
            "tmc_table": compare(workload, "tmc_table", config),
            "static_ptmc": compare(workload, "static_ptmc", config),
        }
    return speedups


def test_fig12_static_ptmc_vs_table(benchmark, config):
    speedups = run_once(benchmark, lambda: _fig12(config))
    print(banner("Fig. 12 — table-based TMC vs Static-PTMC (speedup)"))
    print(format_speedups("", speedups))
    save_results("fig12", speedups)

    def mean(workloads, design):
        return geometric_mean(speedups[w.name][design] for w in workloads)

    spec = SPEC06 + SPEC17
    print(
        f"\ngeomeans: SPEC table={mean(spec, 'tmc_table'):.3f} "
        f"ptmc={mean(spec, 'static_ptmc'):.3f} | "
        f"GAP table={mean(GAP, 'tmc_table'):.3f} "
        f"ptmc={mean(GAP, 'static_ptmc'):.3f} | "
        f"MIX table={mean(MIXES, 'tmc_table'):.3f} "
        f"ptmc={mean(MIXES, 'static_ptmc'):.3f}"
    )
    # shapes from the paper:
    assert mean(spec, "static_ptmc") > 1.05, "PTMC speeds up SPEC substantially"
    assert mean(spec, "static_ptmc") > mean(spec, "tmc_table")
    assert mean(GAP, "static_ptmc") > mean(GAP, "tmc_table"), (
        "PTMC removes the metadata bloat that cripples graphs"
    )
    assert mean(GAP, "static_ptmc") < 1.0, "graphs still lose under Static-PTMC"
