"""Helpers for ablation benchmarks that need customized controllers."""

from repro.sim.results import weighted_speedup
from repro.sim.runner import simulate
from repro.sim.system import SimulatedSystem
from repro.workloads import get_workload


def run_custom(workload_name, design, config, mutate=None):
    """Simulate with a post-construction tweak applied to the system.

    ``mutate(system)`` may replace the controller's compressor, config or
    policy before the run; the uncompressed baseline comes from the shared
    runner cache.
    """
    workload = get_workload(workload_name)
    system = SimulatedSystem(workload, design, config)
    if mutate is not None:
        mutate(system)
    result = system.run()
    baseline = simulate(workload, "uncompressed", config)
    return result, weighted_speedup(result, baseline)
