"""Ablation: DRAM page policy and refresh (USIMM-substrate sensitivity).

PTMC's gain must not hinge on a favourable DRAM configuration: this
bench re-runs the comparison under closed-page mode and with refresh
disabled, checking the speedup survives each variation.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.sim.runner import compare

VARIANTS = {
    "open+refresh": {},
    "open-no-refresh": {"refresh": False},
    "closed+refresh": {"page_policy": "closed"},
    "closed-no-refresh": {"page_policy": "closed", "refresh": False},
}


def _ablation(config):
    rows = {}
    for name, overrides in VARIANTS.items():
        cfg = config.with_(**overrides)
        rows[name] = {
            "spec_speedup": compare("lbm06", "dynamic_ptmc", cfg),
            "gap_speedup": compare("bfs.twitter", "dynamic_ptmc", cfg),
        }
    return rows


def test_ablation_dram_policy(benchmark, config):
    rows = run_once(benchmark, lambda: _ablation(config))
    print(banner("Ablation — DRAM page policy / refresh"))
    print(
        format_table(
            ["variant", "SPEC speedup", "GAP speedup"],
            [
                [name, f"{r['spec_speedup']:.3f}", f"{r['gap_speedup']:.3f}"]
                for name, r in rows.items()
            ],
        )
    )
    save_results("abl_dram_policy", rows)
    for name, r in rows.items():
        assert r["spec_speedup"] > 1.15, f"{name}: SPEC gain must survive"
        assert r["gap_speedup"] > 0.93, f"{name}: robustness must survive"