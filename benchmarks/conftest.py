"""Shared configuration for the figure/table benchmarks.

Every benchmark regenerates one of the paper's evaluation artefacts.
Simulations are memoized process-wide (``repro.sim.runner``) and
persisted to an on-disk result cache (``repro.sim.diskcache``), so
designs and baselines shared between figures are only simulated once per
pytest session — and a *repeat* session is served from disk without
executing any simulation at all.  The cache lives in
``benchmarks/.simcache`` (override with ``$REPRO_CACHE_DIR``); delete it
or run ``repro cache clear`` after changing simulator semantics.  Each
benchmark prints its rows (the "figure") and dumps them as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can cite them.

Scale note: these run the ``bench_config`` system (DESIGN.md §4) — a
proportionally scaled machine with short synthetic traces.  Shapes and
orderings are the reproduction target, not absolute values.
"""

import json
import os
import pathlib

import pytest

from repro.sim import runner
from repro.sim.config import bench_config

#: the one config every figure uses (baselines shared via the runner cache)
BENCH_CONFIG = bench_config(ops_per_core=4000, warmup_ops=6000)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: session-scoped persistent result cache shared by every figure/table
CACHE_DIR = pathlib.Path(
    os.environ.get("REPRO_CACHE_DIR", pathlib.Path(__file__).parent / ".simcache")
)


def pytest_configure(config):
    runner.configure_disk_cache(CACHE_DIR)


def pytest_terminal_summary(terminalreporter):
    """Report (and persist) how much the result caches saved this session."""
    stats = runner.execution_stats()
    serviced = stats["executed"] + stats["memory_hits"] + stats["disk_hits"]
    if not serviced:
        return
    save_results("_cache_stats", {**stats, "cache_dir": str(CACHE_DIR)})
    terminalreporter.write_line(
        f"sim result cache [{CACHE_DIR}]: {stats['executed']:.0f} executed "
        f"({stats['sim_seconds']:.1f}s), {stats['disk_hits']:.0f} disk hits, "
        f"{stats['memory_hits']:.0f} memory hits "
        f"({stats['hit_seconds']:.2f}s serving replays)"
    )


def save_results(experiment_id: str, payload) -> None:
    """Persist a benchmark's rows for the experiment index."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))


@pytest.fixture(scope="session")
def config():
    return BENCH_CONFIG


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Figure generation is deterministic and (via the runner cache)
    idempotent, so a single round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
