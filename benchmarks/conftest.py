"""Shared configuration for the figure/table benchmarks.

Every benchmark regenerates one of the paper's evaluation artefacts.
Simulations are memoized process-wide (``repro.sim.runner``), so designs
and baselines shared between figures are only simulated once per pytest
session.  Each benchmark prints its rows (the "figure") and dumps them as
JSON under ``benchmarks/results/`` so EXPERIMENTS.md can cite them.

Scale note: these run the ``bench_config`` system (DESIGN.md §4) — a
proportionally scaled machine with short synthetic traces.  Shapes and
orderings are the reproduction target, not absolute values.
"""

import json
import pathlib

import pytest

from repro.sim.config import bench_config

#: the one config every figure uses (baselines shared via the runner cache)
BENCH_CONFIG = bench_config(ops_per_core=4000, warmup_ops=6000)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_results(experiment_id: str, payload) -> None:
    """Persist a benchmark's rows for the experiment index."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))


@pytest.fixture(scope="session")
def config():
    return BENCH_CONFIG


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Figure generation is deterministic and (via the runner cache)
    idempotent, so a single round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
