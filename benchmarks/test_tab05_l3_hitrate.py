"""Table V: L3 hit-rate, baseline vs Dynamic-PTMC.

The co-fetched lines installed in L3 are useful: SPEC's L3 hit rate
rises markedly (17.3% -> 23.9% in the paper), graphs are untouched.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.sim.runner import simulate
from repro.workloads import GAP, MIXES, SPEC06, SPEC17

SUITES = {"SPEC": SPEC06 + SPEC17, "GAP": GAP, "MIX": MIXES}


def _tab05(config):
    rows = {}
    for suite, workloads in SUITES.items():
        base = [simulate(w, "uncompressed", config).l3_hit_rate for w in workloads]
        ptmc = [simulate(w, "dynamic_ptmc", config).l3_hit_rate for w in workloads]
        rows[suite] = {
            "baseline": sum(base) / len(base),
            "dynamic_ptmc": sum(ptmc) / len(ptmc),
        }
    return rows


def test_tab05_l3_hit_rate(benchmark, config):
    rows = run_once(benchmark, lambda: _tab05(config))
    print(banner("Table V — L3 hit rate: baseline vs Dynamic-PTMC"))
    print(
        format_table(
            ["suite", "baseline", "dynamic_ptmc"],
            [
                [s, f"{r['baseline']:.1%}", f"{r['dynamic_ptmc']:.1%}"]
                for s, r in rows.items()
            ],
        )
    )
    save_results("tab05", rows)
    # shapes: big improvement on SPEC; no damage to GAP
    assert rows["SPEC"]["dynamic_ptmc"] > rows["SPEC"]["baseline"] + 0.05
    assert rows["GAP"]["dynamic_ptmc"] >= rows["GAP"]["baseline"] - 0.02
    assert rows["MIX"]["dynamic_ptmc"] >= rows["MIX"]["baseline"]
