"""Ablation: Last Compressibility Table size (paper uses 512 entries).

Accuracy saturates once the LCT covers the concurrently hot pages —
beyond that, more entries buy nothing, which is why 128 bytes suffice.
"""

from benchmarks.ablation_utils import run_custom
from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.core.ptmc import PTMCConfig


def _ablation(config):
    rows = {}
    for entries in (16, 64, 512, 4096):
        cfg = config.with_(ptmc=PTMCConfig(lct_entries=entries))
        result, speedup = run_custom("soplex06", "static_ptmc", cfg)
        rows[entries] = {
            "llp_accuracy": result.llp_accuracy or 0.0,
            "speedup": speedup,
            "storage_bytes": entries * 2 / 8,
        }
    return rows


def test_ablation_llp_size(benchmark, config):
    rows = run_once(benchmark, lambda: _ablation(config))
    print(banner("Ablation — LCT entries (LLP size)"))
    print(
        format_table(
            ["entries", "LLP accuracy", "speedup", "storage"],
            [
                [e, f"{r['llp_accuracy']:.1%}", f"{r['speedup']:.3f}", f"{r['storage_bytes']:.0f} B"]
                for e, r in rows.items()
            ],
        )
    )
    save_results("abl_llp_size", {str(k): v for k, v in rows.items()})
    # accuracy is monotone-ish in size and saturates by 512 entries
    assert rows[512]["llp_accuracy"] >= rows[16]["llp_accuracy"] - 0.02
    assert abs(rows[4096]["llp_accuracy"] - rows[512]["llp_accuracy"]) < 0.05
