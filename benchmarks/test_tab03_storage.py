"""Table III: storage overhead of the PTMC structures (< 300 bytes)."""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.core.policy import SamplingPolicy
from repro.core.ptmc import PTMCController
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem


def _tab03():
    controller = PTMCController(
        PhysicalMemory(1 << 28),
        DRAMSystem(),
        policy=SamplingPolicy(counter_bits=12, num_cores=8, per_core=True),
    )
    return {name: bits // 8 for name, bits in controller.storage_bits().items()}


def test_tab03_storage_overhead(benchmark):
    table = run_once(benchmark, _tab03)
    total = sum(table.values())
    print(banner("Table III — storage overhead of PTMC structures"))
    rows = [[name, f"{size} B"] for name, size in table.items()]
    rows.append(["total", f"{total} B"])
    print(format_table(["structure", "storage"], rows))
    save_results("tab03", {**table, "total": total})
    # the paper's budget, structure by structure
    assert table["marker_2to1"] == 4
    assert table["marker_4to1"] == 4
    assert table["marker_invalid"] == 64
    assert table["line_inversion_table"] == 64
    assert table["line_location_predictor"] == 128
    assert total < 300
