"""Extension: PTMC vs MemZip-style TMC (paper §I, §II-B).

MemZip obtains TMC on *non-commodity* DIMMs: variable burst lengths cut
each access's bus time, but there is no neighbour co-fetch and a
metadata table must be consulted before every read.  The paper's claim
is that PTMC achieves transparent compression on commodity parts without
giving anything up — so Dynamic-PTMC should at least match the
non-commodity design on compressible workloads and beat it where
MemZip's metadata traffic bites.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.sim.runner import compare, simulate

WORKLOADS = ["lbm06", "libquantum06", "soplex06", "mcf06", "bfs.twitter", "pr.web"]


def _comparison(config):
    rows = {}
    for workload in WORKLOADS:
        memzip = simulate(workload, "memzip", config)
        rows[workload] = {
            "memzip": compare(workload, "memzip", config),
            "dynamic_ptmc": compare(workload, "dynamic_ptmc", config),
            "memzip_md_hit": memzip.metadata_hit_rate or 0.0,
        }
    return rows


def test_memzip_comparison(benchmark, config):
    rows = run_once(benchmark, lambda: _comparison(config))
    print(banner("Extension — MemZip (non-commodity) vs Dynamic-PTMC (commodity)"))
    print(
        format_table(
            ["workload", "memzip", "dynamic_ptmc", "memzip metadata hit"],
            [
                [w, f"{r['memzip']:.3f}", f"{r['dynamic_ptmc']:.3f}", f"{r['memzip_md_hit']:.1%}"]
                for w, r in rows.items()
            ],
        )
    )
    save_results("abl_memzip", rows)
    spec = [w for w in WORKLOADS if "." not in w]
    gap = [w for w in WORKLOADS if "." in w]
    # commodity PTMC is competitive with the non-commodity design on SPEC
    spec_wins = sum(rows[w]["dynamic_ptmc"] >= rows[w]["memzip"] - 0.05 for w in spec)
    assert spec_wins >= len(spec) - 1
    # and strictly more robust on graphs (MemZip pays metadata, PTMC bails out)
    for w in gap:
        assert rows[w]["dynamic_ptmc"] >= rows[w]["memzip"] - 0.02
