"""Table VI: next-line prefetching vs Dynamic-PTMC.

PTMC's neighbour installs look like prefetching but cost no bandwidth;
an actual next-line prefetcher pays an access per prefetch and *loses*
on bandwidth-bound workloads (paper: -5.7% SPEC, -21.1% GAP, -7.3% MIX
vs PTMC's +8.5% / 0.0% / +4.2%).
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.sim.results import geometric_mean
from repro.sim.runner import compare
from repro.workloads import GAP, MIXES, SPEC06, SPEC17

SUITES = {"SPEC": SPEC06 + SPEC17, "GAP": GAP, "MIX": MIXES}


def _tab06(config):
    rows = {}
    for suite, workloads in SUITES.items():
        rows[suite] = {
            "nextline_prefetch": geometric_mean(
                compare(w, "prefetch", config) for w in workloads
            ),
            "dynamic_ptmc": geometric_mean(
                compare(w, "dynamic_ptmc", config) for w in workloads
            ),
        }
    return rows


def test_tab06_prefetch_comparison(benchmark, config):
    rows = run_once(benchmark, lambda: _tab06(config))
    print(banner("Table VI — next-line prefetch vs Dynamic-PTMC (speedup)"))
    print(
        format_table(
            ["suite", "next-line prefetch", "dynamic_ptmc"],
            [
                [s, f"{r['nextline_prefetch']:.3f}", f"{r['dynamic_ptmc']:.3f}"]
                for s, r in rows.items()
            ],
        )
    )
    save_results("tab06", rows)
    # shapes: prefetching loses everywhere (extra bandwidth); PTMC never does
    assert all(r["nextline_prefetch"] < 1.0 for r in rows.values())
    assert all(r["dynamic_ptmc"] > r["nextline_prefetch"] for r in rows.values())
    assert rows["GAP"]["nextline_prefetch"] < rows["SPEC"]["nextline_prefetch"], (
        "prefetching hurts graphs the most"
    )
