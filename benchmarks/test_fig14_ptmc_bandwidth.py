"""Figure 14: PTMC bandwidth breakdown, normalized to uncompressed.

With metadata eliminated, what remains is data traffic, LLP-misprediction
second accesses, and the inherent cost of compression: clean (compressed)
writebacks plus invalidate writes — dominant on graphs, which motivates
Dynamic-PTMC.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_bandwidth, stacked_chart
from repro.sim.results import normalized_bandwidth
from repro.sim.runner import simulate
from repro.workloads import MEMORY_INTENSIVE


def _fig14(config):
    stacks = {}
    for workload in MEMORY_INTENSIVE:
        baseline = simulate(workload, "uncompressed", config)
        ptmc = simulate(workload, "static_ptmc", config)
        norm = normalized_bandwidth(ptmc, baseline)
        stacks[workload.name] = {
            "data": norm.get("data_read", 0.0) + norm.get("data_write", 0.0),
            "clean_evict_inv": norm.get("clean_writeback", 0.0)
            + norm.get("invalidate_write", 0.0),
            "llp_mispredict": norm.get("mispredict_read", 0.0),
        }
    return stacks


def test_fig14_ptmc_bandwidth(benchmark, config):
    stacks = run_once(benchmark, lambda: _fig14(config))
    print(banner("Fig. 14 — PTMC bandwidth breakdown (normalized to uncompressed)"))
    print(format_bandwidth("", stacks))
    print("\nstacked view (| marks the uncompressed baseline):")
    print(stacked_chart(stacks))
    save_results("fig14", stacks)
    spec = {k: v for k, v in stacks.items() if "." not in k and not k.startswith("mix")}
    gap = {k: v for k, v in stacks.items() if "." in k}
    spec_total = sum(sum(v.values()) for v in spec.values()) / len(spec)
    gap_overhead = sum(v["clean_evict_inv"] for v in gap.values()) / len(gap)
    # shapes: SPEC saves net bandwidth; graphs pay a visible
    # clean-evict+invalidate overhead
    assert spec_total < 1.0, "PTMC reduces total SPEC traffic"
    assert gap_overhead > 0.0
    # mispredict traffic is a small slice everywhere (LLP works)
    assert all(v["llp_mispredict"] < 0.2 for v in stacks.values())
