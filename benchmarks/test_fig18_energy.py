"""Figure 18: power, energy and EDP of Dynamic-PTMC vs uncompressed.

Fewer DRAM requests cut dynamic energy; the speedup cuts background
energy and EDP (paper: -5% energy, -10% EDP at paper scale).
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.energy import relative_energy
from repro.sim.results import geometric_mean
from repro.sim.runner import simulate
from repro.workloads import HIGH_MPKI


def _fig18(config):
    rows = {}
    for workload in HIGH_MPKI:
        base = simulate(workload, "uncompressed", config)
        ours = simulate(workload, "dynamic_ptmc", config)
        rel = relative_energy(ours, base)
        rows[workload.name] = {
            "speedup": rel.speedup,
            "power": rel.power,
            "energy": rel.energy,
            "edp": rel.edp,
        }
    return rows


def test_fig18_energy(benchmark, config):
    rows = run_once(benchmark, lambda: _fig18(config))
    print(banner("Fig. 18 — Dynamic-PTMC energy metrics (normalized to baseline)"))
    print(
        format_table(
            ["workload", "speedup", "power", "energy", "EDP"],
            [
                [n, f"{r['speedup']:.3f}", f"{r['power']:.3f}", f"{r['energy']:.3f}", f"{r['edp']:.3f}"]
                for n, r in rows.items()
            ],
        )
    )
    save_results("fig18", rows)
    mean_energy = geometric_mean(r["energy"] for r in rows.values())
    mean_edp = geometric_mean(r["edp"] for r in rows.values())
    print(f"\ngeomean energy {mean_energy:.3f}, EDP {mean_edp:.3f}")
    # shapes: net energy and EDP improve on average; EDP improves more
    assert mean_energy < 1.0
    assert mean_edp < mean_energy
