"""Figure 4: bandwidth of table-based TMC, normalized to uncompressed.

The paper's stack splits traffic into data, additional (clean) writes and
metadata; metadata alone can exceed 50% extra bandwidth on graph
workloads, which is the motivation for inline metadata.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_bandwidth
from repro.sim.results import normalized_bandwidth
from repro.sim.runner import simulate
from repro.workloads import HIGH_MPKI


def _fig04(config):
    stacks = {}
    for workload in HIGH_MPKI:
        baseline = simulate(workload, "uncompressed", config)
        table = simulate(workload, "tmc_table", config)
        norm = normalized_bandwidth(table, baseline)
        stacks[workload.name] = {
            "data": norm.get("data_read", 0.0) + norm.get("data_write", 0.0),
            "additional_writes": norm.get("clean_writeback", 0.0)
            + norm.get("maintenance", 0.0),
            "metadata": norm.get("metadata_read", 0.0)
            + norm.get("metadata_write", 0.0),
        }
    return stacks


def test_fig04_metadata_bandwidth(benchmark, config):
    stacks = run_once(benchmark, lambda: _fig04(config))
    print(banner("Fig. 4 — table-based TMC bandwidth (normalized to uncompressed)"))
    print(format_bandwidth("", stacks))
    save_results("fig04", stacks)
    # shape: metadata is a visible overhead overall, and is worst on graphs
    gap_meta = [v["metadata"] for k, v in stacks.items() if "." in k]
    spec_meta = [v["metadata"] for k, v in stacks.items() if "." not in k]
    assert max(gap_meta) > 0.3, "graph workloads should pay heavy metadata traffic"
    assert sum(gap_meta) / len(gap_meta) > sum(spec_meta) / len(spec_meta)
