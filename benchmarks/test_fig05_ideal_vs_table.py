"""Figure 5: speedup of Ideal TMC (no metadata) vs TMC with metadata.

The paper's motivation plot: an idealized compressed memory gains
(12.3% average on SPEC at paper scale) while the same design paying
metadata lookups loses badly on graphs (up to 49% slowdown).
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_speedups
from repro.sim.results import geometric_mean
from repro.sim.runner import compare
from repro.workloads import GAP, HIGH_MPKI


def _fig05(config):
    speedups = {}
    for workload in HIGH_MPKI:
        speedups[workload.name] = {
            "ideal_tmc": compare(workload, "ideal", config),
            "tmc_with_metadata": compare(workload, "tmc_table", config),
        }
    return speedups


def test_fig05_ideal_vs_table(benchmark, config):
    speedups = run_once(benchmark, lambda: _fig05(config))
    print(banner("Fig. 5 — Ideal TMC vs table-based TMC (speedup over uncompressed)"))
    print(format_speedups("", speedups))
    ideal_mean = geometric_mean(v["ideal_tmc"] for v in speedups.values())
    table_mean = geometric_mean(v["tmc_with_metadata"] for v in speedups.values())
    print(f"\ngeomean: ideal={ideal_mean:.3f}  table={table_mean:.3f}")
    save_results("fig05", speedups)
    # shapes: ideal never loses; the table-based design loses on graphs
    assert all(v["ideal_tmc"] >= 0.98 for v in speedups.values())
    gap_table = [speedups[w.name]["tmc_with_metadata"] for w in GAP]
    assert min(gap_table) < 0.8, "metadata lookups should badly hurt graphs"
    assert ideal_mean > table_mean
