"""Table IV: sensitivity of Dynamic-PTMC's gain to the channel count.

PTMC's adjacent-line co-fetch is a latency/bandwidth benefit that holds
with 1, 2 or 4 channels (paper: 8.1% / 8.5% / 7.8%).  A representative
SPEC subset keeps the sweep tractable; the paper reports the average.
"""

from dataclasses import replace

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.sim.results import geometric_mean
from repro.sim.runner import compare
from repro.workloads import GAP, SPEC06, SPEC17

WORKLOADS = [SPEC06[0], SPEC06[2], SPEC06[4], SPEC17[0], SPEC17[2], GAP[0]]


def _tab04(config):
    rows = {}
    for channels in (1, 2, 4):
        cfg = config.with_(geometry=replace(config.geometry, channels=channels))
        rows[channels] = geometric_mean(
            compare(w, "dynamic_ptmc", cfg) for w in WORKLOADS
        )
    return rows


def test_tab04_channel_sensitivity(benchmark, config):
    rows = run_once(benchmark, lambda: _tab04(config))
    print(banner("Table IV — Dynamic-PTMC speedup vs number of channels"))
    print(
        format_table(
            ["channels", "avg speedup"],
            [[ch, f"{value:.3f}"] for ch, value in rows.items()],
        )
    )
    save_results("tab04", {str(k): v for k, v in rows.items()})
    # shape: consistent gains at every channel count — the benefit is not
    # an artifact of a starved configuration
    assert all(value > 1.03 for value in rows.values())
    spread = max(rows.values()) - min(rows.values())
    assert spread < 0.4, "gain should be broadly stable across channel counts"
