"""Figure 17: Dynamic-PTMC speedup across the extended 64-workload set.

Sorted speedup curve over memory-intensive *and* cache-friendly
workloads: robust (no slowdowns beyond noise) with large gains on the
compressible, bandwidth-bound end.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table, sorted_curve
from repro.sim.runner import compare
from repro.workloads import ALL_64


def _fig17(config):
    return {
        workload.name: compare(workload, "dynamic_ptmc", config)
        for workload in ALL_64
    }


def test_fig17_all_64_workloads(benchmark, config):
    speedups = run_once(benchmark, lambda: _fig17(config))
    ordered = sorted(speedups.items(), key=lambda kv: kv[1])
    print(banner("Fig. 17 — Dynamic-PTMC speedup, 64 workloads, sorted"))
    print(
        format_table(
            ["workload", "speedup"], [[name, f"{value:.3f}"] for name, value in ordered]
        )
    )
    print("\nsorted-speedup curve (quantiles, | marks 1.0):")
    print(sorted_curve(speedups))
    save_results("fig17", speedups)
    values = [v for _, v in ordered]
    # paper shapes: robustness across the whole roster, gains at the top
    assert values[0] > 0.93, "no meaningful slowdown anywhere"
    assert values[-1] > 1.3, "large gains on the best workloads"
    flat = sum(1 for v in values if 0.97 <= v <= 1.03)
    assert flat >= 10, "many cache-friendly workloads are unaffected"
