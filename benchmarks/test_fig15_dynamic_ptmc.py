"""Figure 15: Static-PTMC vs Dynamic-PTMC vs Ideal TMC.

The headline result: Dynamic-PTMC keeps compression's gains where it
helps and disables it where it hurts, approaching the zero-overhead ideal
on average with (near) no slowdown anywhere.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_speedups, hbar_chart
from repro.sim.results import geometric_mean
from repro.sim.runner import compare
from repro.workloads import GAP, MEMORY_INTENSIVE, SPEC06, SPEC17


def _fig15(config):
    speedups = {}
    for workload in MEMORY_INTENSIVE:
        speedups[workload.name] = {
            "tmc_table": compare(workload, "tmc_table", config),
            "static_ptmc": compare(workload, "static_ptmc", config),
            "dynamic_ptmc": compare(workload, "dynamic_ptmc", config),
            "ideal_tmc": compare(workload, "ideal", config),
        }
    return speedups


def test_fig15_dynamic_ptmc(benchmark, config):
    speedups = run_once(benchmark, lambda: _fig15(config))
    print(banner("Fig. 15 — Static-PTMC, Dynamic-PTMC and Ideal TMC (speedup)"))
    print(format_speedups("", speedups))
    save_results("fig15", speedups)

    def mean(workloads, design):
        return geometric_mean(speedups[w.name][design] for w in workloads)

    spec = SPEC06 + SPEC17
    all_mean = {
        d: geometric_mean(v[d] for v in speedups.values())
        for d in ("tmc_table", "static_ptmc", "dynamic_ptmc", "ideal_tmc")
    }
    print("\ngeomean speedups (| marks 1.0):")
    print(hbar_chart(all_mean, reference=1.0))

    # paper shapes:
    worst_dynamic = min(v["dynamic_ptmc"] for v in speedups.values())
    assert worst_dynamic > 0.93, "Dynamic-PTMC must be (close to) no-hurt"
    assert mean(GAP, "dynamic_ptmc") > mean(GAP, "static_ptmc"), (
        "Dynamic recovers the graph slowdown"
    )
    assert mean(spec, "dynamic_ptmc") > 1.05, "Dynamic keeps the SPEC gains"
    assert all_mean["ideal_tmc"] >= all_mean["dynamic_ptmc"] - 0.02
    # Dynamic lands a solid fraction of the idealized headroom
    ideal_gain = all_mean["ideal_tmc"] - 1.0
    dynamic_gain = all_mean["dynamic_ptmc"] - 1.0
    assert dynamic_gain > 0.4 * ideal_gain
