"""Figure 6: probability of adjacent line-pairs compressing to 64B vs 60B.

Reserving 4 bytes for the inline marker barely reduces the fraction of
compressible pairs (38% -> 36% in the paper), which is what makes inline
metadata essentially free in compression ratio.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.compression import HybridCompressor
from repro.workloads import HIGH_MPKI, WorkloadTraceGenerator

PAIRS_PER_WORKLOAD = 512


def _pair_fit_fraction(workload, budget: int) -> float:
    """Fraction of adjacent pairs whose payloads + headers fit ``budget``."""
    generator = WorkloadTraceGenerator(workload, core_id=0)
    hybrid = HybridCompressor()
    fits = 0
    for pair_index in range(PAIRS_PER_WORKLOAD):
        # stride across pages so every data family is represented
        base = (pair_index * 130) % (workload.footprint_lines - 1) & ~1
        sizes = []
        for offset in range(2):
            payload = hybrid.compress(generator.data.line(base + offset))
            if payload is None:
                sizes = None
                break
            sizes.append(len(payload))
        if sizes is not None and sum(sizes) + 2 <= budget:
            fits += 1
    return fits / PAIRS_PER_WORKLOAD


def _fig06():
    rows = {}
    for workload in HIGH_MPKI:
        rows[workload.name] = {
            "double_64": _pair_fit_fraction(workload, 64),
            "double_60": _pair_fit_fraction(workload, 60),
        }
    avg64 = sum(r["double_64"] for r in rows.values()) / len(rows)
    avg60 = sum(r["double_60"] for r in rows.values()) / len(rows)
    rows["average"] = {"double_64": avg64, "double_60": avg60}
    return rows


def test_fig06_pair_compressibility(benchmark):
    rows = run_once(benchmark, _fig06)
    print(banner("Fig. 6 — % of adjacent pairs compressing to 64B / 60B"))
    print(
        format_table(
            ["workload", "to 64B", "to 60B (marker reserved)"],
            [[n, f"{r['double_64']:.1%}", f"{r['double_60']:.1%}"] for n, r in rows.items()],
        )
    )
    save_results("fig06", rows)
    avg = rows["average"]
    # shape: reserving the marker costs only a small slice of pairs
    assert avg["double_64"] >= avg["double_60"]
    assert avg["double_64"] - avg["double_60"] < 0.10
    assert avg["double_64"] > 0.25  # a solid fraction of pairs co-compress
