"""Ablation: compression algorithm under PTMC (paper §VII-A).

PTMC is orthogonal to the per-line compressor.  FPC alone, BDI alone,
the paper's FPC+BDI hybrid and an extended FPC+BDI+C-Pack stack all run
unchanged through the same controller; richer algorithm mixes co-locate
more groups and gain more.
"""

from benchmarks.ablation_utils import run_custom
from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.compression import BDI, CPack, FPC, HybridCompressor

STACKS = {
    "fpc_only": lambda: HybridCompressor([FPC()]),
    "bdi_only": lambda: HybridCompressor([BDI()]),
    "fpc+bdi": lambda: HybridCompressor([FPC(), BDI()]),
    "fpc+bdi+cpack": lambda: HybridCompressor([FPC(), BDI(), CPack()]),
}


def _ablation(config):
    rows = {}
    for name, factory in STACKS.items():
        def mutate(system, factory=factory):
            system.controller.compressor = factory()

        result, speedup = run_custom("lbm06", "static_ptmc", config, mutate)
        rows[name] = {
            "speedup": speedup,
            "l3_hit_rate": result.l3_hit_rate,
            "llp_accuracy": result.llp_accuracy or 0.0,
        }
    return rows


def test_ablation_compression_algorithm(benchmark, config):
    rows = run_once(benchmark, lambda: _ablation(config))
    print(banner("Ablation — compression algorithm under PTMC (§VII-A)"))
    print(
        format_table(
            ["algorithms", "speedup", "L3 hit", "LLP accuracy"],
            [
                [n, f"{r['speedup']:.3f}", f"{r['l3_hit_rate']:.1%}", f"{r['llp_accuracy']:.1%}"]
                for n, r in rows.items()
            ],
        )
    )
    save_results("abl_compression_algorithm", rows)
    # every stack is functional and beneficial on a compressible workload;
    # the hybrid dominates its components
    assert all(r["speedup"] > 1.0 for r in rows.values())
    assert rows["fpc+bdi"]["speedup"] >= rows["fpc_only"]["speedup"] - 0.03
    assert rows["fpc+bdi"]["speedup"] >= rows["bdi_only"]["speedup"] - 0.03
