"""Ablation: marker width (4B vs 5B vs 8B).

The paper picks 4 bytes for 16GB memories and recommends 5 bytes for
hundreds of gigabytes.  Wider markers shrink the payload budget (fewer
pairs/quads fit) while driving the already negligible collision
probability further down — this bench quantifies the trade.
"""

from benchmarks.ablation_utils import run_custom
from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.compression import HybridCompressor
from repro.core.packing import compress_group
from repro.core.ptmc import PTMCConfig
from repro.workloads import WorkloadTraceGenerator, get_workload

PAIRS = 384


def _pair_fit(workload_name: str, marker_size: int) -> float:
    workload = get_workload(workload_name)
    generator = WorkloadTraceGenerator(workload, core_id=0)
    hybrid = HybridCompressor()
    marker = b"\x00" * marker_size
    fits = 0
    for pair in range(PAIRS):
        # stride across pages so every data family is represented
        base = (pair * 130) % (workload.footprint_lines - 1) & ~1
        lines = [generator.data.line(base + i) for i in range(2)]
        if compress_group(hybrid, lines, marker) is not None:
            fits += 1
    return fits / PAIRS


def _ablation(config):
    rows = {"0 (no marker)": {"pair_fit": _pair_fit("soplex06", 0)}}
    for marker_size in (4, 5, 8):
        cfg = config.with_(ptmc=PTMCConfig(marker_size=marker_size))
        result, speedup = run_custom("soplex06", "static_ptmc", cfg)
        rows[str(marker_size)] = {
            "pair_fit": _pair_fit("soplex06", marker_size),
            "speedup": speedup,
            "inversions": result.extras.get("inversions", 0),
        }
    return rows


def test_ablation_marker_width(benchmark, config):
    rows = run_once(benchmark, lambda: _ablation(config))
    print(banner("Ablation — marker width"))
    print(
        format_table(
            ["marker bytes", "pair-fit rate", "speedup", "inversions"],
            [
                [
                    m,
                    f"{r['pair_fit']:.1%}",
                    f"{r['speedup']:.3f}" if "speedup" in r else "-",
                    int(r["inversions"]) if "inversions" in r else "-",
                ]
                for m, r in rows.items()
            ],
        )
    )
    save_results("abl_marker_width", rows)
    # the marker reserve itself costs a small slice of pairs (Fig. 6's gap)
    assert rows["0 (no marker)"]["pair_fit"] >= rows["4"]["pair_fit"]
    # but widening 4 -> 8 bytes costs (nearly) nothing for real data
    assert rows["4"]["pair_fit"] - rows["8"]["pair_fit"] < 0.05
    # collisions are statistically absent at every width
    assert all(r.get("inversions", 0) == 0 for r in rows.values())
    # and the performance is insensitive (the paper's 5B recommendation is free)
    assert abs(rows["4"]["speedup"] - rows["5"]["speedup"]) < 0.15
