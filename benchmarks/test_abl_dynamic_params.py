"""Ablation: Dynamic-PTMC counter width and sampling rate.

The decision must be stable across reasonable parameterizations: a SPEC
workload keeps compression on, a graph workload turns it off, regardless
of the exact counter width or sampled fraction.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.sim.config import SamplingConfig
from repro.sim.runner import compare, simulate

SWEEP = [
    {"counter_bits": 8, "sample_period": 4},
    {"counter_bits": 10, "sample_period": 4},
    {"counter_bits": 10, "sample_period": 8},
    {"counter_bits": 12, "sample_period": 4},
]


def _ablation(config):
    rows = {}
    for params in SWEEP:
        cfg = config.with_(
            sampling=SamplingConfig(per_core=False, benefit_weight=3, **params)
        )
        key = f"bits={params['counter_bits']},period={params['sample_period']}"
        spec = simulate("lbm06", "dynamic_ptmc", cfg)
        gap = simulate("bfs.twitter", "dynamic_ptmc", cfg)
        rows[key] = {
            "spec_speedup": compare("lbm06", "dynamic_ptmc", cfg),
            "gap_speedup": compare("bfs.twitter", "dynamic_ptmc", cfg),
            "spec_enabled": spec.extras.get("compression_enabled_final", 1.0),
            "gap_enabled": gap.extras.get("compression_enabled_final", 1.0),
        }
    return rows


def test_ablation_dynamic_parameters(benchmark, config):
    rows = run_once(benchmark, lambda: _ablation(config))
    print(banner("Ablation — Dynamic-PTMC counter width / sampling rate"))
    print(
        format_table(
            ["params", "SPEC speedup", "GAP speedup", "SPEC on?", "GAP on?"],
            [
                [
                    k,
                    f"{r['spec_speedup']:.3f}",
                    f"{r['gap_speedup']:.3f}",
                    "on" if r["spec_enabled"] >= 0.5 else "off",
                    "on" if r["gap_enabled"] >= 0.5 else "off",
                ]
                for k, r in rows.items()
            ],
        )
    )
    save_results("abl_dynamic_params", rows)
    for key, r in rows.items():
        assert r["spec_speedup"] > 1.1, f"{key}: SPEC gain lost"
        assert r["gap_speedup"] > 0.93, f"{key}: GAP robustness lost"
        assert r["spec_enabled"] >= 0.5, f"{key}: compression wrongly disabled"
