"""Ablation: ganged eviction vs retain-lines (paper footnote 7).

Ganged eviction forces compressed-group members out of the LLC together,
avoiding read-modify-write at the cost of early evictions.  The paper
found the difference against a retain-lines scheme minimal at its 8MB-LLC
scale (where group members stay co-resident for a long time); at this
reproduction's scaled LLC the retain scheme's RMW reads are a visible
cost, so the asserted shape is the design argument itself: ganged
eviction eliminates RMW traffic entirely and never performs worse.
"""

from benchmarks.ablation_utils import run_custom
from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.core.ptmc import PTMCConfig
from repro.types import Category

WORKLOADS = ("lbm06", "soplex06", "mcf06")


def _ablation(config):
    rows = {}
    for workload in WORKLOADS:
        row = {}
        for label, ganged in (("ganged", True), ("retain", False)):
            cfg = config.with_(ptmc=PTMCConfig(ganged_eviction=ganged))
            result, speedup = run_custom(workload, "static_ptmc", cfg)
            row[f"{label}_speedup"] = speedup
            row[f"{label}_l3_hit"] = result.l3_hit_rate
            row[f"{label}_rmw"] = result.dram.accesses_by_category.get(
                Category.MAINTENANCE, 0
            )
        rows[workload] = row
    return rows


def test_ablation_ganged_eviction(benchmark, config):
    rows = run_once(benchmark, lambda: _ablation(config))
    print(banner("Ablation — ganged eviction vs retain-lines (footnote 7)"))
    print(
        format_table(
            ["workload", "ganged", "retain", "ganged L3 hit", "retain L3 hit", "retain RMW reads"],
            [
                [
                    w,
                    f"{r['ganged_speedup']:.3f}",
                    f"{r['retain_speedup']:.3f}",
                    f"{r['ganged_l3_hit']:.1%}",
                    f"{r['retain_l3_hit']:.1%}",
                    int(r["retain_rmw"]),
                ]
                for w, r in rows.items()
            ],
        )
    )
    save_results("abl_ganged_eviction", rows)
    for workload, r in rows.items():
        # ganged eviction never performs read-modify-write; retain must
        assert r["ganged_rmw"] == 0, workload
        assert r["retain_rmw"] > 0, workload
        # and ganged eviction is never the slower choice (the design point)
        assert r["ganged_speedup"] >= r["retain_speedup"] - 0.05, workload
        # retaining lines keeps (or improves) LLC residency
        assert r["retain_l3_hit"] >= r["ganged_l3_hit"] - 0.05, workload
