"""Table II: workload characteristics (L3 MPKI, footprint) + data stats.

The paper's Table II defines which workloads count as memory intensive
(>= 5 L3 MPKI).  This bench regenerates the analog for the synthetic
roster and checks the roster's intended structure: every detailed-study
workload is memory-bound at the benchmark scale, graph footprints dwarf
SPEC's, and SPEC data compresses better than graph data.
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.workloads import GAP, MEMORY_INTENSIVE, SPEC06, SPEC17
from repro.workloads.characterize import characterize


def _tab02(config):
    rows = {}
    for workload in MEMORY_INTENSIVE:
        profile = characterize(workload, config)
        rows[workload.name] = {
            "suite": profile.suite,
            "l3_mpki": profile.l3_mpki,
            "footprint_mb": profile.footprint_mb,
            "mean_compressed_B": profile.mean_compressed_bytes,
            "pair_fit": profile.pair_fit_rate,
        }
    return rows


def test_tab02_workload_characteristics(benchmark, config):
    rows = run_once(benchmark, lambda: _tab02(config))
    print(banner("Table II — workload characteristics (scaled analog)"))
    print(
        format_table(
            ["workload", "suite", "L3 MPKI", "footprint MB", "mean comp. B", "pair fit"],
            [
                [
                    name,
                    r["suite"],
                    f"{r['l3_mpki']:.1f}",
                    f"{r['footprint_mb']:.1f}",
                    f"{r['mean_compressed_B']:.1f}",
                    f"{r['pair_fit']:.1%}",
                ]
                for name, r in rows.items()
            ],
        )
    )
    save_results("tab02", rows)
    # every detailed-study workload is memory intensive (paper: >= 5 MPKI)
    assert all(r["l3_mpki"] >= 5.0 for r in rows.values())
    spec_names = {w.name for w in SPEC06 + SPEC17}
    gap_names = {w.name for w in GAP}
    spec_fp = max(r["footprint_mb"] for n, r in rows.items() if n in spec_names)
    gap_fp = min(r["footprint_mb"] for n, r in rows.items() if n in gap_names)
    assert gap_fp > spec_fp, "graph footprints dominate, as in the paper"
    spec_size = sum(r["mean_compressed_B"] for n, r in rows.items() if n in spec_names)
    gap_size = sum(r["mean_compressed_B"] for n, r in rows.items() if n in gap_names)
    assert spec_size / len(spec_names) < gap_size / len(gap_names)
