"""Figure 9: metadata-cache hit-rate vs LLP prediction accuracy.

The paper's point: a 128-byte predictor finds the line's location on the
first access more often than a 32KB metadata cache can answer without a
memory access (98% vs the metadata cache's much lower hit rate).
"""

from benchmarks.conftest import run_once, save_results
from repro.analysis import banner, format_table
from repro.sim.runner import simulate
from repro.workloads import HIGH_MPKI


def _fig09(config):
    rows = {}
    for workload in HIGH_MPKI:
        table = simulate(workload, "tmc_table", config)
        ptmc = simulate(workload, "static_ptmc", config)
        rows[workload.name] = {
            "metadata_cache_hit": table.metadata_hit_rate or 0.0,
            "llp_accuracy": ptmc.llp_accuracy or 0.0,
        }
    return rows


def test_fig09_llp_vs_metadata_cache(benchmark, config):
    rows = run_once(benchmark, lambda: _fig09(config))
    print(banner("Fig. 9 — finding the line in one access: metadata cache vs LLP"))
    print(
        format_table(
            ["workload", "metadata-cache hit", "LLP accuracy"],
            [
                [n, f"{r['metadata_cache_hit']:.1%}", f"{r['llp_accuracy']:.1%}"]
                for n, r in rows.items()
            ],
        )
    )
    save_results("fig09", rows)
    avg_md = sum(r["metadata_cache_hit"] for r in rows.values()) / len(rows)
    avg_llp = sum(r["llp_accuracy"] for r in rows.values()) / len(rows)
    print(f"\naverage: metadata cache {avg_md:.1%}, LLP {avg_llp:.1%}")
    # shape: the tiny LLP beats the 32KB metadata cache on average and its
    # accuracy is high in absolute terms
    assert avg_llp > avg_md
    assert avg_llp > 0.85
