"""Setup shim for environments without wheel (enables legacy editable install)."""

from setuptools import setup

setup()
