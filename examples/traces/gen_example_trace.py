#!/usr/bin/env python3
"""Regenerate the committed example trace (``example_mix.trace``).

The trace is a small, deterministic ChampSim-style text trace that mixes
the three access shapes the PTMC designs care about:

* a sequential read stream (prefetch-friendly, high row-buffer hit rate),
* a strided read/write sweep over a medium working set (tests set-index
  spread in the LLC and compression of repeated lines), and
* a small hot set of read-modify-write lines (reuse distance ~ tens,
  exercises the metadata cache and inline-metadata paths).

Run from the repository root::

    python examples/traces/gen_example_trace.py

The output is byte-stable (fixed seed, sorted emission order), so a
regeneration that produces a diff means the generator changed — the
content hash of the ingested trace is part of disk-cache keys, so treat
that as a breaking change for cached results.
"""

from __future__ import annotations

import random
from pathlib import Path

SEED = 20190216  # HPCA 2019 conference date — fixed forever
OUT = Path(__file__).resolve().parent / "example_mix.trace"

LINE = 64

# Three address regions, line-aligned, deliberately far apart.
STREAM_BASE = 0x1000_0000
SWEEP_BASE = 0x2000_0000
HOT_BASE = 0x3000_0000

# Sized against bench_config's 256KB (4096-line) L3: the combined
# footprint (~9.2k lines, ~580KB) exceeds it ~2.3x, so the sweep misses
# and the designs' DRAM behavior actually differs.
STREAM_LINES = 6144  # one pass, sequential
SWEEP_LINES = 3072  # two passes, stride 5 lines (coprime: full coverage), 1-in-4 writes
HOT_LINES = 16  # hammered read+write pairs


def records():
    rng = random.Random(SEED)
    stream = [("r", STREAM_BASE + i * LINE) for i in range(STREAM_LINES)]
    sweep = []
    for _pass in range(2):
        for i in range(SWEEP_LINES):
            addr = SWEEP_BASE + ((i * 5) % SWEEP_LINES) * LINE
            op = "w" if i % 4 == 0 else "r"
            sweep.append((op, addr))
    hot = []
    for _ in range(384):
        line = rng.randrange(HOT_LINES)
        addr = HOT_BASE + line * LINE
        hot.append(("r", addr))
        hot.append(("w", addr))
    # Interleave deterministically: round-robin drain of the three lists.
    queues = [stream, sweep, hot]
    out = []
    while any(queues):
        for queue in queues:
            if queue:
                out.append(queue.pop(0))
    return out


def main() -> None:
    lines = ["# example_mix: sequential stream + strided sweep + hot RMW set"]
    lines += [f"{op} 0x{addr:x}" for op, addr in records()]
    OUT.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"wrote {len(lines) - 1} records to {OUT}")


if __name__ == "__main__":
    main()
