#!/usr/bin/env python
"""A guided tour of PTMC's inline-metadata machinery (paper §IV).

Drives the controller API directly — no simulator — to show each
mechanism doing its job:

1. compaction of a compressible group into one slot ending in a marker;
2. a read of a co-located line, verified by the marker;
3. an LLP misprediction and its recovery;
4. a marker collision handled by line inversion + the LIT;
5. an LIT overflow triggering a rekey sweep that re-encodes memory.

Usage::

    python examples/inline_metadata_tour.py
"""

import struct

from repro.cache.cache import EvictedLine
from repro.core.base_controller import NullLLCView
from repro.core.lit import LITPolicy
from repro.core.ptmc import PTMCConfig, PTMCController
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.types import Level


class TinyLLC(NullLLCView):
    """A minimal LLC view holding explicit lines (for the demo)."""

    def __init__(self):
        self.lines = {}

    def add(self, addr, data, dirty=True):
        self.lines[addr] = EvictedLine(addr, data, dirty, Level.UNCOMPRESSED, 0)

    def probe(self, addr):
        return self.lines.get(addr)

    def force_evict(self, addr):
        return self.lines.pop(addr, None)


def sparse_line(values):
    """A 64-byte line of mostly-zero 32-bit ints (very compressible)."""
    words = [0] * (16 - len(values)) + list(values)
    return struct.pack("<16i", *words)


def main() -> None:
    memory = PhysicalMemory(1 << 16)
    dram = DRAMSystem()
    ptmc = PTMCController(
        memory, dram, config=PTMCConfig(lit_capacity=2, lit_policy=LITPolicy.REKEY)
    )
    null = NullLLCView()

    print("=== 1. Compaction at eviction =========================")
    lines = [sparse_line([i + 1]) for i in range(4)]
    llc = TinyLLC()
    for i in range(1, 4):
        llc.add(8 + i, lines[i])
    result = ptmc.handle_eviction(
        EvictedLine(8, lines[0], True, Level.UNCOMPRESSED, 0), 0, 0, llc
    )
    print(f"evicting line 8 with lines 9-11 resident -> level {result.level.name}")
    print(f"ganged eviction pulled out: {result.ganged}")
    slot = memory.read(8)
    print(f"slot 8 tail (the 4:1 marker): {slot[-4:].hex()}")
    print(f"marker expected for slot 8 : {ptmc.markers.marker(8, Level.QUAD).hex()}")
    print(f"home slots 9-11 now hold Marker-IL: "
          f"{[ptmc.markers.classify(a, memory.read(a)).kind.value for a in (9, 10, 11)]}")

    print("\n=== 2. Reading a co-located line ======================")
    read = ptmc.read_line(10, 0, 0, null)
    print(f"read line 10 -> found at slot 8, level {read.level.name}, "
          f"{read.accesses} DRAM access(es)")
    print(f"free co-fetched neighbours: {sorted(read.extra_lines)}")

    print("\n=== 3. LLP misprediction and recovery =================")
    # a fresh controller state has never seen this page compressed
    fresh = PTMCController(PhysicalMemory(1 << 16), DRAMSystem())
    llc2 = TinyLLC()
    for i in range(1, 4):
        llc2.add(72 + i, lines[i])
    fresh.handle_eviction(EvictedLine(72, lines[0], True, Level.UNCOMPRESSED, 0), 0, 0, llc2)
    first = fresh.read_line(73, 0, 0, null)
    second = fresh.read_line(73, 0, 0, null)
    print(f"first read of line 73 : {first.accesses} access(es) "
          f"(mispredicted={first.mispredicted})")
    print(f"second read of line 73: {second.accesses} access(es) "
          f"(the LCT learned the page's status)")
    print(f"LLP accuracy so far: {fresh.llp.accuracy:.0%}")

    print("\n=== 4. Marker collision -> line inversion =============")
    evil = b"\x41" * 60 + ptmc.markers.marker(20, Level.PAIR)
    ptmc.handle_eviction(EvictedLine(20, evil, True, Level.UNCOMPRESSED, 0), 0, 0, null)
    print("line 20's data ends with slot 20's own 2:1 marker")
    print(f"stored form is inverted: {memory.read(20)[:4].hex()} (data was 41414141)")
    print(f"LIT now tracks line 20: {20 in ptmc.lit}")
    back = ptmc.read_line(20, 0, 0, null)
    print(f"read returns the original bytes: {back.data == evil}")

    print("\n=== 5. LIT overflow -> rekey sweep ====================")
    for addr in (24, 25, 33):
        collide = b"\x42" * 60 + ptmc.markers.marker(addr, Level.PAIR)
        ptmc.handle_eviction(EvictedLine(addr, collide, True, Level.UNCOMPRESSED, 0), 0, 0, null)
    print(f"after forcing collisions beyond the 2-entry LIT: rekeys={ptmc.rekeys}")
    print(f"marker generation is now {ptmc.markers.generation}; memory was re-encoded")
    survived = ptmc.read_line(8, 0, 0, null)
    print(f"the old quad at slot 8 still decodes correctly: "
          f"{survived.level.name}, data intact={survived.data == lines[0]}")
    print(f"\ntotal on-chip storage: {ptmc.total_storage_bytes():.0f} bytes "
          f"(paper Table III: < 300 bytes)")


if __name__ == "__main__":
    main()
