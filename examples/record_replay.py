#!/usr/bin/env python
"""Record/replay and DMA: the infrastructure around the simulator.

1. records a workload's access trace to a portable binary file;
2. replays it through two different memory designs, byte-for-byte the
   same stream, and compares the outcomes;
3. drives a cache-coherent DMA agent against PTMC-compressed memory
   (paper §VI-G: every access goes through the controller, so DMA and
   multi-socket traffic are transparently supported).

Usage::

    python examples/record_replay.py
"""

import tempfile
import pathlib

from repro.analysis import banner, format_table
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.core.ptmc import PTMCController
from repro.core.uncompressed import UncompressedController
from repro.cpu.core import CoreModel
from repro.cpu.tracefile import load_trace, record_workload
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.sim.dma import DMAAgent
from repro.vm.page_table import PageTable
from repro.workloads import get_workload

HIER = HierarchyConfig(num_cores=1, l1_bytes=8 * 1024, l2_bytes=32 * 1024, l3_bytes=128 * 1024)


def replay(trace_path, controller_cls):
    memory = PhysicalMemory(1 << 20)
    dram = DRAMSystem()
    controller = controller_cls(memory, dram)
    hierarchy = CacheHierarchy(controller, HIER)
    core = CoreModel(0, load_trace(trace_path), hierarchy, PageTable(1 << 20))
    while core.step():
        pass
    return core, dram, controller, hierarchy


def main() -> None:
    workload = get_workload("milc06")
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = pathlib.Path(tmp) / "milc06.trc.gz"

        print(banner("1. Record"))
        count = record_workload(workload, core_id=0, num_ops=6000, path=trace_path)
        size_kb = trace_path.stat().st_size / 1024
        print(f"recorded {count} accesses of '{workload.name}' "
              f"to {trace_path.name} ({size_kb:.0f} KiB compressed)")

        print(banner("2. Replay through two designs"))
        rows = []
        for name, cls in (("uncompressed", UncompressedController), ("ptmc", PTMCController)):
            core, dram, _, hierarchy = replay(trace_path, cls)
            rows.append([
                name,
                core.time,
                dram.stats.total_accesses,
                f"{hierarchy.l3.hit_rate:.1%}",
            ])
        print(format_table(["design", "cycles", "DRAM accesses", "L3 hit rate"], rows))
        print("identical input stream; the designs differ only in the memory system")

        print(banner("3. DMA against compressed memory"))
        core, dram, controller, hierarchy = replay(trace_path, PTMCController)
        dma = DMAAgent(controller, hierarchy.llc_view, core_id=7)
        page_table = core.page_table
        start = page_table.translate(0, 0)
        block = dma.read_block(start, 8)
        print(f"DMA read 8 lines at physical {start:#x}: {len(block)} bytes")
        payload = bytes(range(256)) * 2
        dma.write_block(start, payload)
        assert dma.read_block(start, len(payload) // 64) == payload
        print("DMA write/read round-trip through markers+inversion: OK")
        print(f"controller performed {dma.reads} DMA reads / {dma.writes} DMA writes "
              f"with no special-casing — the controller intercepts every access")


if __name__ == "__main__":
    main()
