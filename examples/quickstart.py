#!/usr/bin/env python
"""Quickstart: compare memory-compression designs on one workload.

Runs a SPEC-like benchmark (``lbm06``) on every design the paper studies
and prints weighted speedup over uncompressed memory plus the headline
diagnostics (L3 hit rate, DRAM traffic, LLP accuracy).

Usage::

    python examples/quickstart.py [workload]
"""

import sys

from repro import DESIGNS, bench_config, compare, simulate
from repro.analysis import banner, format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "lbm06"
    config = bench_config(ops_per_core=4000, warmup_ops=5000)

    print(banner(f"PTMC quickstart — workload: {workload}"))
    baseline = simulate(workload, "uncompressed", config)
    print(
        f"baseline: {baseline.elapsed_cycles} cycles, "
        f"{baseline.total_dram_accesses} DRAM accesses, "
        f"L3 hit rate {baseline.l3_hit_rate:.1%}"
    )

    rows = []
    for design in DESIGNS:
        if design == "uncompressed":
            continue
        speedup = compare(workload, design, config)
        result = simulate(workload, design, config)
        rows.append(
            [
                design,
                f"{speedup:.3f}",
                f"{result.l3_hit_rate:.1%}",
                result.total_dram_accesses,
                f"{result.llp_accuracy:.1%}" if result.llp_accuracy is not None else "-",
            ]
        )
    print()
    print(
        format_table(
            ["design", "speedup", "L3 hit", "DRAM accesses", "LLP accuracy"], rows
        )
    )
    print(
        "\nPTMC obtains compression's bandwidth benefit with inline markers"
        "\n(no metadata traffic); 'ideal' is the zero-overhead upper bound."
    )


if __name__ == "__main__":
    main()
