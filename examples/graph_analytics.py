#!/usr/bin/env python
"""Graph analytics: why Dynamic-PTMC exists.

Graph workloads (GAP-like: irregular access, poor reuse, mostly
incompressible data) are the paper's hard case — compressing memory for
them costs bandwidth (clean writebacks, invalidates) that is never repaid
by useful co-fetches.  This example shows the three-way contrast on a
graph workload and a SPEC-like workload:

- table-based TMC collapses (metadata-cache thrashing),
- Static-PTMC still loses a little (inherent compression cost),
- Dynamic-PTMC observes the cost/benefit on sampled sets, switches
  compression off, and recovers to ~baseline performance, while keeping
  the full benefit where compression wins.

Usage::

    python examples/graph_analytics.py
"""

from repro import bench_config, compare, simulate
from repro.analysis import banner, format_table


def main() -> None:
    config = bench_config(ops_per_core=4000, warmup_ops=6000)
    workloads = ["bfs.twitter", "pr.web", "lbm06"]
    designs = ["tmc_table", "static_ptmc", "dynamic_ptmc"]

    print(banner("Graph analytics vs compression (paper §V)"))
    rows = []
    for workload in workloads:
        row = [workload]
        for design in designs:
            row.append(f"{compare(workload, design, config):.3f}")
        result = simulate(workload, "dynamic_ptmc", config)
        enabled = result.extras.get("compression_enabled_final", 1.0)
        row.append("on" if enabled >= 0.5 else "off")
        rows.append(row)
    print(format_table(["workload"] + designs + ["dynamic decision"], rows))

    print("\nDynamic-PTMC's utility counter per workload:")
    for workload in workloads:
        result = simulate(workload, "dynamic_ptmc", config)
        print(
            f"  {workload:14s} benefits={result.extras.get('policy_benefits', 0):>6.0f}"
            f"  costs={result.extras.get('policy_costs', 0):>6.0f}"
        )
    print(
        "\nBecause PTMC's metadata is inline, disabling compression requires"
        "\nno global decompression — old compressed groups remain readable."
    )


if __name__ == "__main__":
    main()
