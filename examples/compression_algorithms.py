#!/usr/bin/env python
"""Compare cache-line compression algorithms on realistic data families.

PTMC is orthogonal to the compression algorithm (paper §VII-A).  This
example measures FPC, BDI, C-Pack and the FPC+BDI hybrid on the synthetic
data families the workloads use, and reports how often a pair / quad of
neighbour lines fits one 64-byte slot under each algorithm — the quantity
that decides PTMC's co-location rate (paper Fig. 6).

Usage::

    python examples/compression_algorithms.py
"""

from repro.analysis import banner, format_table
from repro.compression import BDI, CPack, FPC, HybridCompressor
from repro.core.packing import compress_group
from repro.core.types import Level
from repro.workloads import DataGenerator, DataProfile, PatternKind
from repro.workloads.data_patterns import GRAPH_LIKE, SPEC_LIKE

FAMILIES = {
    "zero": DataProfile({PatternKind.ZERO: 1.0}, noise=0.0),
    "small_int": DataProfile({PatternKind.SMALL_INT: 1.0}, noise=0.0),
    "pointer": DataProfile({PatternKind.POINTER: 1.0}, noise=0.0),
    "medium": DataProfile({PatternKind.MEDIUM: 1.0}, noise=0.0),
    "random": DataProfile({PatternKind.RANDOM: 1.0}, noise=0.0),
    "spec_mix": SPEC_LIKE,
    "graph_mix": GRAPH_LIKE,
}

ALGORITHMS = {
    "fpc": FPC(),
    "bdi": BDI(),
    "cpack": CPack(),
    "hybrid": HybridCompressor(),
}

SAMPLES = 400
MARKER = b"\x00\x00\x00\x00"


def mean_size(algorithm, generator):
    total = 0
    for vline in range(SAMPLES):
        total += algorithm.compressed_size(generator.line(vline))
    return total / SAMPLES


def group_fit_rate(algorithm, generator, level):
    fits = 0
    trials = SAMPLES // int(level)
    for start in range(0, trials * int(level), int(level)):
        lines = [generator.line(start + i) for i in range(int(level))]
        if compress_group(algorithm, lines, MARKER) is not None:
            fits += 1
    return fits / trials


def main() -> None:
    print(banner("Per-line compressed size (bytes, lower is better)"))
    rows = []
    for family, profile in FAMILIES.items():
        generator = DataGenerator(profile, seed=11)
        rows.append(
            [family]
            + [f"{mean_size(alg, generator):.1f}" for alg in ALGORITHMS.values()]
        )
    print(format_table(["family"] + list(ALGORITHMS), rows))

    print(banner("Neighbour-group co-location rate under the hybrid (Fig. 6)"))
    hybrid = ALGORITHMS["hybrid"]
    rows = []
    for family, profile in FAMILIES.items():
        generator = DataGenerator(profile, seed=13)
        rows.append(
            [
                family,
                f"{group_fit_rate(hybrid, generator, Level.PAIR):.0%}",
                f"{group_fit_rate(hybrid, generator, Level.QUAD):.0%}",
            ]
        )
    print(format_table(["family", "2:1 fits", "4:1 fits"], rows))
    print(
        "\nPointers pair up (BDI) but never quad; sparse integers quad (FPC);"
        "\nmedium-entropy lines compress alone but not together — exactly the"
        "\nmix that exercises every path of the TMC address mapping."
    )


if __name__ == "__main__":
    main()
