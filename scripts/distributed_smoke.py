#!/usr/bin/env python
"""CI smoke test for the distributed sweep fabric.

Boots a ``repro serve --remote-only`` daemon (queue + lease reaper +
HTTP, no local execution) plus two ``repro worker`` subprocesses, then:

1. asserts an unauthenticated mutating request is rejected with 401
   (the daemon runs with a bearer token),
2. submits a 40-job sweep over HTTP,
3. SIGKILLs one worker while it holds leased jobs, and asserts the
   lease reaper re-queues them (``worker.lease_expirations`` on
   ``/metrics``) so the surviving worker finishes the sweep,
4. verifies every job completed and spot-checks served results
   byte-for-byte against direct in-process ``simulate()`` runs,
5. drains the daemon with SIGTERM and checks the store is clean.

Run from the repo root: ``PYTHONPATH=src python scripts/distributed_smoke.py``.
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

JOBS = 40
OPS_RANGE = range(102, 102 + 2 * JOBS, 2)  # 40 distinct identities
WARMUP = 100
TOKEN = "smoke-token"
LEASE_SECONDS = 2.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def spawn(cmd, env, logfile):
    return subprocess.Popen(
        cmd, env=env, stdout=logfile, stderr=subprocess.STDOUT, text=True
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-distributed-smoke-"))
    src = str(Path(__file__).resolve().parent.parent / "src")
    base_env = dict(os.environ, PYTHONPATH=src, REPRO_SERVICE_TOKEN=TOKEN)

    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--cache-dir",
            str(workdir / "daemon-cache"),
            "serve", "--port", "0", "--db", str(workdir / "service.db"),
            "--remote-only", "--lease-seconds", str(LEASE_SECONDS),
            "--reaper-interval", "0.2", "--quiet",
        ],
        env=base_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    workers = {}
    try:
        url = None
        for _ in range(20):
            line = daemon.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if match:
                url = match.group(1)
                break
        if url is None:
            fail("daemon did not announce its address")
        print(f"daemon up at {url} (remote-only, auth on)")

        from repro.service.client import ServiceClient, ServiceError
        from repro.service.jobstore import JobStore
        from repro.sim import runner
        from repro.sim.config import bench_config

        # 1. unauthenticated mutating requests are rejected
        try:
            ServiceClient(url, token="").submit(
                "lbm06", "ideal", ops=200, warmup=WARMUP
            )
        except ServiceError as exc:
            if exc.status != 401:
                fail(f"expected 401 without token, got {exc.status}")
        else:
            fail("unauthenticated submit was accepted")
        print("unauthenticated submit rejected with 401")

        # 2. the sweep: 40 distinct identities
        client = ServiceClient(url, token=TOKEN)
        jobs = [
            client.submit("lbm06", "ideal", ops=ops, warmup=WARMUP)
            for ops in OPS_RANGE
        ]
        if not all(job["created"] for job in jobs):
            fail("sweep submissions were unexpectedly deduplicated")
        print(f"submitted {len(jobs)} jobs")

        # 3. two workers, each with its own local cache
        for name in ("wa", "wb"):
            log = open(workdir / f"{name}.log", "w")
            workers[name] = (
                spawn(
                    [
                        sys.executable, "-m", "repro",
                        "--cache-dir", str(workdir / f"{name}-cache"),
                        "worker", "--url", url, "--worker-id", name,
                        "--workers", "2",
                        "--lease-seconds", str(LEASE_SECONDS),
                        "--poll", "0.1", "--quiet",
                    ],
                    base_env,
                    log,
                ),
                log,
            )
        print("workers wa and wb claiming")

        def running_for(worker_id):
            return [
                j for j in client.jobs(state="running", limit=JOBS)
                if j.get("worker_id") == worker_id
            ]

        # wait until the doomed worker actually holds leases
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if running_for("wa"):
                break
            time.sleep(0.05)
        else:
            fail("worker wa never held a leased job")
        held = [j["id"] for j in running_for("wa")]
        workers["wa"][0].kill()  # SIGKILL: no drain, no goodbye
        print(f"killed worker wa while it held {len(held)} lease(s)")

        # the reaper must take wa's leases within ~one lease interval:
        # its running jobs go back to queued (or to wb)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if not running_for("wa"):
                break
            time.sleep(0.2)
        else:
            fail("wa's leases were never reaped")
        metrics = client.metrics()
        if metrics.get("worker.lease_expirations", 0) < 1:
            fail(f"reaper never expired wa's leases: {metrics}")
        print(f"lease reaper re-queued wa's jobs "
              f"(expirations={metrics['worker.lease_expirations']})")

        # 4. the surviving worker drains the whole sweep
        deadline = time.monotonic() + 600
        while time.monotonic() < deadline:
            done = sum(
                1 for job in jobs if client.job(job["id"])["state"] == "done"
            )
            if done == len(jobs):
                break
            time.sleep(0.5)
        else:
            counts = {}
            for job in jobs:
                state = client.job(job["id"])["state"]
                counts[state] = counts.get(state, 0) + 1
            fail(f"sweep did not finish: {counts}")
        print(f"all {len(jobs)} jobs done — no job lost to the dead worker")

        # spot-check byte-identical results vs direct simulation
        for index in (0, 9, 20, 39):
            ops = list(OPS_RANGE)[index]
            served = client.result(jobs[index]["id"]).to_json_dict()
            direct = runner.simulate(
                "lbm06", "ideal",
                bench_config(ops_per_core=ops, warmup_ops=WARMUP),
                use_cache=False,
            ).to_json_dict()
            served["extras"].pop("sim_seconds", None)
            direct["extras"].pop("sim_seconds", None)
            if served != direct:
                fail(f"result for ops={ops} differs from direct simulate()")
        print("served results byte-identical to direct simulate()")

        final_metrics = client.metrics()
        if final_metrics.get("worker.live", 0) < 1:
            fail("live-worker gauge lost the surviving worker")
        completions = final_metrics.get("worker.completed.wb", 0)
        if completions < 1:
            fail("per-worker completion counter missing for wb")
        print(f"telemetry: wb completed {completions} jobs")

        # 5. graceful shutdown, clean store
        wb_proc, _ = workers["wb"]
        wb_proc.send_signal(signal.SIGTERM)
        try:
            wb_proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            wb_proc.kill()
            fail("worker wb did not drain within 60s of SIGTERM")
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not drain within 60s of SIGTERM")
        if daemon.returncode != 0:
            fail(f"daemon exited {daemon.returncode} after SIGTERM")
        store = JobStore(workdir / "service.db")
        try:
            counts = store.counts()
        finally:
            store.close()
        if counts["running"] != 0 or counts["failed"] != 0:
            fail(f"store not clean after shutdown: {counts}")
        if counts["done"] != len(jobs):
            fail(f"expected {len(jobs)} done jobs, saw {counts}")
        print(f"store clean after shutdown: {counts}")
        print("distributed smoke OK")
    finally:
        for proc, log in workers.values():
            if proc.poll() is None:
                proc.kill()
            log.close()
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    main()
