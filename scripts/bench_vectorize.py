#!/usr/bin/env python
"""Micro-benchmark: scalar vs vectorized compressed-size throughput.

Times every compression algorithm's scalar ``compressed_size`` reference
against its vectorized ``batch_sizes`` kernel over one pinned corpus and
writes the result as ``BENCH_vectorize.json`` (see README "Benchmarks").
The corpus and measurement protocol are fixed so runs are comparable:

- corpus: 4096 lines, deterministic families (zero, sparse, clustered,
  narrow ramps of every BDI width, random) from a pinned seed;
- batch side: best of ``--repeats`` full-corpus kernel passes;
- scalar side: best of ``--repeats`` passes over a pinned subsample
  (the scalar path's lines/sec does not depend on corpus size), with
  memoization disabled so repetition cannot fake throughput.

``--check BASELINE`` turns the run into a regression gate: it fails if
any algorithm's batch-over-scalar speedup drops more than 20% below the
committed baseline's, or if the geometric-mean speedup falls under 5x.
Speedups — not absolute lines/sec — are compared, so the gate is stable
across machines of different speeds.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import random
import struct
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.compression import (  # noqa: E402
    BDI,
    CPack,
    FPC,
    FVC,
    HybridCompressor,
    ZeroLine,
    lines_to_array,
)
from repro.compression.base import LINE_SIZE  # noqa: E402

SCHEMA = 1
CORPUS_SEED = 20260807
CORPUS_LINES = 4096
SCALAR_SAMPLE = 512
MIN_GEOMEAN_SPEEDUP = 5.0
REGRESSION_TOLERANCE = 0.20


def build_corpus(seed: int = CORPUS_SEED, count: int = CORPUS_LINES) -> list:
    """The pinned line population (mirrors what simulations compress)."""
    rng = random.Random(seed)
    lines = []
    while len(lines) < count:
        kind = rng.randrange(6)
        if kind == 0:  # all zeros (freshly allocated pages)
            lines.append(b"\x00" * LINE_SIZE)
        elif kind == 1:  # sparse: a few random words in a zero line
            words = [0] * 16
            for _ in range(rng.randrange(1, 6)):
                words[rng.randrange(16)] = rng.getrandbits(32)
            lines.append(b"".join(struct.pack("<I", w) for w in words))
        elif kind == 2:  # clustered values (dictionary friendly)
            pool = [rng.getrandbits(32) for _ in range(rng.randrange(1, 5))]
            lines.append(
                b"".join(struct.pack("<I", rng.choice(pool)) for _ in range(16))
            )
        elif kind == 3:  # narrow numeric ramps at every BDI width
            width = rng.choice((2, 4, 8))
            base = rng.getrandbits(width * 8)
            modulus = 1 << (width * 8)
            lines.append(
                b"".join(
                    ((base + rng.randrange(-300, 300)) % modulus).to_bytes(
                        width, "little"
                    )
                    for _ in range(LINE_SIZE // width)
                )
            )
        elif kind == 4:  # pointer-like 8-byte strides
            base = rng.getrandbits(48)
            lines.append(
                b"".join(
                    struct.pack("<Q", base + i * 64) for i in range(LINE_SIZE // 8)
                )
            )
        else:  # incompressible noise
            lines.append(bytes(rng.getrandbits(8) for _ in range(LINE_SIZE)))
    return lines


def algorithms():
    return [
        FPC(),
        BDI(),
        CPack(),
        FVC(),
        ZeroLine(),
        HybridCompressor(memoize=False),
    ]


def _best_time(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_algorithm(algorithm, lines, array, repeats: int) -> dict:
    sample = lines[:SCALAR_SAMPLE]

    def scalar_pass():
        for line in sample:
            algorithm.compressed_size(line)

    scalar_seconds = _best_time(scalar_pass, repeats)
    batch_seconds = _best_time(lambda: algorithm.batch_sizes(array), repeats)
    scalar_lps = len(sample) / scalar_seconds
    batch_lps = len(lines) / batch_seconds
    return {
        "scalar_lines_per_sec": round(scalar_lps),
        "batch_lines_per_sec": round(batch_lps),
        "speedup": round(batch_lps / scalar_lps, 2),
    }


def run(repeats: int) -> dict:
    lines = build_corpus()
    array = lines_to_array(lines)
    per_algorithm = {}
    for algorithm in algorithms():
        per_algorithm[algorithm.name] = bench_algorithm(
            algorithm, lines, array, repeats
        )
        row = per_algorithm[algorithm.name]
        print(
            f"{algorithm.name:>8}: scalar {row['scalar_lines_per_sec']:>9,} lps  "
            f"batch {row['batch_lines_per_sec']:>11,} lps  "
            f"speedup {row['speedup']:>6.2f}x"
        )
    speedups = [row["speedup"] for row in per_algorithm.values()]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    print(f"geomean speedup: {geomean:.2f}x")
    return {
        "schema": SCHEMA,
        "corpus_seed": CORPUS_SEED,
        "corpus_lines": CORPUS_LINES,
        "scalar_sample": SCALAR_SAMPLE,
        "repeats": repeats,
        "algorithms": per_algorithm,
        "geomean_speedup": round(geomean, 2),
    }


def check(report: dict, baseline_path: pathlib.Path) -> int:
    """Regression gate against a committed baseline. Returns exit status."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    if report["geomean_speedup"] < MIN_GEOMEAN_SPEEDUP:
        failures.append(
            f"geomean speedup {report['geomean_speedup']:.2f}x is below the "
            f"{MIN_GEOMEAN_SPEEDUP:.0f}x floor"
        )
    for name, base_row in baseline["algorithms"].items():
        row = report["algorithms"].get(name)
        if row is None:
            failures.append(f"algorithm {name!r} missing from this run")
            continue
        floor = base_row["speedup"] * (1.0 - REGRESSION_TOLERANCE)
        if row["speedup"] < floor:
            failures.append(
                f"{name}: speedup {row['speedup']:.2f}x regressed more than "
                f"{REGRESSION_TOLERANCE:.0%} below baseline "
                f"{base_row['speedup']:.2f}x (floor {floor:.2f}x)"
            )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(f"regression gate passed against {baseline_path}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[1] / "BENCH_vectorize.json",
        help="where to write the report (default: repo-root BENCH_vectorize.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing passes per measurement"
    )
    parser.add_argument(
        "--check",
        type=pathlib.Path,
        metavar="BASELINE",
        help="also gate this run's speedups against a baseline report",
    )
    args = parser.parse_args(argv)
    report = run(args.repeats)
    args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if args.check is not None:
        return check(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
