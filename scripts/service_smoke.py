#!/usr/bin/env python
"""CI smoke test for the job-queue service.

Boots ``repro serve`` as a real subprocess on an ephemeral port, then:

1. submits a job over HTTP and polls it to completion,
2. asserts the served result matches a direct in-process ``simulate()``
   (ignoring the wall-time provenance extra),
3. re-submits the same identity and asserts it is served from the
   shared disk cache without execution,
4. sends SIGTERM and verifies a clean drain (exit code 0, no
   ``running`` rows left in the job store).

Run from the repo root: ``PYTHONPATH=src python scripts/service_smoke.py``.
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

OPS, WARMUP = 200, 100


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    cache_dir = workdir / "simcache"
    db_path = workdir / "service.db"
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")

    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--ops", str(OPS), "--warmup", str(WARMUP),
            "serve", "--port", "0", "--db", str(db_path),
            "--workers", "2", "--drain-seconds", "30",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = daemon.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if not match:
            fail(f"daemon did not announce its address: {line!r}")
        url = match.group(1)
        print(f"daemon up at {url}")

        from repro.service.client import ServiceClient
        from repro.service.jobstore import JobStore
        from repro.sim import runner
        from repro.sim.config import bench_config

        client = ServiceClient(url)
        if not client.healthz()["ok"]:
            fail("healthz not ok")

        job = client.submit("lbm06", "dynamic_ptmc", ops=OPS, warmup=WARMUP)
        print(f"submitted job {job['id']}")
        done = client.wait(job["id"], timeout=300)
        print(f"job finished: {done['state']} [{done['source']}]")

        served = client.result(job["id"]).to_json_dict()
        direct = runner.simulate(
            "lbm06",
            "dynamic_ptmc",
            bench_config(ops_per_core=OPS, warmup_ops=WARMUP),
            use_cache=False,
        ).to_json_dict()
        served["extras"].pop("sim_seconds", None)
        direct["extras"].pop("sim_seconds", None)
        if served != direct:
            fail("served result differs from direct simulate()")
        print("served result matches direct simulate()")

        again = client.submit("lbm06", "dynamic_ptmc", ops=OPS, warmup=WARMUP)
        if again["state"] != "done" or again["source"] != "cache":
            fail(f"re-submission not served from cache: {again}")
        print("re-submission served instantly from the shared disk cache")

        metrics = client.metrics()
        for path in ("service.completed", "service.queue_depth", "runner.executed"):
            if path not in metrics:
                fail(f"metrics missing {path}")
        print("metrics expose service.* and runner.* paths")

        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not drain within 60s of SIGTERM")
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM")
        print("daemon drained cleanly on SIGTERM")

        store = JobStore(db_path)
        try:
            counts = store.counts()
        finally:
            store.close()
        if counts["running"] != 0:
            fail(f"running rows left behind: {counts}")
        print(f"job store clean after shutdown: {counts}")
        print("service smoke OK")
    finally:
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    main()
