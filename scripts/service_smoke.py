#!/usr/bin/env python
"""CI smoke test for the job-queue service.

Boots ``repro serve`` as a real subprocess on an ephemeral port, then:

1. submits a job over HTTP and polls it to completion,
2. asserts the served result matches a direct in-process ``simulate()``
   (ignoring the wall-time provenance extra),
3. re-submits the same identity and asserts it is served from the
   shared disk cache without execution,
4. scrapes ``GET /metrics?format=prometheus`` and checks the text
   0.0.4 content type plus counter/gauge/histogram lines,
5. sends SIGTERM and verifies a clean drain (exit code 0, no
   ``running`` rows left in the job store),
6. parses the daemon's structured log (newline-delimited JSON on
   stderr) and asserts the job lifecycle events were recorded.

Run from the repo root: ``PYTHONPATH=src python scripts/service_smoke.py``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

OPS, WARMUP = 200, 100


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    cache_dir = workdir / "simcache"
    db_path = workdir / "service.db"
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")

    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--ops", str(OPS), "--warmup", str(WARMUP),
            "serve", "--port", "0", "--db", str(db_path),
            "--workers", "2", "--drain-seconds", "30",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    preamble = []
    try:
        # stderr (the structured log) is merged into stdout, so JSON log
        # records may race ahead of the address announcement — keep
        # reading until it appears.
        url = None
        for _ in range(20):
            line = daemon.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if match:
                url = match.group(1)
                break
            preamble.append(line)
        if url is None:
            fail(f"daemon did not announce its address: {preamble!r}")
        print(f"daemon up at {url}")

        from repro.service.client import ServiceClient
        from repro.service.jobstore import JobStore
        from repro.sim import runner
        from repro.sim.config import bench_config

        client = ServiceClient(url)
        if not client.healthz()["ok"]:
            fail("healthz not ok")

        job = client.submit("lbm06", "dynamic_ptmc", ops=OPS, warmup=WARMUP)
        print(f"submitted job {job['id']}")
        done = client.wait(job["id"], timeout=300)
        print(f"job finished: {done['state']} [{done['source']}]")

        served = client.result(job["id"]).to_json_dict()
        direct = runner.simulate(
            "lbm06",
            "dynamic_ptmc",
            bench_config(ops_per_core=OPS, warmup_ops=WARMUP),
            use_cache=False,
        ).to_json_dict()
        served["extras"].pop("sim_seconds", None)
        direct["extras"].pop("sim_seconds", None)
        if served != direct:
            fail("served result differs from direct simulate()")
        print("served result matches direct simulate()")

        again = client.submit("lbm06", "dynamic_ptmc", ops=OPS, warmup=WARMUP)
        if again["state"] != "done" or again["source"] != "cache":
            fail(f"re-submission not served from cache: {again}")
        print("re-submission served instantly from the shared disk cache")

        metrics = client.metrics()
        for path in ("service.completed", "service.queue_depth", "runner.executed"):
            if path not in metrics:
                fail(f"metrics missing {path}")
        print("metrics expose service.* and runner.* paths")

        with urllib.request.urlopen(f"{url}/metrics?format=prometheus") as resp:
            ctype = resp.headers["Content-Type"]
            text = resp.read().decode()
        if ctype != "text/plain; version=0.0.4; charset=utf-8":
            fail(f"wrong prometheus content type: {ctype}")
        for pattern in (
            r"^repro_service_completed_total \d+$",
            r"^repro_service_uptime_seconds \d",
            r'^repro_service_job_seconds_bucket\{le="\+Inf"\} \d+$',
            r"^repro_service_http_request_seconds_count \d+$",
            r"^repro_runner_executed_total \d+$",
        ):
            if not re.search(pattern, text, re.M):
                fail(f"prometheus exposition missing {pattern}")
        print("prometheus exposition scrapes with counters, gauges, histograms")

        daemon.send_signal(signal.SIGTERM)
        try:
            remaining, _ = daemon.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not drain within 60s of SIGTERM")
        code = daemon.returncode
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM")
        print("daemon drained cleanly on SIGTERM")

        records = []
        for line in preamble + remaining.splitlines():
            line = line.strip()
            if line.startswith("{"):
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    fail(f"unparseable structured-log line: {line!r}")
        events = {record.get("event") for record in records}
        for wanted in ("scheduler_started", "job_submitted", "job_dispatched",
                       "job_completed", "http_request"):
            if wanted not in events:
                fail(f"structured log missing event {wanted!r}: saw {sorted(events)}")
        if any("ts" not in record for record in records):
            fail("structured-log record without a ts field")
        print(f"structured log recorded {len(records)} JSON events "
              f"covering the job lifecycle")

        store = JobStore(db_path)
        try:
            counts = store.counts()
        finally:
            store.close()
        if counts["running"] != 0:
            fail(f"running rows left behind: {counts}")
        print(f"job store clean after shutdown: {counts}")
        print("service smoke OK")
    finally:
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    main()
