#!/usr/bin/env python
"""Automated LLC replacement-policy search over a policy × design × workload grid.

Fans every (policy, design, workload) combination through the existing
parallel sweep engine (:func:`repro.sim.parallel.sweep_with_report`), so
runs execute across worker processes, write through the shared
content-addressed disk cache, and re-runs are served from disk without
simulating.  Each policy gets its own ``SimConfig`` (the serialisable
``llc_policy`` knob), and speedups are computed against the uncompressed
baseline *under the same policy*, so a policy cannot look good merely by
hurting its own baseline.

Output: a ranked per-policy table (geomean weighted speedup per design,
plus prefetch-retention telemetry pulled from the ``llc.*`` counters),
printed, saved as ``benchmarks/results/abl_policy_search.json`` in the
shape the EXPERIMENTS.md renderer consumes, and — with ``--render`` —
EXPERIMENTS.md is regenerated to include the study.

Examples::

    python scripts/policy_search.py --jobs 4
    python scripts/policy_search.py --suite gap --designs dynamic_ptmc --jobs 8
    python scripts/policy_search.py --ops 400 --warmup 200 --render
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.cache.replacement import POLICIES  # noqa: E402
from repro.sim import runner  # noqa: E402
from repro.sim.config import bench_config  # noqa: E402
from repro.sim.parallel import sweep_with_report  # noqa: E402
from repro.sim.results import geometric_mean  # noqa: E402
from repro.sim.system import DESIGNS  # noqa: E402
from repro.workloads import MEMORY_INTENSIVE, SUITE_BY_NAME  # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).resolve().parents[1] / (
    "benchmarks/results/abl_policy_search.json"
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        default="memory_intensive",
        choices=sorted(SUITE_BY_NAME),
        help="workload family to search over (default: %(default)s)",
    )
    parser.add_argument(
        "--policies",
        default=",".join(sorted(POLICIES)),
        help="comma-separated policy list (default: all registered)",
    )
    parser.add_argument(
        "--designs",
        default="static_ptmc,dynamic_ptmc",
        help="comma-separated design list (default: %(default)s)",
    )
    parser.add_argument("--ops", type=int, default=2000, help="measured ops per core")
    parser.add_argument("--warmup", type=int, default=3000, help="warmup ops per core")
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, help="worker processes per sweep"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="disk-cache override (default: standard)"
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true", help="run without the persistent cache"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=RESULTS_PATH,
        help="where to save the study rows (default: %(default)s)",
    )
    parser.add_argument(
        "--render",
        action="store_true",
        help="regenerate EXPERIMENTS.md from benchmarks/results after saving",
    )
    return parser.parse_args(argv)


def _csv(raw: str, universe, kind: str) -> list:
    names = [item.strip() for item in raw.split(",") if item.strip()]
    unknown = sorted(set(names) - set(universe))
    if unknown:
        raise SystemExit(f"unknown {kind}: {', '.join(unknown)}; choose from {sorted(universe)}")
    return names


def search(args: argparse.Namespace) -> dict:
    """Run the grid; returns ``{policy: {column: value}}`` rows, ranked."""
    policies = _csv(args.policies, POLICIES, "policies")
    designs = _csv(args.designs, DESIGNS, "designs")
    workloads = SUITE_BY_NAME[args.suite]
    rows = {}
    for policy in policies:
        config = bench_config(
            ops_per_core=args.ops, warmup_ops=args.warmup, llc_policy=policy
        )
        matrix, report = sweep_with_report(
            workloads, designs, config, jobs=args.jobs, cache_dir=args.cache_dir
        )
        row = {
            f"{design}_geomean": geometric_mean(
                matrix[w.name][design] for w in workloads
            )
            for design in designs
        }
        # prefetch-retention telemetry across the policy's measured runs
        useful = wasted = evictions = 0
        for result in report.results:
            useful += int(result.metrics.get("llc.useful_prefetches", 0))
            wasted += int(result.metrics.get("llc.wasted_prefetches", 0))
            evictions += int(result.metrics.get("llc.policy_evictions", 0))
        total = useful + wasted
        row["prefetch_retention"] = useful / total if total else 0.0
        row["policy_evictions"] = evictions
        counts = report.counts()
        print(
            f"  {policy:<10} {counts['jobs']} runs "
            f"({counts['executed']} executed, "
            f"{counts['disk_hits'] + counts['memory_hits']} cached, "
            f"{report.wall_seconds:.1f}s)"
        )
        rows[policy] = row
    rank_on = f"{designs[-1]}_geomean"
    ranked = dict(sorted(rows.items(), key=lambda kv: -kv[1][rank_on]))
    for rank, (policy, row) in enumerate(ranked.items(), start=1):
        row["rank"] = rank
    return ranked


def render_table(rows: dict) -> str:
    columns = [c for c in next(iter(rows.values()))]
    lines = ["| policy | " + " | ".join(columns) + " |"]
    lines.append("|---|" + "---|" * len(columns))
    for policy, row in rows.items():
        cells = [
            f"{row[c]:.3f}" if isinstance(row[c], float) else str(row[c])
            for c in columns
        ]
        lines.append(f"| {policy} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = parse_args(argv)
    if not args.no_disk_cache:
        runner.configure_disk_cache(args.cache_dir)
    print(
        f"policy search: {args.policies} x {args.designs} x suite "
        f"'{args.suite}' (ops={args.ops}, warmup={args.warmup})"
    )
    rows = search(args)
    print()
    print(render_table(rows))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(rows, indent=1, sort_keys=False) + "\n")
    print(f"\nsaved study rows to {args.out}")
    if args.render:
        from repro.analysis import experiments

        experiments.main([str(args.out.parent)])
    return 0


if __name__ == "__main__":
    sys.exit(main())
