#!/usr/bin/env python
"""CI smoke for one non-default LLC replacement policy.

Runs one short simulation per design under the given policy, then
proves the results round-trip through the content-addressed disk cache:
the memo table is dropped (as a fresh process would see it), the same
identities are requested again, and the replies must be served from
disk and — modulo the replay markers — compare equal to the originals.

Usage::

    python scripts/policy_smoke.py --policy srrip
    python scripts/policy_smoke.py --policy random --designs static_ptmc,prefetch
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.cache.replacement import DEFAULT_POLICY, POLICIES  # noqa: E402
from repro.sim import runner  # noqa: E402
from repro.sim.config import bench_config  # noqa: E402


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--policy", required=True, choices=sorted(set(POLICIES) - {DEFAULT_POLICY})
    )
    parser.add_argument("--workload", default="lbm06")
    parser.add_argument("--designs", default="static_ptmc,dynamic_ptmc")
    parser.add_argument("--ops", type=int, default=300)
    parser.add_argument("--warmup", type=int, default=150)
    return parser.parse_args(argv)


def comparable(result) -> dict:
    payload = result.to_json_dict()
    payload["extras"].pop("sim_seconds", None)
    payload["extras"].pop("cached", None)
    payload["extras"].pop("serve_seconds", None)
    return payload


def main(argv=None) -> int:
    args = parse_args(argv)
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    config = bench_config(
        ops_per_core=args.ops, warmup_ops=args.warmup, llc_policy=args.policy
    )
    failures = 0
    with tempfile.TemporaryDirectory(prefix="policy-smoke-") as cache_dir:
        runner.configure_disk_cache(cache_dir)
        originals = {}
        for design in designs:
            result, source = runner.simulate_with_source(args.workload, design, config)
            print(f"{args.policy} x {design}: {source}, {result.elapsed_cycles} cycles")
            if source != "executed":
                print("  FAIL: expected a cold execution", file=sys.stderr)
                failures += 1
            originals[design] = result

        runner.clear_cache()  # what a fresh process sees: only the disk store

        for design in designs:
            replay, source = runner.simulate_with_source(args.workload, design, config)
            if source != "disk":
                print(
                    f"  FAIL: {design} replay served from {source!r}, not disk",
                    file=sys.stderr,
                )
                failures += 1
            elif comparable(replay) != comparable(originals[design]):
                print(f"  FAIL: {design} disk replay differs", file=sys.stderr)
                failures += 1
            else:
                print(f"{args.policy} x {design}: disk round trip ok")
    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
        return 1
    print(f"policy smoke ok: {args.policy} across {len(designs)} designs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
