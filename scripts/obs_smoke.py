#!/usr/bin/env python
"""CI smoke test for the observability layer.

Exercises the three telemetry surfaces end to end without a network:

1. runs a traced + sampled simulation in-process and checks the
   time-series invariants (phase boundary, cumulative access counts,
   measured deltas summing to the run's window metrics),
2. re-runs uninstrumented and asserts the core payload is bitwise
   identical — observability must never perturb the simulation,
3. drives ``repro --trace-out ... timeline`` as a real subprocess and
   validates the emitted Chrome trace JSON against the trace-event
   schema (the same file Perfetto loads).

Run from the repo root: ``PYTHONPATH=src python scripts/obs_smoke.py``.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

OPS, WARMUP = 400, 200


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def traced_sampled_run():
    from repro.obs.sampler import ObsConfig
    from repro.obs.tracing import Tracer, set_tracer, validate_chrome_trace
    from repro.sim.config import quick_config
    from repro.sim.system import SimulatedSystem
    from repro.workloads.generators import spec_like

    config = quick_config(ops_per_core=OPS, warmup_ops=WARMUP)
    workload = spec_like("obssmoke", seed=11)

    tracer = set_tracer(Tracer(process_name="obs-smoke"))
    result = SimulatedSystem(
        workload, "dynamic_ptmc", config, obs=ObsConfig(sample_interval=300)
    ).run()
    set_tracer(None)

    series = result.timeseries
    if series is None:
        fail("sampled run produced no timeseries")
    boundary = [p for p in series.points if p.phase == "warmup"][-1]
    if boundary.accesses != config.num_cores * WARMUP:
        fail(f"warmup boundary at {boundary.accesses}, "
             f"wanted {config.num_cores * WARMUP}")
    for path in ("dram.reads", "llc.misses"):
        total = sum(series.series(path, phase="measured"))
        if total != result.metrics[path]:
            fail(f"{path}: sampled intervals sum to {total}, window metric "
                 f"is {result.metrics[path]}")
    print(f"timeseries OK: {len(series.points)} samples, boundary at "
          f"{boundary.accesses} accesses, measured intervals sum to window")

    events = validate_chrome_trace(tracer.to_chrome())
    names = {e["name"] for e in tracer.to_chrome()["traceEvents"]
             if e["ph"] != "M"}
    for wanted in ("sim.run", "sim.phase"):
        if wanted not in names:
            fail(f"trace missing span {wanted!r}")
    print(f"tracer OK: {events} valid Chrome events")

    plain = SimulatedSystem(workload, "dynamic_ptmc", config).run()
    want, got = plain.to_json_dict(), result.to_json_dict()
    if want.pop("timeseries") is not None:
        fail("uninstrumented run grew a timeseries")
    got.pop("timeseries")
    if got != want:
        fail("instrumented run perturbed the simulation payload")
    print("golden OK: instrumented payload bitwise-identical to plain run")


def timeline_cli(workdir: Path) -> None:
    from repro.obs.tracing import validate_chrome_trace

    trace_path = workdir / "trace.json"
    env = dict(os.environ, REPRO_CACHE_DIR=str(workdir / "simcache"))
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro",
            "--ops", str(OPS), "--warmup", str(WARMUP),
            "--trace-out", str(trace_path),
            "timeline", "lbm06", "dynamic_ptmc", "--interval", "300",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        fail(f"timeline CLI exited {proc.returncode}: {proc.stderr}")
    if "accesses/interval" not in proc.stdout:
        fail(f"timeline output missing sample header: {proc.stdout!r}")
    payload = json.loads(trace_path.read_text())
    events = validate_chrome_trace(payload)
    names = {e["name"] for e in payload["traceEvents"] if e["ph"] != "M"}
    for wanted in ("sim.run", "runner.execute"):
        if wanted not in names:
            fail(f"CLI trace missing span {wanted!r}")
    print(f"timeline CLI OK: sparklines rendered, {events} trace events "
          f"validated from {trace_path.name}")


def main() -> None:
    traced_sampled_run()
    timeline_cli(Path(tempfile.mkdtemp(prefix="repro-obs-smoke-")))
    print("obs smoke OK")


if __name__ == "__main__":
    main()
