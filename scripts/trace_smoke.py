#!/usr/bin/env python
"""CI smoke test for the real-trace ingestion subsystem.

Boots ``repro serve`` as a real subprocess on an ephemeral port, then:

1. generates a small ChampSim-style text trace on the fly,
2. uploads it twice over HTTP (``POST /traces``) and asserts the second
   upload — gzip of the *binary* encoding — dedups by content hash,
3. reads the characterization back (``GET /traces/<prefix>``),
4. submits a trace-backed job (``trace:<hash>``) and polls it to
   completion, asserting the result carries ``trace.*`` telemetry,
5. re-submits the same identity and asserts it is served from the
   shared disk cache without execution,
6. runs the same trace through the local CLI path (``repro trace run``)
   twice against the same cache dir and asserts the second invocation
   executes nothing (disk-cache round-trip across processes),
7. sends SIGTERM and verifies a clean drain.

Run from the repo root: ``PYTHONPATH=src python scripts/trace_smoke.py``.
"""

import gzip
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

OPS, WARMUP = 200, 100


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_trace_text() -> str:
    """A small deterministic ChampSim-style trace (reads, writes, reuse)."""
    lines = ["# trace-smoke: strided reads + hot write set"]
    for i in range(300):
        if i % 4 == 3:
            lines.append(f"w {(0x9000 + i % 12) * 64:#x}")
        else:
            lines.append(f"r {(0x1000 + (i * 5) % 80) * 64:#x}")
    return "\n".join(lines) + "\n"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-smoke-"))
    cache_dir = workdir / "simcache"
    trace_dir = workdir / "traces"
    db_path = workdir / "service.db"
    env = dict(
        os.environ,
        REPRO_CACHE_DIR=str(cache_dir),
        REPRO_TRACE_DIR=str(trace_dir),
    )
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")

    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--ops", str(OPS), "--warmup", str(WARMUP),
            "serve", "--port", "0", "--db", str(db_path),
            "--workers", "2", "--drain-seconds", "30",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        url = None
        preamble = []
        for _ in range(20):
            line = daemon.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if match:
                url = match.group(1)
                break
            preamble.append(line)
        if url is None:
            fail(f"daemon did not announce its address: {preamble!r}")
        print(f"daemon up at {url}")

        from repro.service.client import ServiceClient
        from repro.traces.formats import encode_records, parse_bytes

        client = ServiceClient(url)

        text = make_trace_text().encode()
        records = list(parse_bytes(text))
        first = client.upload_trace(text, name="smoke.trace")
        if not first["created"]:
            fail(f"fresh upload not created: {first}")
        digest = first["hash"]
        print(f"uploaded trace {digest[:12]} ({first['records']} records)")

        # same records, different container: gzip of the binary encoding
        again = client.upload_trace(
            gzip.compress(encode_records(records)), name="smoke-again"
        )
        if again["created"] or again["hash"] != digest:
            fail(f"re-upload did not dedup by content: {again}")
        print("re-upload (binary+gzip container) deduplicated by content hash")

        info = client.trace_info(digest[:10])
        if info["records"] != len(records) or not info["reuse_distance"]:
            fail(f"characterization wrong: {info}")
        print(
            f"characterization: {info['records']} records, "
            f"{info['unique_lines']} lines, write_frac {info['write_frac']:.2f}"
        )

        job = client.submit(f"trace:{digest[:12]}", "dynamic_ptmc",
                            ops=OPS, warmup=WARMUP)
        if job["workload"] != f"trace:{digest}":
            fail(f"abbreviated hash not canonicalized: {job['workload']}")
        done = client.wait(job["id"], timeout=300)
        print(f"trace-backed job finished: {done['state']} [{done['source']}]")
        result = client.result(job["id"])
        if result.metrics.get("trace.replayed_records", 0) <= 0:
            fail("result carries no trace.replayed_records")
        print(
            f"result replayed {int(result.metrics['trace.replayed_records'])} "
            f"records ({int(result.metrics['trace.synthesized_fills'])} "
            "synthesized fills)"
        )

        rerun = client.submit(f"trace:{digest}", "dynamic_ptmc",
                              ops=OPS, warmup=WARMUP)
        if rerun["state"] != "done" or rerun["source"] != "cache":
            fail(f"re-submission not served from cache: {rerun}")
        print("re-submission served instantly from the shared disk cache")

        metrics = client.metrics()
        for path in ("trace.ingested", "trace.dedup_hits", "trace.loads"):
            if path not in metrics:
                fail(f"metrics missing {path}")
        if metrics["trace.ingested"] != 1 or metrics["trace.dedup_hits"] != 1:
            fail(f"unexpected trace ingest counters: {metrics}")
        print("daemon metrics expose trace.* counters")

        # CLI path against the same stores: second run must execute nothing
        run_args = [
            sys.executable, "-m", "repro",
            "--ops", str(OPS), "--warmup", str(WARMUP),
            "trace", "run", digest[:12], "--designs", "static_ptmc",
        ]
        outputs = []
        for attempt in (1, 2):
            proc = subprocess.run(
                run_args, env=env, capture_output=True, text=True, timeout=600
            )
            if proc.returncode != 0:
                fail(f"repro trace run #{attempt} exited {proc.returncode}: "
                     f"{proc.stdout}\n{proc.stderr}")
            outputs.append(proc.stdout)
        if " 0 executed" not in outputs[1]:
            fail(f"second trace run executed work:\n{outputs[1]}")

        def speedup_rows(text):
            return [ln for ln in text.splitlines() if ln.startswith("static_ptmc")]

        if speedup_rows(outputs[0]) != speedup_rows(outputs[1]):
            fail("disk-cached trace run differs from the executed one")
        print("repro trace run round-trips through the disk cache across "
              "processes")

        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not drain within 60s of SIGTERM")
        if daemon.returncode != 0:
            fail(f"daemon exited {daemon.returncode} after SIGTERM")
        print("daemon drained cleanly on SIGTERM")
        print("trace smoke OK")
    finally:
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    main()
