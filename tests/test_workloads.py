"""Tests for the synthetic workload generators and suite roster."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import HybridCompressor
from repro.workloads import (
    ALL_64,
    GAP,
    LOW_MPKI,
    MEMORY_INTENSIVE,
    MIXES,
    SPEC06,
    SPEC17,
    DataGenerator,
    DataProfile,
    PatternKind,
    WorkloadTraceGenerator,
    get_workload,
)
from repro.workloads.data_patterns import GRAPH_LIKE, SPEC_LIKE


class TestDataPatterns:
    def test_deterministic(self):
        a = DataGenerator(SPEC_LIKE, seed=1).line(100, 0)
        b = DataGenerator(SPEC_LIKE, seed=1).line(100, 0)
        assert a == b

    def test_seed_changes_data(self):
        a = DataGenerator(SPEC_LIKE, seed=1).line(100, 0)
        b = DataGenerator(SPEC_LIKE, seed=2).line(100, 0)
        assert a != b

    def test_version_changes_data(self):
        gen = DataGenerator(SPEC_LIKE, seed=1)
        kind = gen.kind(100, 0)
        if kind is not PatternKind.ZERO:
            assert gen.line(100, 0) != gen.line(100, 1)

    def test_line_size(self):
        gen = DataGenerator(SPEC_LIKE, seed=1)
        for vline in range(50):
            assert len(gen.line(vline)) == 64

    def test_page_homogeneity(self):
        gen = DataGenerator(DataProfile({PatternKind.POINTER: 1.0}, noise=0.0), seed=3)
        kinds = {gen.kind(vline) for vline in range(64)}
        assert kinds == {PatternKind.POINTER}

    def test_write_scramble_rate(self):
        gen = DataGenerator(SPEC_LIKE, seed=5, write_scramble=1.0)
        assert gen.kind(100, version=1) is PatternKind.RANDOM

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DataProfile({})
        with pytest.raises(ValueError):
            DataProfile({PatternKind.ZERO: 1.0}, noise=2.0)

    def test_compressibility_by_family(self):
        hybrid = HybridCompressor()
        gen = DataGenerator(DataProfile({PatternKind.ZERO: 1.0}, noise=0.0), seed=1)
        assert hybrid.compressed_size(gen.line(0)) < 8
        gen = DataGenerator(DataProfile({PatternKind.RANDOM: 1.0}, noise=0.0), seed=1)
        assert hybrid.compressed_size(gen.line(0)) == 64
        gen = DataGenerator(DataProfile({PatternKind.MEDIUM: 1.0}, noise=0.0), seed=1)
        size = hybrid.compressed_size(gen.line(0))
        assert 30 < size < 64  # line-compressible, pair-incompatible

    def test_spec_more_compressible_than_graph(self):
        hybrid = HybridCompressor()
        spec_gen = DataGenerator(SPEC_LIKE, seed=1)
        graph_gen = DataGenerator(GRAPH_LIKE, seed=1)
        spec_size = sum(hybrid.compressed_size(spec_gen.line(v)) for v in range(0, 2048, 8))
        graph_size = sum(hybrid.compressed_size(graph_gen.line(v)) for v in range(0, 2048, 8))
        assert spec_size < graph_size


class TestTraceGenerator:
    def _trace(self, spec_name="lbm06", n=2000):
        gen = WorkloadTraceGenerator(get_workload(spec_name), core_id=0)
        return gen, list(gen.generate(n))

    def test_deterministic(self):
        _, a = self._trace()
        _, b = self._trace()
        assert [(r.vline, r.is_write) for r in a] == [(r.vline, r.is_write) for r in b]

    def test_cores_differ(self):
        spec = get_workload("lbm06")
        a = list(WorkloadTraceGenerator(spec, 0).generate(100))
        b = list(WorkloadTraceGenerator(spec, 1).generate(100))
        assert [r.vline for r in a] != [r.vline for r in b]

    def test_addresses_within_footprint(self):
        spec = get_workload("lbm06")
        _, records = self._trace()
        assert all(0 <= r.vline < spec.footprint_lines for r in records)

    def test_write_fraction_approximate(self):
        spec = get_workload("lbm06")
        _, records = self._trace(n=4000)
        writes = sum(r.is_write for r in records)
        assert abs(writes / 4000 - spec.write_frac) < 0.05

    def test_writes_carry_data(self):
        _, records = self._trace()
        for r in records:
            if r.is_write:
                assert r.write_data is not None and len(r.write_data) == 64
            else:
                assert r.write_data is None

    def test_reference_tracks_latest_write(self):
        gen, records = self._trace()
        last = {}
        for r in records:
            if r.is_write:
                last[r.vline] = r.write_data
        assert gen.reference == last

    def test_spatial_locality_spec_vs_gap(self):
        def seq_fraction(name):
            _, records = self._trace(name, n=4000)
            seq = sum(
                1
                for a, b in zip(records, records[1:])
                if b.vline == a.vline + 1
            )
            return seq / len(records)

        assert seq_fraction("lbm06") > 2 * seq_fraction("bfs.twitter")

    def test_current_data_version_aware(self):
        gen = WorkloadTraceGenerator(get_workload("lbm06"), 0)
        v0 = gen.current_data(10)
        for record in gen.generate(3000):
            pass
        if 10 in gen.reference:
            assert gen.current_data(10) == gen.reference[10]
        else:
            assert gen.current_data(10) == v0


class TestSuites:
    def test_counts_match_paper(self):
        assert len(SPEC06) == 7
        assert len(SPEC17) == 5
        assert len(GAP) == 9
        assert len(MIXES) == 6
        assert len(MEMORY_INTENSIVE) == 27  # paper's memory-intensive set
        assert len(ALL_64) == 64  # extended study (Fig. 17)

    def test_names_unique(self):
        names = [w.name for w in MEMORY_INTENSIVE + LOW_MPKI]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert get_workload("lbm06").suite == "spec06"
        assert get_workload("bfs.twitter").suite == "gap"
        with pytest.raises(KeyError):
            get_workload("nonexistent")

    def test_mix_assigns_specs_per_core(self):
        mix = MIXES[0]
        specs = {mix.spec_for_core(c).name for c in range(8)}
        assert len(specs) >= 2

    def test_gap_footprints_larger(self):
        spec_fp = max(w.footprint_lines for w in SPEC06)
        gap_fp = min(w.footprint_lines for w in GAP)
        assert gap_fp > spec_fp

    def test_memory_intensive_flag(self):
        assert all(w.memory_intensive for w in MEMORY_INTENSIVE)
        assert not any(w.memory_intensive for w in LOW_MPKI)


@settings(max_examples=20)
@given(st.integers(min_value=0, max_value=2**20), st.integers(0, 5))
def test_line_data_pure_function(vline, version):
    gen1 = DataGenerator(SPEC_LIKE, seed=42)
    gen2 = DataGenerator(SPEC_LIKE, seed=42)
    assert gen1.line(vline, version) == gen2.line(vline, version)
