"""Tests for the trivial zero-line compressor."""

import pytest

from repro.compression.base import CompressionError
from repro.compression.zeroline import ZeroLine
from tests.lineutils import zero_line

zl = ZeroLine()


def test_zero_line_compresses():
    assert zl.compress(zero_line()) == b"\x00"


def test_nonzero_rejected():
    line = b"\x00" * 63 + b"\x01"
    assert zl.compress(line) is None


def test_roundtrip():
    assert zl.decompress(zl.compress(zero_line())) == zero_line()


def test_bad_payload():
    with pytest.raises(CompressionError):
        zl.decompress(b"\x01")


def test_wrong_size():
    with pytest.raises(ValueError):
        zl.compress(b"\x00" * 10)
