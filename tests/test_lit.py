"""Tests for the Line Inversion Table."""

import pytest

from repro.core.lit import LineInversionTable, LITOverflow, LITPolicy


class TestBasics:
    def test_empty(self):
        lit = LineInversionTable()
        assert len(lit) == 0
        assert not lit.full
        assert not lit.is_inverted(5)

    def test_insert_and_lookup(self):
        lit = LineInversionTable()
        lit.insert(42)
        assert 42 in lit
        assert lit.is_inverted(42)
        assert len(lit) == 1

    def test_duplicate_insert_is_noop(self):
        lit = LineInversionTable()
        lit.insert(42)
        assert lit.insert(42) is False
        assert len(lit) == 1

    def test_remove(self):
        lit = LineInversionTable()
        lit.insert(42)
        lit.remove(42)
        assert 42 not in lit
        assert not lit.is_inverted(42)

    def test_remove_absent_is_noop(self):
        lit = LineInversionTable()
        assert lit.remove(7) is False

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LineInversionTable(capacity=0)

    def test_entries_snapshot(self):
        lit = LineInversionTable()
        lit.insert(1)
        lit.insert(2)
        assert lit.entries() == {1, 2}

    def test_clear(self):
        lit = LineInversionTable()
        lit.insert(1)
        lit.clear()
        assert len(lit) == 0


class TestRekeyPolicy:
    def test_overflow_raises(self):
        lit = LineInversionTable(capacity=2, policy=LITPolicy.REKEY)
        lit.insert(1)
        lit.insert(2)
        assert lit.full
        with pytest.raises(LITOverflow):
            lit.insert(3)
        assert lit.overflows == 1

    def test_after_clear_insert_succeeds(self):
        lit = LineInversionTable(capacity=1, policy=LITPolicy.REKEY)
        lit.insert(1)
        with pytest.raises(LITOverflow):
            lit.insert(2)
        lit.clear()
        assert lit.insert(2) is False  # fits on-chip now


class TestMemoryMappedPolicy:
    def test_overflow_spills(self):
        lit = LineInversionTable(capacity=1, policy=LITPolicy.MEMORY_MAPPED)
        lit.insert(1)
        spilled = lit.insert(2)
        assert spilled is True
        assert lit.overflows == 1

    def test_spilled_lookup_counts_memory_access(self):
        lit = LineInversionTable(capacity=1, policy=LITPolicy.MEMORY_MAPPED)
        lit.insert(1)
        lit.insert(2)
        before = lit.spill_lookups
        assert lit.is_inverted(2)
        assert lit.spill_lookups == before + 1

    def test_onchip_hit_does_not_touch_spill(self):
        lit = LineInversionTable(capacity=1, policy=LITPolicy.MEMORY_MAPPED)
        lit.insert(1)
        before = lit.spill_lookups
        assert lit.is_inverted(1)
        assert lit.spill_lookups == before

    def test_remove_spilled_reports_memory_write(self):
        lit = LineInversionTable(capacity=1, policy=LITPolicy.MEMORY_MAPPED)
        lit.insert(1)
        lit.insert(2)
        assert lit.remove(2) is True
        assert lit.remove(1) is False  # on-chip entry, no memory touch


class TestStorage:
    def test_paper_cost(self):
        # Table III: 16 entries = 64 bytes
        assert LineInversionTable(capacity=16).storage_bits() == 64 * 8
