"""Tests for DMA/multi-socket transparency (paper §VI-G)."""

import pytest

from repro.core.ptmc import PTMCController
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.sim.dma import DMAAgent
from repro.types import Level
from tests.controller_harness import FakeLLC, evicted
from tests.lineutils import quad_friendly_line


@pytest.fixture
def setup():
    memory = PhysicalMemory(1 << 16)
    controller = PTMCController(memory, DRAMSystem())
    llc = FakeLLC()
    return controller, llc, DMAAgent(controller, llc, core_id=7)


class TestDMARead:
    def test_reads_compressed_data_transparently(self, setup):
        controller, llc, dma = setup
        lines = [quad_friendly_line(i) for i in range(4)]
        seed_llc = FakeLLC()
        for i in range(1, 4):
            seed_llc.add(8 + i, lines[i], dirty=True)
        controller.handle_eviction(evicted(8, lines[0]), 0, 0, seed_llc)
        block = dma.read_block(8, 4)
        assert block == b"".join(lines)
        assert dma.reads == 4

    def test_snoops_dirty_llc_copy(self, setup):
        controller, llc, dma = setup
        newest = b"\x42" * 64
        llc.add(20, newest, dirty=True)
        controller.memory.write(20, b"\x00" * 64)  # stale memory copy
        assert dma.read_block(20, 1) == newest

    def test_reads_inverted_lines_correctly(self, setup):
        controller, llc, dma = setup
        colliding = b"\x55" * 60 + controller.markers.marker(30, Level.PAIR)
        controller.handle_eviction(evicted(30, colliding), 0, 0, FakeLLC())
        assert dma.read_block(30, 1) == colliding


class TestDMAWrite:
    def test_write_then_cpu_read(self, setup):
        controller, llc, dma = setup
        payload = bytes(range(64)) + bytes(reversed(range(64)))
        assert dma.write_block(40, payload) == 2
        assert controller.read_line(40, 0, 0, llc).data == payload[:64]
        assert controller.read_line(41, 0, 0, llc).data == payload[64:]

    def test_write_invalidates_cached_copies(self, setup):
        controller, llc, dma = setup
        llc.add(50, b"\x01" * 64, dirty=False)
        dma.write_block(50, b"\x02" * 64)
        assert llc.probe(50) is None
        assert dma.read_block(50, 1) == b"\x02" * 64

    def test_write_colliding_data_is_inverted(self, setup):
        controller, llc, dma = setup
        colliding = b"\x66" * 60 + controller.markers.marker(60, Level.QUAD)
        dma.write_block(60, colliding)
        assert 60 in controller.lit
        assert dma.read_block(60, 1) == colliding

    def test_write_over_compressed_group_relocates(self, setup):
        """DMA overwriting one member of a compressed group must not
        corrupt the other members."""
        controller, llc, dma = setup
        lines = [quad_friendly_line(i) for i in range(4)]
        seed_llc = FakeLLC()
        for i in range(1, 4):
            seed_llc.add(8 + i, lines[i], dirty=True)
        controller.handle_eviction(evicted(8, lines[0]), 0, 0, seed_llc)
        import random

        from tests.lineutils import random_line

        new_data = random_line(random.Random(3))
        dma.write_block(9, new_data)
        assert dma.read_block(9, 1) == new_data
        for i in (0, 2, 3):
            assert dma.read_block(8 + i, 1) == lines[i]

    def test_unaligned_write_rejected(self, setup):
        _, _, dma = setup
        with pytest.raises(ValueError):
            dma.write_block(0, b"\x00" * 65)


class TestDMAWriteStaleness:
    def test_write_invalidates_compressed_copy_even_when_predicted(self, setup):
        """Regression: after a DMA write to a quad member, a read that
        (correctly, per LCT history) predicts QUAD must not see the old
        quad's stale data."""
        controller, llc, dma = setup
        lines = [quad_friendly_line(i) for i in range(4)]
        seed_llc = FakeLLC()
        for i in range(1, 4):
            seed_llc.add(8 + i, lines[i], dirty=True)
        controller.handle_eviction(evicted(8, lines[0]), 0, 0, seed_llc)
        # teach the LCT that this page is quad-compressed
        controller.read_line(10, 0, 0, FakeLLC())
        import random

        from tests.lineutils import random_line

        new_data = random_line(random.Random(11))
        dma.write_block(9, new_data)
        result = controller.read_line(9, 0, 0, FakeLLC())
        assert result.data == new_data
        # and the other members survived the relocation
        for i in (0, 2, 3):
            assert controller.read_line(8 + i, 0, 0, FakeLLC()).data == lines[i]
