"""Unit tests for the job-queue service: store, scheduler, policies.

The HTTP surface is covered end-to-end in ``test_service_http.py``;
here the store and scheduler are exercised directly, including the
retry/backoff policy, crash-orphan recovery, and the graceful-drain
guarantee (no ``running`` rows after a stop).
"""

import threading
import time

import pytest

from repro.service import jobstore
from repro.service.jobstore import JobStore
from repro.service.scheduler import Scheduler, ServiceStats
from repro.sim import runner
from repro.sim.config import bench_config
from repro.sim.diskcache import DiskCache, cache_key
from repro.workloads import get_workload

#: Small but real simulation scale (matches the CLI tests).
OVERRIDES = {"ops_per_core": 200, "warmup_ops": 100}
CFG = bench_config(**OVERRIDES)


def key_for(workload: str, design: str) -> str:
    return cache_key(get_workload(workload), design, CFG)


def submit(store: JobStore, workload="lbm06", design="ideal", **kwargs):
    job, created = store.submit(
        workload, design, key_for(workload, design), config=OVERRIDES, **kwargs
    )
    return job, created


def wait_for(condition, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def store(tmp_path):
    s = JobStore(tmp_path / "jobs.db")
    yield s
    s.close()


@pytest.fixture(autouse=True)
def _isolated_runner(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "simcache"))
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)
    yield
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)


class TestJobStore:
    def test_submit_round_trip(self, store):
        job, created = submit(store, priority=3)
        assert created
        assert job.state == jobstore.QUEUED
        assert job.attempts == 0
        assert job.priority == 3
        assert job.config == OVERRIDES
        assert store.get(job.id).id == job.id

    def test_dedup_on_active_key(self, store):
        first, created = submit(store)
        second, created2 = submit(store)
        assert created and not created2
        assert second.id == first.id
        assert store.counts()[jobstore.QUEUED] == 1

    def test_terminal_job_frees_the_dedup_slot(self, store):
        first, _ = submit(store)
        claimed = store.claim()
        store.finish(claimed.id, "executed")
        second, created = submit(store)
        assert created
        assert second.id != first.id

    def test_claim_order_priority_then_fifo(self, store):
        low, _ = submit(store, "lbm06", "ideal", priority=0)
        high, _ = submit(store, "mcf06", "ideal", priority=5)
        low2, _ = submit(store, "lbm06", "static_ptmc", priority=0)
        order = [store.claim().id for _ in range(3)]
        assert order == [high.id, low.id, low2.id]
        assert store.claim() is None

    def test_claim_marks_running_and_counts_attempt(self, store):
        submit(store)
        job = store.claim()
        assert job.state == jobstore.RUNNING
        assert job.attempts == 1
        assert job.started_at is not None

    def test_backoff_gates_reclaim(self, store):
        submit(store)
        job = store.claim()
        store.fail(job.id, "boom", retry_delay=60.0)
        assert store.get(job.id).state == jobstore.QUEUED
        assert store.claim() is None  # not_before is in the future
        retry = store.claim(now=time.time() + 61.0)
        assert retry is not None and retry.id == job.id
        assert retry.attempts == 2

    def test_fail_terminal_records_error(self, store):
        submit(store)
        job = store.claim()
        store.fail(job.id, "no retry left")
        final = store.get(job.id)
        assert final.state == jobstore.FAILED
        assert final.error == "no retry left"
        assert final.finished_at is not None

    def test_cancel_only_queued(self, store):
        job, _ = submit(store)
        assert store.cancel(job.id)
        assert store.get(job.id).state == jobstore.CANCELLED
        job2, _ = submit(store, "mcf06")
        running = store.claim()
        assert running.id == job2.id
        assert not store.cancel(job2.id)
        assert store.get(job2.id).state == jobstore.RUNNING

    def test_recover_orphans_requeues_without_refund(self, store):
        submit(store)
        store.claim()
        orphans = store.recover_orphans()
        assert len(orphans) == 1
        job = store.get(orphans[0].id)
        assert job.state == jobstore.QUEUED
        assert job.attempts == 1  # the crashed claim still counts
        assert job.started_at is None

    def test_requeue_with_refund(self, store):
        submit(store)
        job = store.claim()
        store.requeue(job.id, refund_attempt=True)
        back = store.get(job.id)
        assert back.state == jobstore.QUEUED
        assert back.attempts == 0

    def test_persistence_across_reopen(self, store, tmp_path):
        job, _ = submit(store)
        store.close()
        reopened = JobStore(tmp_path / "jobs.db")
        try:
            assert reopened.get(job.id).workload == "lbm06"
            assert reopened.counts()[jobstore.QUEUED] == 1
        finally:
            reopened.close()

    def test_find_by_prefix(self, store):
        job, _ = submit(store)
        assert store.find(job.id[:8]).id == job.id
        with pytest.raises(KeyError):
            store.find("nonexistent")

    def test_submitted_done_jobs_need_no_claim(self, store):
        job, created = store.submit(
            "lbm06", "ideal", "somekey", state=jobstore.DONE, source="cache"
        )
        assert created and job.state == jobstore.DONE
        assert job.source == "cache"
        assert store.claim() is None


def make_scheduler(store, tmp_path, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("drain_seconds", 60.0)
    return Scheduler(store, cache_dir=str(tmp_path / "simcache"), **kwargs)


def run_in_thread(scheduler):
    thread = threading.Thread(target=scheduler.run, daemon=True)
    thread.start()
    return thread


def stop_and_join(scheduler, thread, timeout=60.0):
    scheduler.request_stop()
    thread.join(timeout)
    assert not thread.is_alive(), "scheduler failed to drain in time"


class TestScheduler:
    def test_executes_job_and_writes_shared_cache(self, store, tmp_path):
        job, _ = submit(store)
        scheduler = make_scheduler(store, tmp_path)
        thread = run_in_thread(scheduler)
        try:
            assert wait_for(lambda: store.get(job.id).terminal)
        finally:
            stop_and_join(scheduler, thread)
        done = store.get(job.id)
        assert done.state == jobstore.DONE
        assert done.source == "executed"
        cached = DiskCache(tmp_path / "simcache").get(job.key)
        assert cached is not None
        direct = runner.simulate("lbm06", "ideal", CFG, use_cache=False)
        a, b = cached.to_json_dict(), direct.to_json_dict()
        a["extras"].pop("sim_seconds"), b["extras"].pop("sim_seconds")
        assert a == b
        assert scheduler.stats.completed == 1

    def test_unknown_workload_fails_terminally(self, store, tmp_path):
        job, _ = store.submit("no_such_workload", "ideal", "k1", config={})
        scheduler = make_scheduler(store, tmp_path)
        thread = run_in_thread(scheduler)
        try:
            assert wait_for(lambda: store.get(job.id).terminal, timeout=30)
        finally:
            stop_and_join(scheduler, thread)
        failed = store.get(job.id)
        assert failed.state == jobstore.FAILED
        assert "unknown workload" in failed.error
        assert scheduler.stats.failed == 1
        assert scheduler.stats.retried == 0

    def test_worker_error_retries_then_fails(self, store, tmp_path):
        # A design the simulator cannot build fails inside the worker,
        # exercising the retry/backoff path rather than dispatch validation.
        job, _ = store.submit(
            "lbm06", "warp_drive", "k2", config=OVERRIDES, max_attempts=2
        )
        scheduler = make_scheduler(store, tmp_path)
        thread = run_in_thread(scheduler)
        try:
            assert wait_for(lambda: store.get(job.id).terminal)
        finally:
            stop_and_join(scheduler, thread)
        failed = store.get(job.id)
        assert failed.state == jobstore.FAILED
        assert failed.attempts == 2
        assert scheduler.stats.retried == 1
        assert scheduler.stats.failed == 1

    def test_orphan_recovery_completes_job(self, store, tmp_path):
        job, _ = submit(store)
        store.claim()  # a previous daemon "crashed" holding this job
        assert store.counts()[jobstore.RUNNING] == 1
        scheduler = make_scheduler(store, tmp_path)
        thread = run_in_thread(scheduler)
        try:
            assert wait_for(lambda: store.get(job.id).terminal)
        finally:
            stop_and_join(scheduler, thread)
        assert scheduler.stats.orphans_recovered == 1
        assert store.get(job.id).state == jobstore.DONE

    def test_graceful_drain_leaves_no_running_rows(self, store, tmp_path):
        # Enough work that a stop request lands mid-batch.
        for workload in ("lbm06", "mcf06", "xz17"):
            for design in ("ideal", "uncompressed"):
                submit(store, workload, design)
        scheduler = make_scheduler(store, tmp_path, workers=2)
        thread = run_in_thread(scheduler)
        wait_for(lambda: scheduler.inflight > 0, timeout=30)
        stop_and_join(scheduler, thread)
        counts = store.counts()
        assert counts[jobstore.RUNNING] == 0
        # every job either finished or went back to the queue intact
        for job in store.list_jobs():
            assert job.state in (jobstore.DONE, jobstore.QUEUED)
            if job.state == jobstore.QUEUED:
                assert job.attempts == 0  # drained claims are refunded

    def test_timeout_fails_job_with_deadline_error(self, store, tmp_path):
        slow = {"ops_per_core": 60_000, "warmup_ops": 30_000}
        slow_key = cache_key(get_workload("lbm06"), "ideal", bench_config(**slow))
        job, _ = store.submit(
            "lbm06", "ideal", slow_key, config=slow, max_attempts=1, timeout=0.05
        )
        scheduler = make_scheduler(store, tmp_path)
        thread = run_in_thread(scheduler)
        try:
            assert wait_for(lambda: store.get(job.id).terminal, timeout=60)
        finally:
            stop_and_join(scheduler, thread)
        failed = store.get(job.id)
        assert failed.state == jobstore.FAILED
        assert "timeout" in failed.error
        assert scheduler.stats.timeouts >= 1


class TestServiceStatsRegistry:
    def test_counters_and_queue_depth_registered(self, store, tmp_path):
        from repro.telemetry import StatRegistry

        stats = ServiceStats()
        registry = StatRegistry()
        stats.register_stats(registry.scope("service"), store)
        submit(store)
        stats.completed += 2
        metrics = registry.delta()
        assert metrics["service.queue_depth"] == 1
        assert metrics["service.completed"] == 2
        assert metrics["service.running"] == 0
