"""Property-based tests: PTMC's memory state is always interpretable.

A random sequence of evictions and reads through the controller must
never lose data: every line reads back its last written value, and every
read terminates within the candidate-location bound.  The data generator
mixes compressible families with marker-colliding payloads so inversion,
relocation and invalidation all churn.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base_controller import NullLLCView
from repro.core.markers import invert
from repro.core.ptmc import PTMCConfig
from repro.types import Level
from tests.controller_harness import FakeLLC, evicted, make_ptmc
from tests.lineutils import pointer_line, quad_friendly_line, random_line, zero_line

NULL = NullLLCView()


def payload_for(ptmc, choice: int, addr: int) -> bytes:
    """Deterministically pick line contents, including nasty cases."""
    kind = choice % 6
    if kind == 0:
        return zero_line()
    if kind == 1:
        return quad_friendly_line(choice)
    if kind == 2:
        return pointer_line(base=0x7F0000000000 + (choice << 24))
    if kind == 3:
        return random_line(random.Random(choice))
    if kind == 4:  # marker collision: must be stored inverted
        return b"\x77" * 60 + ptmc.markers.marker(addr, Level.PAIR)
    # tail equals an inverted marker: must NOT be inverted
    return b"\x66" * 60 + invert(ptmc.markers.marker(addr, Level.QUAD))


operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=31),  # line address (8 groups)
        st.integers(min_value=0, max_value=10_000),  # data choice
        st.booleans(),  # co-evict resident neighbours?
    ),
    min_size=1,
    max_size=40,
)


def actual_level(ptmc, addr) -> Level:
    """The compression level a fill of ``addr`` would observe right now.

    LLC tags are refreshed from the marker at fill time, so eviction-time
    tags always reflect the line's true residency; the property harness
    reproduces that hardware invariant.
    """
    from repro.core import address_map
    from repro.core.markers import SlotKind

    for loc, _ in address_map.candidate_locations(addr):
        cls = ptmc.markers.classify(loc, ptmc.memory.read(loc))
        if cls.kind in (SlotKind.PAIR, SlotKind.QUAD):
            if address_map.location_for(addr, cls.level) == loc:
                return cls.level
    return Level.UNCOMPRESSED


@settings(max_examples=60, deadline=None)
@given(operations)
def test_eviction_sequences_preserve_data(ops):
    ptmc = make_ptmc()
    expected = {}
    for addr, choice, with_neighbours in ops:
        data = payload_for(ptmc, choice, addr)
        llc = FakeLLC()
        if with_neighbours:
            # neighbours currently hold their latest values, tagged with
            # their true residency level (as a real fill would)
            base = addr & ~3
            for neighbour in range(base, base + 4):
                if neighbour != addr and neighbour in expected:
                    llc.add(
                        neighbour,
                        expected[neighbour],
                        dirty=False,
                        fill_level=actual_level(ptmc, neighbour),
                    )
        tag = actual_level(ptmc, addr)
        expected[addr] = data
        ptmc.handle_eviction(
            evicted(addr, data, fill_level=tag), 0, 0, llc
        )
        # neighbours that were ganged out keep their values in memory
    for addr, data in expected.items():
        result = ptmc.read_line(addr, 0, 0, NULL)
        assert result.data == data, f"line {addr} corrupted"
        assert result.accesses <= 3


@settings(max_examples=30, deadline=None)
@given(operations)
def test_reads_never_disturb_state(ops):
    ptmc = make_ptmc()
    expected = {}
    for addr, choice, _ in ops:
        data = payload_for(ptmc, choice, addr)
        tag = actual_level(ptmc, addr)
        expected[addr] = data
        ptmc.handle_eviction(evicted(addr, data, fill_level=tag), 0, 0, FakeLLC())
    # interleave reads in a scrambled order, twice
    order = sorted(expected) + sorted(expected, reverse=True)
    for addr in order:
        assert ptmc.read_line(addr, 0, 0, NULL).data == expected[addr]


@settings(max_examples=30, deadline=None)
@given(operations, st.integers(min_value=1, max_value=4))
def test_tiny_lit_with_rekey_still_correct(ops, lit_capacity):
    """Even a 1-entry LIT (forcing frequent rekeys) must never lose data."""
    ptmc = make_ptmc(config=PTMCConfig(lit_capacity=lit_capacity))
    expected = {}
    for addr, choice, _ in ops:
        data = payload_for(ptmc, choice, addr)
        tag = actual_level(ptmc, addr)
        expected[addr] = data
        ptmc.handle_eviction(evicted(addr, data, fill_level=tag), 0, 0, FakeLLC())
    for addr, data in expected.items():
        assert ptmc.read_line(addr, 0, 0, NULL).data == data


@settings(max_examples=30, deadline=None)
@given(operations)
def test_memory_mapped_lit_correct(ops):
    from repro.core.lit import LITPolicy

    ptmc = make_ptmc(config=PTMCConfig(lit_capacity=1, lit_policy=LITPolicy.MEMORY_MAPPED))
    expected = {}
    for addr, choice, _ in ops:
        data = payload_for(ptmc, choice, addr)
        tag = actual_level(ptmc, addr)
        expected[addr] = data
        ptmc.handle_eviction(evicted(addr, data, fill_level=tag), 0, 0, FakeLLC())
    for addr, data in expected.items():
        assert ptmc.read_line(addr, 0, 0, NULL).data == data


@settings(max_examples=25, deadline=None)
@given(operations)
def test_non_ganged_ablation_correct(ops):
    """The retain-lines ablation (footnote 7) must stay functionally exact."""
    ptmc = make_ptmc(config=PTMCConfig(ganged_eviction=False))
    expected = {}
    for addr, choice, with_neighbours in ops:
        data = payload_for(ptmc, choice, addr)
        llc = FakeLLC()
        if with_neighbours:
            base = addr & ~3
            for neighbour in range(base, base + 4):
                if neighbour != addr and neighbour in expected:
                    llc.add(
                        neighbour,
                        expected[neighbour],
                        dirty=False,
                        fill_level=actual_level(ptmc, neighbour),
                    )
        tag = actual_level(ptmc, addr)
        expected[addr] = data
        ptmc.handle_eviction(evicted(addr, data, fill_level=tag), 0, 0, llc)
    for addr, data in expected.items():
        assert ptmc.read_line(addr, 0, 0, NULL).data == data
