"""Attack-resilience of the marker scheme (paper §IV-C).

The paper's threat model: an adversary who can choose the data values it
writes tries to flood the Line Inversion Table with marker collisions
(each collision occupies an LIT entry; overflow forces recovery work).
With keyed per-line markers the adversary cannot construct colliding
data without the secret key; with a known/weak scheme it trivially can.
These tests demonstrate both sides of that argument.
"""

import random

from repro.core.lit import LITPolicy
from repro.core.markers import MarkerScheme
from repro.core.ptmc import PTMCConfig
from repro.types import Level
from tests.controller_harness import FakeLLC, evicted, make_ptmc


class TestAdversaryWithoutKey:
    def test_guessing_markers_fails(self):
        """An adversary who knows the algorithm but not the key cannot
        produce colliding tails better than chance."""
        secret = MarkerScheme(key=0xC0FFEE)
        adversary_model = MarkerScheme(key=0xBAD)  # wrong key guess
        collisions = 0
        for addr in range(2_000):
            guess = b"\x00" * 60 + adversary_model.marker(addr, Level.PAIR)
            if secret.collides(addr, guess):
                collisions += 1
        assert collisions == 0

    def test_random_data_never_floods_lit(self):
        """Random traffic cannot realistically fill even a tiny LIT."""
        ptmc = make_ptmc(config=PTMCConfig(lit_capacity=4))
        rng = random.Random(9)
        for i in range(1_500):
            data = bytes(rng.getrandbits(8) for _ in range(64))
            ptmc.handle_eviction(evicted(i % 256, data), 0, 0, FakeLLC())
        assert ptmc.rekeys == 0
        assert ptmc.inversions == 0

    def test_replaying_markers_across_lines_fails(self):
        """Markers leak per line; replaying one line's marker elsewhere
        does not collide (per-line generation, not a global constant)."""
        scheme = MarkerScheme(key=77)
        leaked = scheme.marker(100, Level.QUAD)  # suppose line 100's marker leaked
        collisions = sum(
            scheme.collides(addr, b"\x00" * 60 + leaked) for addr in range(101, 600)
        )
        assert collisions == 0


class TestAdversaryWithKey:
    def test_known_markers_force_rekey(self):
        """With the key (hypothetically) known, collisions are trivial —
        the design's answer is rekey-on-overflow, which rotates the key
        and keeps data intact."""
        ptmc = make_ptmc(config=PTMCConfig(lit_capacity=2, lit_policy=LITPolicy.REKEY))
        written = {}
        for addr in range(6):
            data = b"\x13" * 60 + ptmc.markers.marker(addr, Level.PAIR)
            written[addr] = data
            ptmc.handle_eviction(evicted(addr, data), 0, 0, FakeLLC())
        assert ptmc.rekeys >= 1  # the attack triggered recovery
        from repro.core.base_controller import NullLLCView

        for addr, data in written.items():
            assert ptmc.read_line(addr, 0, 0, NullLLCView()).data == data

    def test_rekey_invalidates_attackers_knowledge(self):
        """After a rekey, previously harvested marker values are dead."""
        scheme = MarkerScheme(key=5)
        harvested = {addr: scheme.marker(addr, Level.PAIR) for addr in range(200)}
        scheme.rekey()
        surviving = sum(
            scheme.collides(addr, b"\x00" * 60 + marker)
            for addr, marker in harvested.items()
        )
        assert surviving == 0

    def test_memory_mapped_fallback_bounds_damage(self):
        """Option 1 (memory-mapped LIT): sustained collisions degrade to
        at most one extra access per affected line — no crash, no loss."""
        ptmc = make_ptmc(
            config=PTMCConfig(lit_capacity=1, lit_policy=LITPolicy.MEMORY_MAPPED)
        )
        written = {}
        for addr in range(8):
            data = b"\x14" * 60 + ptmc.markers.marker(addr, Level.QUAD)
            written[addr] = data
            ptmc.handle_eviction(evicted(addr, data), 0, 0, FakeLLC())
        assert ptmc.lit.overflows >= 1
        from repro.core.base_controller import NullLLCView

        for addr, data in written.items():
            result = ptmc.read_line(addr, 0, 0, NullLLCView())
            assert result.data == data
            assert result.accesses <= 2  # worst case: 2x bandwidth, as the paper says
