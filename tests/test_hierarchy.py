"""Tests for the cache hierarchy wired to a memory controller."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.replacement import POLICIES
from repro.core.policy import SamplingPolicy
from repro.core.ptmc import PTMCController
from repro.core.uncompressed import UncompressedController
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from tests.lineutils import quad_friendly_line

LINE = b"\x00" * 64

SMALL = HierarchyConfig(
    num_cores=2,
    l1_bytes=1024,
    l2_bytes=4 * 1024,
    l3_bytes=16 * 1024,
)


def make_hierarchy(controller_cls=UncompressedController, policy=None):
    memory = PhysicalMemory(1 << 16)
    dram = DRAMSystem()
    if policy is not None:
        controller = controller_cls(memory, dram, policy=policy)
    else:
        controller = controller_cls(memory, dram)
    return CacheHierarchy(controller, SMALL, policy)


class TestServingLevels:
    def test_miss_then_l1_hit(self):
        h = make_hierarchy()
        first = h.access(0, 5, False, 0)
        assert first.served_by == "mem"
        second = h.access(0, 5, False, 1000)
        assert second.served_by == "l1"

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        h.access(0, 5, False, 0)
        # stream enough lines through the same L1 set to displace addr 5
        sets = h.l1s[0].num_sets
        for i in range(1, 10):
            h.access(0, 5 + i * sets, False, 0)
        outcome = h.access(0, 5, False, 0)
        assert outcome.served_by in ("l2", "l3")

    def test_latencies_ordered(self):
        h = make_hierarchy()
        mem = h.access(0, 5, False, 0).completion
        l1 = h.access(0, 5, False, 0).completion
        assert l1 < mem

    def test_private_l1_per_core(self):
        h = make_hierarchy()
        h.access(0, 5, False, 0)
        outcome = h.access(1, 5, False, 0)
        # core 1 misses its own L1/L2 but hits the shared L3
        assert outcome.served_by == "l3"


class TestWritePath:
    def test_write_requires_data(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            h.access(0, 5, True, 0)

    def test_write_marks_l3_dirty(self):
        h = make_hierarchy()
        h.access(0, 5, True, 0, write_data=b"\x01" * 64)
        assert h.l3.probe(5).dirty
        assert h.l3.probe(5).data == b"\x01" * 64

    def test_write_through_updates_all_levels(self):
        h = make_hierarchy()
        h.access(0, 5, False, 0)
        h.access(0, 5, True, 0, write_data=b"\x02" * 64)
        assert h.l1s[0].probe(5).data == b"\x02" * 64
        assert h.l2s[0].probe(5).data == b"\x02" * 64
        assert h.l3.probe(5).data == b"\x02" * 64

    def test_dirty_data_written_back_to_memory(self):
        h = make_hierarchy()
        h.access(0, 5, True, 0, write_data=b"\x03" * 64)
        h.flush(0)
        assert h.controller.memory.read(5) == b"\x03" * 64


class TestInclusion:
    def test_l3_eviction_back_invalidates(self):
        h = make_hierarchy()
        h.access(0, 5, False, 0)
        assert h.l1s[0].probe(5) is not None
        # force 5 out of L3 via its view
        h.llc_view.force_evict(5)
        assert h.l1s[0].probe(5) is None
        assert h.l2s[0].probe(5) is None

    def test_capacity_eviction_preserves_inclusion(self):
        h = make_hierarchy()
        sets = h.l3.num_sets
        h.access(0, 5, False, 0)
        for i in range(1, 40):
            h.access(0, 5 + i * sets, False, 0)
        if h.l3.probe(5) is None:
            assert h.l1s[0].probe(5) is None


def _compact_group_through_hierarchy(h, controller, lines):
    """Touch a quad's lines, then push the base line through eviction so
    the controller compacts the group (ganged eviction removes the rest)."""
    for i in range(4):
        h.access(0, 8 + i, True, 0, write_data=lines[i])
    victim = h.llc_view.force_evict(8)
    controller.handle_eviction(victim, 0, 0, h.llc_view)
    assert h.l3.probe(9) is None  # ganged eviction took the partners


class TestPrefetchAccounting:
    def test_cofetched_lines_installed_in_l3_only(self):
        memory = PhysicalMemory(1 << 16)
        dram = DRAMSystem()
        controller = PTMCController(memory, dram)
        h = CacheHierarchy(controller, SMALL)
        lines = [quad_friendly_line(i) for i in range(4)]
        _compact_group_through_hierarchy(h, controller, lines)
        # re-read the group base: neighbours install into L3 as prefetched
        outcome = h.access(0, 8, False, 10_000)
        assert outcome.served_by == "mem"
        neighbour = h.l3.probe(9)
        assert neighbour is not None
        assert neighbour.prefetched
        assert h.l1s[0].probe(9) is None

    def test_useful_prefetch_counted_once(self):
        policy = SamplingPolicy(sample_period=1, per_core=False)  # sample all
        memory = PhysicalMemory(1 << 16)
        dram = DRAMSystem()
        controller = PTMCController(memory, dram, policy=policy)
        h = CacheHierarchy(controller, SMALL, policy)
        lines = [quad_friendly_line(i) for i in range(4)]
        _compact_group_through_hierarchy(h, controller, lines)
        h.access(0, 8, False, 10_000)
        before = policy.benefits
        h.access(0, 9, False, 20_000)  # hits the prefetched line
        assert policy.benefits == before + 1
        h.access(0, 9, False, 30_000)  # second hit: no double count
        assert policy.benefits == before + 1
        assert h.useful_prefetches >= 1


class TestPolicyHierarchyProperties:
    """The inclusion and occupancy invariants hold for every registered
    replacement policy, not just the default LRU path."""

    @staticmethod
    def _policy_hierarchy(policy):
        memory = PhysicalMemory(1 << 16)
        cfg = dataclasses.replace(
            SMALL, l1_policy=policy, l2_policy=policy, l3_policy=policy, policy_seed=5
        )
        return CacheHierarchy(UncompressedController(memory, DRAMSystem()), cfg)

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @settings(deadline=None, max_examples=15)
    @given(stream=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # core
            st.integers(min_value=0, max_value=511),  # line address
            st.booleans(),  # write?
        ),
        max_size=120,
    ))
    def test_inclusion_and_occupancy_under_random_streams(self, policy, stream):
        h = self._policy_hierarchy(policy)
        for cycle, (core, addr, is_write) in enumerate(stream):
            data = LINE if is_write else None
            h.access(core, addr, is_write, cycle * 10, write_data=data)
        for cache in [h.l3, *h.l1s, *h.l2s]:
            assert cache.occupancy() <= cache.num_sets * cache.ways
        for inner in [*h.l1s, *h.l2s]:
            for line in inner.resident():
                assert h.l3.probe(line.addr) is not None

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_force_evict_back_invalidates_every_policy(self, policy):
        h = self._policy_hierarchy(policy)
        for addr in range(8):
            h.access(addr % 2, addr, False, addr * 10)
        target = next(iter(h.l3.resident())).addr
        h.llc_view.force_evict(target)
        assert h.l3.probe(target) is None
        for inner in [*h.l1s, *h.l2s]:
            assert inner.probe(target) is None
        for line in h.l1s[0].resident():
            assert h.l3.probe(line.addr) is not None

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_rereference_hits_l1_every_policy(self, policy):
        h = self._policy_hierarchy(policy)
        h.access(0, 17, False, 0)
        assert h.access(0, 17, False, 10).served_by == "l1"


class TestWastedPrefetchAccounting:
    def test_unreferenced_prefetch_eviction_counts_as_wasted(self):
        memory = PhysicalMemory(1 << 16)
        dram = DRAMSystem()
        controller = PTMCController(memory, dram)
        h = CacheHierarchy(controller, SMALL)
        lines = [quad_friendly_line(i) for i in range(4)]
        _compact_group_through_hierarchy(h, controller, lines)
        h.access(0, 8, False, 10_000)  # re-read installs 9..11 as prefetched
        assert h.l3.probe(9).prefetched
        assert h.wasted_prefetches == 0
        h.llc_view.force_evict(9)  # evicted before any demand touch
        assert h.wasted_prefetches == 1

    def test_referenced_prefetch_is_not_wasted(self):
        memory = PhysicalMemory(1 << 16)
        dram = DRAMSystem()
        controller = PTMCController(memory, dram)
        h = CacheHierarchy(controller, SMALL)
        lines = [quad_friendly_line(i) for i in range(4)]
        _compact_group_through_hierarchy(h, controller, lines)
        h.access(0, 8, False, 10_000)
        h.access(0, 9, False, 20_000)  # demand hit clears the prefetched bit
        h.llc_view.force_evict(9)
        assert h.wasted_prefetches == 0
