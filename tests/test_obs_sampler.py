"""Interval sampler: phase boundaries, edge cases, and persistence.

The invariants under test:

- interval=0 disables sampling entirely (``SimResult.timeseries`` None),
- an interval longer than the run still yields one flush point per
  executed phase,
- the warmup boundary forces a point, so no interval ever mixes phases
  and the boundary point's cumulative access count is exactly
  ``num_cores * warmup_ops``,
- the measured-phase points partition the measured window: their
  counter deltas sum to the run's reported window value, and
- a ``SimResult`` carrying a series survives the JSON wire format and a
  disk-cache round trip bit for bit.
"""

import pytest

from repro.obs.sampler import IntervalSampler, ObsConfig
from repro.obs.timeseries import TimeSeries, TimeSeriesDecodeError
from repro.sim.config import quick_config
from repro.sim.diskcache import DiskCache, cache_key
from repro.sim.results import SimResult
from repro.sim.system import SimulatedSystem
from repro.telemetry import StatRegistry
from repro.workloads.generators import spec_like

CFG = quick_config(ops_per_core=400, warmup_ops=200)
WORKLOAD = spec_like("sampler", seed=3)


def run(obs=None, cfg=CFG, design="static_ptmc"):
    return SimulatedSystem(WORKLOAD, design, cfg, obs=obs).run()


def test_interval_zero_disables_sampling():
    result = run(ObsConfig(sample_interval=0))
    assert result.timeseries is None
    assert run().timeseries is None  # no ObsConfig at all


def test_obs_config_rejects_direct_nonpositive_interval():
    with pytest.raises(ValueError):
        IntervalSampler(StatRegistry(), 0)
    with pytest.raises(ValueError):
        IntervalSampler(StatRegistry(), -5)


def test_interval_longer_than_run_yields_one_point_per_phase():
    total = CFG.num_cores * (CFG.ops_per_core + CFG.warmup_ops)
    result = run(ObsConfig(sample_interval=total * 10))
    ts = result.timeseries
    assert ts is not None
    assert [p.phase for p in ts.points] == ["warmup", "measured"]


def test_warmup_boundary_never_mixes_phases():
    # interval deliberately misaligned with the phase boundary
    result = run(ObsConfig(sample_interval=700))
    ts = result.timeseries
    phases = [p.phase for p in ts.points]
    # warmup points strictly precede measured points
    assert phases == sorted(phases, key=["warmup", "measured"].index)
    boundary = ts.phase_points("warmup")[-1]
    assert boundary.accesses == CFG.num_cores * CFG.warmup_ops


def test_no_warmup_config_samples_measured_only():
    cfg = quick_config(ops_per_core=400, warmup_ops=0)
    result = SimulatedSystem(
        WORKLOAD, "uncompressed", cfg, obs=ObsConfig(sample_interval=300)
    ).run()
    assert {p.phase for p in result.timeseries.points} == {"measured"}


def test_measured_points_partition_the_measured_window():
    result = run(ObsConfig(sample_interval=500))
    ts = result.timeseries
    for path in ("dram.reads", "dram.writes", "llc.misses"):
        total = sum(p.metrics[path] for p in ts.phase_points("measured"))
        assert total == result.metrics[path], path


def test_sample_paths_filters_collected_metrics():
    obs = ObsConfig(sample_interval=500, sample_paths=("dram.reads", "llc.misses"))
    result = run(obs)
    assert result.timeseries.paths() == ["dram.reads", "llc.misses"]


def test_timeseries_json_round_trip():
    result = run(ObsConfig(sample_interval=500))
    restored = SimResult.from_json(result.to_json())
    assert restored.timeseries is not None
    assert restored.timeseries.to_json_dict() == result.timeseries.to_json_dict()
    assert restored == result


def test_diskcache_round_trip_carries_timeseries(tmp_path):
    cache = DiskCache(tmp_path)
    result = run(ObsConfig(sample_interval=500))
    key = cache_key(WORKLOAD, "static_ptmc", CFG)
    cache.put(key, result)
    loaded = cache.get(key)
    assert loaded is not None
    assert loaded.timeseries is not None
    assert loaded == result


def test_decode_rejects_malformed_series():
    with pytest.raises(TimeSeriesDecodeError):
        TimeSeries.from_json_dict("not a dict")
    with pytest.raises(TimeSeriesDecodeError):
        TimeSeries.from_json_dict({"interval": 10, "points": "nope"})
    with pytest.raises(TimeSeriesDecodeError):
        TimeSeries.from_json_dict(
            {"interval": 10, "points": [{"accesses": 1, "phase": "bogus", "metrics": {}}]}
        )


def test_v2_payload_without_timeseries_still_decodes():
    payload = run().to_json_dict()
    payload.pop("timeseries")
    payload["schema"] = 2
    restored = SimResult.from_json_dict(payload)
    assert restored.timeseries is None
