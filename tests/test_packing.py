"""Tests for compressed-slot packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import HybridCompressor
from repro.compression.base import CompressionError
from repro.core.packing import (
    compress_group,
    decompress_group,
    pack_slot,
    payload_budget,
    unpack_slot,
)
from repro.types import Level
from tests.lineutils import pointer_line, small_int_line, zero_line

MARKER = b"\xde\xad\xbe\xef"


class TestPackSlot:
    def test_pair_roundtrip(self):
        slot = pack_slot([b"abc", b"defgh"], MARKER)
        assert len(slot) == 64
        assert slot[-4:] == MARKER
        assert unpack_slot(slot, Level.PAIR) == [b"abc", b"defgh"]

    def test_quad_roundtrip(self):
        payloads = [b"a" * 10, b"b" * 12, b"c" * 14, b"d" * 16]
        slot = pack_slot(payloads, MARKER)
        assert unpack_slot(slot, Level.QUAD) == payloads

    def test_exactly_full_slot(self):
        # pair: 2 length bytes + payloads + 4-byte marker == 64
        payloads = [b"x" * 29, b"y" * 29]
        slot = pack_slot(payloads, MARKER)
        assert slot is not None
        assert unpack_slot(slot, Level.PAIR) == payloads

    def test_one_byte_too_big(self):
        payloads = [b"x" * 30, b"y" * 29]
        assert pack_slot(payloads, MARKER) is None

    def test_wrong_member_count(self):
        with pytest.raises(ValueError):
            pack_slot([b"a"], MARKER)
        with pytest.raises(ValueError):
            pack_slot([b"a"] * 3, MARKER)

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            pack_slot([b"", b"a"], MARKER)

    def test_empty_marker_supported(self):
        # the table-based design packs without inline markers
        slot = pack_slot([b"aa", b"bb"], b"")
        assert unpack_slot(slot, Level.PAIR) == [b"aa", b"bb"]


class TestUnpackSlot:
    def test_wrong_size(self):
        with pytest.raises(ValueError):
            unpack_slot(b"\x00" * 63, Level.PAIR)

    def test_uncompressed_level_rejected(self):
        with pytest.raises(CompressionError):
            unpack_slot(b"\x00" * 64, Level.UNCOMPRESSED)

    def test_corrupt_header(self):
        slot = bytes([0, 0]) + b"\x00" * 62  # zero lengths
        with pytest.raises(CompressionError):
            unpack_slot(slot, Level.PAIR)

    def test_overlong_header(self):
        slot = bytes([200, 200]) + b"\x00" * 62
        with pytest.raises(CompressionError):
            unpack_slot(slot, Level.PAIR)


class TestBudget:
    def test_pair_budget(self):
        assert payload_budget(Level.PAIR) == 64 - 4 - 2

    def test_quad_budget(self):
        assert payload_budget(Level.QUAD) == 64 - 4 - 4

    def test_custom_marker_size(self):
        assert payload_budget(Level.PAIR, marker_size=5) == 64 - 5 - 2


class TestCompressGroup:
    def test_zero_pair(self):
        hybrid = HybridCompressor()
        lines = [zero_line(), zero_line()]
        slot = compress_group(hybrid, lines, MARKER)
        assert slot is not None
        assert decompress_group(hybrid, slot, Level.PAIR) == lines

    def test_quad_of_small_ints(self):
        hybrid = HybridCompressor()
        lines = [small_int_line(start=i) for i in range(4)]
        slot = compress_group(hybrid, lines, MARKER)
        if slot is not None:
            assert decompress_group(hybrid, slot, Level.QUAD) == lines

    def test_pointer_pair_fits_quad_does_not(self):
        hybrid = HybridCompressor()
        pair = [pointer_line(base=0x7F00AA000000), pointer_line(base=0x7F00BB000000)]
        assert compress_group(hybrid, pair, MARKER) is not None
        quad = pair + [pointer_line(base=0x7F00CC000000), pointer_line(base=0x7F00DD000000)]
        assert compress_group(hybrid, quad, MARKER) is None

    def test_incompressible_member_fails_group(self):
        import random

        from tests.lineutils import random_line

        hybrid = HybridCompressor()
        lines = [zero_line(), random_line(random.Random(3))]
        assert compress_group(hybrid, lines, MARKER) is None


@given(
    st.lists(st.binary(min_size=1, max_size=28), min_size=2, max_size=2),
)
def test_pack_unpack_property(payloads):
    slot = pack_slot(payloads, MARKER)
    if slot is not None:
        assert unpack_slot(slot, Level.PAIR) == payloads
        assert slot[-4:] == MARKER
