"""Tests for Base-Delta-Immediate compression."""

import random
import struct

import pytest
from hypothesis import given

from repro.compression.base import CompressionError
from repro.compression.bdi import BDI
from tests.lineutils import any_lines, pointer_line, random_line, zero_line

bdi = BDI()


class TestBDIEncodings:
    def test_zero_line_one_byte(self):
        assert bdi.compress(zero_line()) == b"\x00"
        assert bdi.decompress(b"\x00") == zero_line()

    def test_repeated_value(self):
        line = struct.pack("<Q", 0xDEADBEEFCAFEBABE) * 8
        payload = bdi.compress(line)
        assert len(payload) == 9
        assert bdi.decompress(payload) == line

    def test_base8_delta1(self):
        line = pointer_line(base=0x7FFF00000000, stride=16)
        payload = bdi.compress(line)
        assert payload is not None
        # B8D1: 1 + 8 + 1 + 8 = 18 bytes
        assert len(payload) == 18
        assert bdi.decompress(payload) == line

    def test_base8_delta2(self):
        line = pointer_line(base=0x7FFF00000000, stride=4000)
        payload = bdi.compress(line)
        assert payload is not None
        assert bdi.decompress(payload) == line

    def test_base8_delta4(self):
        line = pointer_line(base=0x7FFF00000000, stride=100_000_000)
        payload = bdi.compress(line)
        assert payload is not None
        assert bdi.decompress(payload) == line

    def test_base4_delta1(self):
        line = struct.pack("<16I", *[0x10000000 + i for i in range(16)])
        payload = bdi.compress(line)
        assert payload is not None
        # B4D1: 1 + 4 + 2 + 16 = 23 bytes
        assert len(payload) <= 23
        assert bdi.decompress(payload) == line

    def test_base2_delta1(self):
        line = struct.pack("<32H", *[0x4000 + i for i in range(32)])
        payload = bdi.compress(line)
        assert payload is not None
        assert bdi.decompress(payload) == line

    def test_immediate_zero_base_mixed(self):
        # Mix of small values (zero base) and clustered large values.
        values = [5, 0x7FFF000000 + 3, 2, 0x7FFF000000 + 9] * 2
        line = b"".join(struct.pack("<Q", v) for v in values)
        payload = bdi.compress(line)
        assert payload is not None
        assert bdi.decompress(payload) == line

    def test_delta_wraps_modulo(self):
        # base + delta arithmetic must wrap within the element width
        values = [2**64 - 1, 2**64 - 3] * 4
        line = b"".join(struct.pack("<Q", v) for v in values)
        payload = bdi.compress(line)
        if payload is not None:
            assert bdi.decompress(payload) == line

    def test_incompressible_returns_none(self):
        rng = random.Random(11)
        assert bdi.compress(random_line(rng)) is None

    def test_picks_smallest_feasible_encoding(self):
        # All-equal small 8-byte values: repeat encoding (9B) must win
        line = struct.pack("<Q", 77) * 8
        assert len(bdi.compress(line)) <= 9


class TestBDIErrors:
    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            bdi.compress(b"x" * 65)

    def test_empty_payload(self):
        with pytest.raises(CompressionError):
            bdi.decompress(b"")

    def test_unknown_encoding(self):
        with pytest.raises(CompressionError):
            bdi.decompress(b"\xff")

    def test_bad_length(self):
        with pytest.raises(CompressionError):
            bdi.decompress(bytes([2]) + b"\x00" * 3)

    def test_bad_repeat_length(self):
        with pytest.raises(CompressionError):
            bdi.decompress(bytes([1]) + b"\x00" * 3)


@given(any_lines)
def test_bdi_roundtrip_property(line):
    payload = bdi.compress(line)
    if payload is not None:
        assert len(payload) < 64
        assert bdi.decompress(payload) == line
