"""Shared scaffolding for memory-controller unit tests.

Provides a fake LLC view with explicit contents plus helpers to build
controllers over a small physical memory, so the PTMC read/eviction
machinery can be exercised without the full simulator.
"""

from typing import Dict, Optional

from repro.cache.cache import EvictedLine
from repro.core.base_controller import LLCView
from repro.core.ptmc import PTMCConfig, PTMCController
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.types import Level


class FakeLLC(LLCView):
    """An LLC view backed by a plain dict of EvictedLine records."""

    def __init__(self, sampled_addrs=()):
        self.lines: Dict[int, EvictedLine] = {}
        self.sampled = set(sampled_addrs)
        self.force_evicted = []

    def add(self, addr, data, dirty=False, fill_level=Level.UNCOMPRESSED, core_id=0):
        self.lines[addr] = EvictedLine(addr, data, dirty, fill_level, core_id)

    def probe(self, addr: int) -> Optional[EvictedLine]:
        return self.lines.get(addr)

    def force_evict(self, addr: int) -> Optional[EvictedLine]:
        line = self.lines.pop(addr, None)
        if line is not None:
            self.force_evicted.append(addr)
        return line

    def is_sampled_set(self, addr: int) -> bool:
        return (addr >> 2) in self.sampled or addr in self.sampled


def make_ptmc(policy=None, config=None, capacity=1 << 16):
    memory = PhysicalMemory(capacity)
    dram = DRAMSystem()
    controller = PTMCController(
        memory, dram, config=config or PTMCConfig(), policy=policy
    )
    return controller


def evicted(addr, data, dirty=True, fill_level=Level.UNCOMPRESSED, core_id=0):
    return EvictedLine(addr, data, dirty, fill_level, core_id)


def category_counts(controller):
    return {
        category.value: count
        for category, count in controller.dram.stats.accesses_by_category.items()
    }
