"""Tests for trace-file persistence and import."""

import gzip

import pytest

from repro.cpu.trace import TraceRecord
from repro.cpu.tracefile import (
    TraceFormatError,
    import_address_trace,
    load_trace,
    record_workload,
    save_trace,
)
from repro.workloads import get_workload


def sample_records():
    return [
        TraceRecord(3, False, 100, None),
        TraceRecord(0, True, 200, bytes(range(64))),
        TraceRecord(12, False, 2**40, None),
    ]


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "t.trc.gz"
        assert save_trace(sample_records(), path) == 3
        loaded = list(load_trace(path))
        assert loaded == sample_records()

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trc.gz"
        save_trace([], path)
        assert list(load_trace(path)) == []

    def test_large_vline_preserved(self, tmp_path):
        path = tmp_path / "big.trc.gz"
        save_trace([TraceRecord(0, False, 2**63 - 1, None)], path)
        assert next(load_trace(path)).vline == 2**63 - 1

    def test_workload_recording(self, tmp_path):
        path = tmp_path / "lbm.trc.gz"
        count = record_workload(get_workload("lbm06"), core_id=0, num_ops=500, path=path)
        assert count == 500
        records = list(load_trace(path))
        assert len(records) == 500
        # deterministic: matches a fresh generator
        from repro.workloads.generators import WorkloadTraceGenerator

        fresh = list(WorkloadTraceGenerator(get_workload("lbm06"), 0).generate(500))
        assert records == fresh


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trc.gz"
        with gzip.open(path, "wb") as handle:
            handle.write(b"NOTATRCE")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_truncated_data(self, tmp_path):
        path = tmp_path / "trunc.trc.gz"
        save_trace(sample_records(), path)
        blob = gzip.open(path, "rb").read()
        with gzip.open(path, "wb") as handle:
            handle.write(blob[:-10])
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_write_without_data_rejected(self, tmp_path):
        record = TraceRecord(0, True, 5, None)
        with pytest.raises(TraceFormatError):
            save_trace([record], tmp_path / "x.trc.gz")


class TestImport:
    def test_basic_formats(self):
        text = [
            "R 0x1000",
            "W 8192",
            "0x3000",
            "",
            "# comment",
        ]
        records = list(import_address_trace(text))
        assert [r.vline for r in records] == [0x1000 // 64, 128, 0x3000 // 64]
        assert [r.is_write for r in records] == [False, True, False]
        assert records[1].write_data == b"\x00" * 64

    def test_bad_type_rejected(self):
        with pytest.raises(TraceFormatError):
            list(import_address_trace(["X 0x10"]))

    def test_too_many_fields_rejected(self):
        with pytest.raises(TraceFormatError):
            list(import_address_trace(["R 0x10 extra"]))

    def test_imported_trace_runs_through_core(self):
        """An imported trace drives a core model end to end."""
        from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
        from repro.core.uncompressed import UncompressedController
        from repro.cpu.core import CoreModel
        from repro.dram.storage import PhysicalMemory
        from repro.dram.system import DRAMSystem
        from repro.vm.page_table import PageTable

        records = list(
            import_address_trace(f"R {addr * 64}" for addr in range(64))
        )
        hierarchy = CacheHierarchy(
            UncompressedController(PhysicalMemory(1 << 16), DRAMSystem()),
            HierarchyConfig(num_cores=1, l1_bytes=1024, l2_bytes=4096, l3_bytes=16384),
        )
        core = CoreModel(0, iter(records), hierarchy, PageTable(1 << 16))
        while core.step():
            pass
        assert core.mem_ops == 64
