"""Tests for the trace format and core timing model."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.core.uncompressed import UncompressedController
from repro.cpu.core import CoreModel
from repro.cpu.trace import TraceRecord, TraceStats, iter_with_stats, trace_from_lists
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.vm.page_table import PageTable


def make_core(records, mlp=4, width=4, cores=1):
    memory = PhysicalMemory(1 << 16)
    dram = DRAMSystem()
    hierarchy = CacheHierarchy(
        UncompressedController(memory, dram),
        HierarchyConfig(num_cores=cores, l1_bytes=1024, l2_bytes=4096, l3_bytes=16384),
    )
    page_table = PageTable(1 << 16)
    return CoreModel(0, iter(records), hierarchy, page_table, width=width, mlp=mlp)


class TestTraceRecord:
    def test_instruction_accounting(self):
        assert TraceRecord(9, False, 0).instructions == 10

    def test_builder(self):
        records = trace_from_lists([1, 2, 3], gap=5, write_every=2)
        assert len(records) == 3
        assert records[1].is_write
        assert records[1].write_data is not None
        assert not records[0].is_write

    def test_stats_iterator(self):
        stats = TraceStats()
        records = trace_from_lists([1, 2, 3], gap=4, write_every=3)
        consumed = list(iter_with_stats(records, stats))
        assert len(consumed) == 3
        assert stats.records == 3
        assert stats.instructions == 15
        assert stats.writes == 1


class TestCoreModel:
    def test_runs_to_completion(self):
        core = make_core(trace_from_lists(range(50)))
        while core.step():
            pass
        assert core.done
        assert core.mem_ops == 50
        assert core.instructions == 50 * 4

    def test_time_advances(self):
        core = make_core(trace_from_lists(range(50)))
        while core.step():
            pass
        assert core.time > 0
        assert core.ipc > 0

    def test_mlp_bounds_outstanding(self):
        # all misses to distinct lines: with mlp=1 the core serialises
        serial = make_core(trace_from_lists(range(64)), mlp=1)
        while serial.step():
            pass
        parallel = make_core(trace_from_lists(range(64)), mlp=8)
        while parallel.step():
            pass
        assert parallel.time < serial.time

    def test_hits_are_fast(self):
        # repeated access to one line stays in L1
        core = make_core(trace_from_lists([5] * 100))
        while core.step():
            pass
        miss_heavy = make_core(trace_from_lists(range(100)))
        while miss_heavy.step():
            pass
        assert core.time < miss_heavy.time

    def test_validation(self):
        with pytest.raises(ValueError):
            make_core([], mlp=0)
        with pytest.raises(ValueError):
            make_core([], width=0)

    def test_drain_waits_for_outstanding(self):
        core = make_core(trace_from_lists(range(8)), mlp=8)
        while core.step():
            pass
        # final time must cover the last miss's completion, which is far
        # beyond the pure compute time of 8 ops
        assert core.time > 8
