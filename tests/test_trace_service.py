"""End-to-end tests for trace ingestion and replay through the service.

A real daemon (HTTP + scheduler + SQLite + disk cache + trace store) is
booted on an ephemeral port and driven through ``ServiceClient`` — the
same path ``repro trace ingest --url`` and trace-backed ``repro
submit`` use.
"""

import gzip

import pytest

from repro.service import jobstore
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.sim import runner
from repro.traces import formats
from repro.traces.replay import clear_record_memo
from repro.traces.store import content_hash

OPS, WARMUP = 150, 100


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    import repro.traces.store as store_module

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "simcache"))
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    clear_record_memo()
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)
    yield
    clear_record_memo()
    store_module._default_store = None
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)


@pytest.fixture
def daemon(tmp_path):
    d = ServiceDaemon(
        db_path=tmp_path / "service.db",
        cache_dir=tmp_path / "simcache",
        trace_dir=tmp_path / "traces",
        host="127.0.0.1",
        port=0,
        workers=2,
    )
    d.start()
    yield d
    d.stop()


def toy_records():
    return [
        (i % 3 == 2, 0x2000 + i % 8 if i % 3 == 2 else 0x1000 + i % 48)
        for i in range(240)
    ]


def toy_text() -> bytes:
    return formats.format_text(toy_records()).encode()


class TestTraceUpload:
    def test_upload_and_dedup_across_containers(self, daemon):
        client = ServiceClient(daemon.url)
        first = client.upload_trace(toy_text(), name="as-text")
        assert first["created"]
        assert first["hash"] == content_hash(toy_records())
        assert first["records"] == len(toy_records())
        again = client.upload_trace(
            gzip.compress(formats.encode_records(toy_records())), name="as-gz"
        )
        assert not again["created"]
        assert again["hash"] == first["hash"]

    def test_list_and_info(self, daemon):
        client = ServiceClient(daemon.url)
        uploaded = client.upload_trace(toy_text(), name="listed")
        listed = client.traces()
        assert [t["hash"] for t in listed] == [uploaded["hash"]]
        info = client.trace_info(uploaded["hash"][:10])
        assert info["name"] == "listed"
        assert info["reuse_distance"]

    def test_unknown_trace_is_404(self, daemon):
        client = ServiceClient(daemon.url)
        with pytest.raises(ServiceError) as excinfo:
            client.trace_info("feedface")
        assert excinfo.value.status == 404

    def test_bad_payloads_are_400(self, daemon):
        client = ServiceClient(daemon.url)
        for payload in (
            {},  # neither content nor content_b64
            {"content": "r 0x40", "content_b64": "cg=="},  # both
            {"content_b64": "!!! not base64 !!!"},
            {"content": "utter nonsense line"},  # strict parse failure
            {"content": ""},  # no records
        ):
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/traces", payload)
            assert excinfo.value.status == 400

    def test_lenient_upload_counts_errors(self, daemon):
        client = ServiceClient(daemon.url)
        trace = client.upload_trace(
            b"r 0x40\ngarbage\nw 0x80\n", name="noisy", mode="lenient"
        )
        assert trace["records"] == 2
        assert trace["parse_errors"] == 1
        assert daemon.metrics()["trace.parse_errors"] >= 1


class TestTraceJobs:
    def test_trace_backed_job_end_to_end(self, daemon):
        client = ServiceClient(daemon.url)
        uploaded = client.upload_trace(toy_text(), name="job-trace")
        digest = uploaded["hash"]
        job = client.submit(f"trace:{digest[:10]}", "dynamic_ptmc",
                            ops=OPS, warmup=WARMUP)
        # abbreviated hashes canonicalize on submit
        assert job["workload"] == f"trace:{digest}"
        done = client.wait(job["id"], timeout=120)
        assert done["state"] == jobstore.DONE
        result = client.result(job["id"])
        assert result.metrics["trace.replayed_records"] > 0
        # identical resubmission is served from the shared disk cache
        again = client.submit(f"trace:{digest}", "dynamic_ptmc",
                              ops=OPS, warmup=WARMUP)
        assert again["state"] == jobstore.DONE
        assert again["source"] == "cache"

    def test_trace_knobs_change_job_identity(self, daemon):
        client = ServiceClient(daemon.url)
        digest = client.upload_trace(toy_text())["hash"]
        base = client.submit(f"trace:{digest}", "uncompressed",
                             ops=OPS, warmup=WARMUP)
        limited = client.submit(f"trace:{digest}", "uncompressed",
                                ops=OPS, warmup=WARMUP, trace_limit=50)
        seeded = client.submit(f"trace:{digest}", "uncompressed",
                               ops=OPS, warmup=WARMUP, trace_seed=9)
        keys = {base["key"], limited["key"], seeded["key"]}
        assert len(keys) == 3

    def test_unknown_trace_hash_rejected_at_submit(self, daemon):
        client = ServiceClient(daemon.url)
        with pytest.raises(ServiceError) as excinfo:
            client.submit("trace:feedface00", "uncompressed", ops=OPS, warmup=WARMUP)
        assert excinfo.value.status == 400

    def test_trace_knobs_rejected_on_synthetic_workloads(self, daemon):
        client = ServiceClient(daemon.url)
        with pytest.raises(ServiceError) as excinfo:
            client.submit("lbm06", "uncompressed", ops=OPS, warmup=WARMUP,
                          trace_seed=3)
        assert excinfo.value.status == 400
        assert "trace" in excinfo.value.message

    def test_negative_trace_limit_rejected(self, daemon):
        client = ServiceClient(daemon.url)
        digest = client.upload_trace(toy_text())["hash"]
        with pytest.raises(ServiceError) as excinfo:
            client.submit(f"trace:{digest}", "uncompressed",
                          ops=OPS, warmup=WARMUP, trace_limit=-5)
        assert excinfo.value.status == 400

    def test_health_and_metrics_surface_trace_state(self, daemon):
        client = ServiceClient(daemon.url)
        client.upload_trace(toy_text())
        health = client.healthz()
        assert "trace_dir" in health
        metrics = client.metrics()
        assert metrics["trace.ingested"] == 1
        assert "trace.dedup_hits" in metrics
        assert "trace.loads" in metrics
