"""Tests for the Line Location Predictor."""

import pytest

from repro.core.llp import LINES_PER_PAGE, LineLocationPredictor
from repro.types import Level


class TestPrediction:
    def test_initial_prediction_uncompressed(self):
        llp = LineLocationPredictor()
        assert llp.predict(1234) is Level.UNCOMPRESSED

    def test_learns_last_status(self):
        llp = LineLocationPredictor()
        llp.update(100, Level.QUAD)
        assert llp.predict(100) is Level.QUAD

    def test_page_granularity(self):
        llp = LineLocationPredictor()
        llp.update(0, Level.PAIR)
        # line 1 shares page 0 with line 0
        assert llp.predict(1) is Level.PAIR
        # a different page is independent (modulo hash aliasing)
        other = LINES_PER_PAGE * 3 + 5
        assert llp.predict(other) in Level.__members__.values()

    def test_update_overwrites(self):
        llp = LineLocationPredictor()
        llp.update(100, Level.QUAD)
        llp.update(100, Level.UNCOMPRESSED)
        assert llp.predict(100) is Level.UNCOMPRESSED

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            LineLocationPredictor(entries=0)


class TestAccuracyTracking:
    def test_perfect_accuracy_initially(self):
        llp = LineLocationPredictor()
        assert llp.accuracy == 1.0

    def test_mispredict_counting_via_update(self):
        llp = LineLocationPredictor()
        predicted = llp.predict(100)
        llp.update(100, Level.QUAD, predicted=predicted)
        assert llp.mispredictions == 1
        assert llp.predictions == 1
        assert llp.accuracy == 0.0

    def test_correct_prediction_not_counted(self):
        llp = LineLocationPredictor()
        llp.update(100, Level.QUAD)
        predicted = llp.predict(100)
        llp.update(100, Level.QUAD, predicted=predicted)
        assert llp.mispredictions == 0

    def test_record_mispredict(self):
        # one prediction resolved after 2 extra probes: ONE misprediction,
        # with the second re-issue tracked separately (a prediction cannot
        # be wrong more than once)
        llp = LineLocationPredictor()
        llp.predict(5)
        llp.record_mispredict(2)
        assert llp.mispredictions == 1
        assert llp.extra_reissues == 1

    def test_accuracy_bounded_under_quad_group_mispredictions(self):
        """Regression: a quad-group miss re-issues up to 3 probes; accuracy
        must stay within [0, 1] even when every prediction is wrong."""
        llp = LineLocationPredictor()
        for addr in range(10):
            llp.predict(addr)
            llp.record_mispredict(3)  # worst case: walked all candidates
        assert llp.predictions == 10
        assert llp.mispredictions == 10
        assert llp.extra_reissues == 20
        assert llp.accuracy == 0.0

    def test_record_mispredict_zero_extra_is_noop(self):
        llp = LineLocationPredictor()
        llp.predict(5)
        llp.record_mispredict(0)
        assert llp.mispredictions == 0
        assert llp.accuracy == 1.0

    def test_reset_stats(self):
        llp = LineLocationPredictor()
        llp.predict(5)
        llp.record_mispredict(3)
        llp.reset_stats()
        assert llp.predictions == 0
        assert llp.extra_reissues == 0
        assert llp.accuracy == 1.0

    def test_accuracy_on_workload_with_page_locality(self):
        """Pages with homogeneous levels should predict near-perfectly."""
        llp = LineLocationPredictor(entries=512)
        # 8 pages, each with a fixed level, visited round-robin twice
        levels = [Level.QUAD, Level.PAIR, Level.UNCOMPRESSED, Level.QUAD] * 2
        for sweep in range(3):
            for page, level in enumerate(levels):
                for line in range(0, 64, 7):
                    addr = page * LINES_PER_PAGE + line
                    predicted = llp.predict(addr)
                    llp.update(addr, level, predicted=predicted)
        # after the first sweep everything is learned
        assert llp.accuracy > 0.6
        llp.reset_stats()
        for page, level in enumerate(levels):
            for line in range(0, 64, 7):
                addr = page * LINES_PER_PAGE + line
                predicted = llp.predict(addr)
                llp.update(addr, level, predicted=predicted)
        assert llp.accuracy == 1.0


class TestStorage:
    def test_paper_cost(self):
        # Table III: 512 entries x 2 bits = 128 bytes
        assert LineLocationPredictor(entries=512).storage_bits() == 128 * 8
