"""Tests for the EXPERIMENTS.md renderer."""

import json


from repro.analysis.experiments import PAPER_EXPECTATIONS, main, render, render_experiment


class TestRenderExperiment:
    def test_nested_dict_becomes_table(self):
        text = render_experiment("fig15", {"lbm06": {"static_ptmc": 1.5, "ideal": 1.8}})
        assert "| lbm06 |" in text
        assert "1.500" in text
        assert "Paper:" in text

    def test_flat_dict(self):
        text = render_experiment("tab03", {"total": 272})
        assert "| total | 272 |" in text

    def test_unknown_experiment_without_expectation(self):
        text = render_experiment("custom_thing", {"x": 1})
        assert "Paper:" not in text
        assert "custom_thing" in text


class TestRender:
    def test_renders_all_saved_results(self, tmp_path):
        (tmp_path / "fig15.json").write_text(json.dumps({"w": {"d": 1.0}}))
        (tmp_path / "extra.json").write_text(json.dumps({"k": 2}))
        text = render(tmp_path)
        assert "## fig15" in text
        assert "## extra" in text
        assert text.index("## fig15") < text.index("## extra")

    def test_every_expectation_has_prose(self):
        for experiment_id, prose in PAPER_EXPECTATIONS.items():
            assert len(prose) > 20, experiment_id


class TestMain:
    def test_writes_output(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "tab03.json").write_text(json.dumps({"total": 272}))
        out = tmp_path / "EXPERIMENTS.md"
        assert main([str(results), str(out)]) == 0
        assert "tab03" in out.read_text()

    def test_missing_dir_fails(self, tmp_path):
        assert main([str(tmp_path / "nope"), str(tmp_path / "out.md")]) == 1
