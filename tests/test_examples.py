"""Smoke tests: the runnable examples must stay runnable.

The two simulation-heavy examples (quickstart, graph_analytics) are
exercised end-to-end by the benchmark harness with the same APIs; here
they are import-checked, while the fast examples run fully.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "inline_metadata_tour.py",
    "compression_algorithms.py",
    "record_replay.py",
]

ALL_EXAMPLES = FAST_EXAMPLES + ["quickstart.py", "graph_analytics.py"]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_compiles(name):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    importlib.util.module_from_spec(spec)
    spec.loader.exec_module.__self__  # loader exists
    source = path.read_text()
    compile(source, str(path), "exec")
    assert '"""' in source  # every example carries usage documentation
    assert "def main()" in source


def test_every_example_listed_in_readme():
    readme = (EXAMPLES.parent / "README.md").read_text()
    for name in ALL_EXAMPLES:
        assert name in readme or name[:-3] in readme
