"""Golden invariant: observability never perturbs the simulation.

For every design, a fully instrumented run — interval sampling on, a
tracer installed, counter mirroring active — must produce a
``SimResult`` whose entire wire payload (cycles, DRAM traffic, every
telemetry path) is bitwise-identical to the uninstrumented run's, the
only difference being the purely additive ``timeseries`` member.
"""

import pytest

from repro.obs.sampler import ObsConfig
from repro.obs.tracing import Tracer, set_tracer
from repro.sim.config import quick_config
from repro.sim.system import DESIGNS, SimulatedSystem
from repro.workloads.generators import spec_like

CFG = quick_config(ops_per_core=400, warmup_ops=200)
WORKLOAD = spec_like("obsgolden", seed=23)


@pytest.fixture(autouse=True)
def no_global_tracer():
    set_tracer(None)
    yield
    set_tracer(None)


@pytest.mark.parametrize("design", DESIGNS)
def test_instrumented_run_is_bitwise_identical(design):
    plain = SimulatedSystem(WORKLOAD, design, CFG).run()

    tracer = set_tracer(Tracer())
    obs = ObsConfig(sample_interval=300)
    instrumented = SimulatedSystem(WORKLOAD, design, CFG, obs=obs).run()
    set_tracer(None)

    want = plain.to_json_dict()
    got = instrumented.to_json_dict()
    assert want.pop("timeseries") is None
    assert got.pop("timeseries") is not None  # sampling actually happened
    assert got == want
    assert len(tracer) > 0  # tracing actually happened
