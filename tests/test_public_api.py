"""Public-API surface tests: the documented imports must keep working."""

import importlib

import pytest


def test_top_level_api():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.compression",
        "repro.dram",
        "repro.cache",
        "repro.cpu",
        "repro.vm",
        "repro.workloads",
        "repro.sim",
        "repro.energy",
        "repro.analysis",
    ],
)
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__"), f"{module} should declare __all__"
    for name in mod.__all__:
        assert getattr(mod, name, None) is not None, f"{module}.{name}"


def test_readme_quickstart_names_exist():
    import repro

    for name in ("simulate", "compare", "bench_config", "DESIGNS"):
        assert hasattr(repro, name)


def test_designs_build_and_are_documented():
    from repro import DESIGNS
    from repro.sim.system import build_controller
    from repro.dram.storage import PhysicalMemory
    from repro.dram.system import DRAMSystem
    from repro.sim.config import quick_config

    for design in DESIGNS:
        controller, _ = build_controller(
            design, PhysicalMemory(1 << 12), DRAMSystem(), quick_config()
        )
        assert controller.__doc__, design
        assert type(controller).__module__.startswith("repro.core")


def test_every_public_module_has_docstring():
    import pathlib

    src = pathlib.Path("src/repro")
    for path in src.rglob("*.py"):
        text = path.read_text()
        assert text.lstrip().startswith('"""'), f"{path} lacks a module docstring"
