"""Tests for the keyed hash used for marker generation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import KeyedHash, mix64


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_output_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1, 2**70):
            assert 0 <= mix64(value) < 2**64

    def test_bijective_on_samples(self):
        values = [mix64(i) for i in range(10_000)]
        assert len(set(values)) == 10_000

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        flips = bin(mix64(0) ^ mix64(1)).count("1")
        assert 16 <= flips <= 48


class TestKeyedHash:
    def test_deterministic_given_key(self):
        h = KeyedHash(42)
        assert h.hash64(7) == KeyedHash(42).hash64(7)

    def test_key_changes_output(self):
        assert KeyedHash(1).hash64(7) != KeyedHash(2).hash64(7)

    def test_tweak_separates_domains(self):
        h = KeyedHash(9)
        assert h.hash64(7, tweak=0) != h.hash64(7, tweak=1)

    def test_digest_length(self):
        h = KeyedHash(3)
        for nbytes in (1, 4, 8, 9, 64):
            assert len(h.digest(5, nbytes)) == nbytes

    def test_digest_prefix_consistent(self):
        h = KeyedHash(3)
        assert h.digest(5, 4) == h.digest(5, 8)[:4]

    def test_digest_uniformity_coarse(self):
        h = KeyedHash(1234)
        digests = [h.digest(i, 4) for i in range(2_000)]
        assert len(set(digests)) == 2_000


@given(st.integers(min_value=0), st.integers(min_value=0, max_value=2**64 - 1))
def test_hash64_in_range(key, message):
    assert 0 <= KeyedHash(key).hash64(message) < 2**64
