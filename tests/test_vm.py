"""Tests for the virtual-memory page table."""

import pytest

from repro.vm.page_table import LINES_PER_PAGE, PageTable


class TestTranslation:
    def test_offset_preserved(self):
        pt = PageTable(1 << 16)
        paddr = pt.translate(0, 5)
        assert paddr % LINES_PER_PAGE == 5

    def test_stable_mapping(self):
        pt = PageTable(1 << 16)
        assert pt.translate(0, 5) == pt.translate(0, 5)

    def test_lines_of_page_contiguous(self):
        pt = PageTable(1 << 16)
        base = pt.translate(0, 0)
        for offset in range(LINES_PER_PAGE):
            assert pt.translate(0, offset) == base + offset

    def test_groups_never_straddle_pages(self):
        pt = PageTable(1 << 16)
        for vline in range(0, 256, 4):
            group = [pt.translate(0, vline + i) for i in range(4)]
            assert group == list(range(group[0], group[0] + 4))

    def test_cores_get_distinct_frames(self):
        pt = PageTable(1 << 16)
        a = pt.translate(0, 0) // LINES_PER_PAGE
        b = pt.translate(1, 0) // LINES_PER_PAGE
        assert a != b

    def test_reverse_lookup(self):
        pt = PageTable(1 << 16)
        paddr = pt.translate(3, 130)
        frame = paddr // LINES_PER_PAGE
        assert pt.reverse(frame) == (3, 130 // LINES_PER_PAGE)

    def test_frames_allocated_counter(self):
        pt = PageTable(1 << 16)
        pt.translate(0, 0)
        pt.translate(0, 1)  # same page
        pt.translate(0, LINES_PER_PAGE)  # next page
        assert pt.frames_allocated == 2


class TestLimitsAndDeterminism:
    def test_capacity_must_be_whole_pages(self):
        with pytest.raises(ValueError):
            PageTable(100)

    def test_exhaustion(self):
        pt = PageTable(2 * LINES_PER_PAGE)
        pt.translate(0, 0)
        pt.translate(0, LINES_PER_PAGE)
        with pytest.raises(MemoryError):
            pt.translate(0, 2 * LINES_PER_PAGE)

    def test_deterministic_given_seed(self):
        a = PageTable(1 << 16, seed=7)
        b = PageTable(1 << 16, seed=7)
        for vline in (0, 64, 129, 1000):
            assert a.translate(2, vline) == b.translate(2, vline)

    def test_seed_changes_layout(self):
        a = PageTable(1 << 16, seed=7)
        b = PageTable(1 << 16, seed=8)
        assert any(
            a.translate(0, v) != b.translate(0, v) for v in (0, 64, 128)
        )

    def test_collision_probing_fills_all_frames(self):
        frames = 8
        pt = PageTable(frames * LINES_PER_PAGE)
        allocated = {pt.translate(0, i * LINES_PER_PAGE) // LINES_PER_PAGE for i in range(frames)}
        assert len(allocated) == frames
