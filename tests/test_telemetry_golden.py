"""Golden parity: registry-windowed metrics equal the legacy accounting.

The telemetry refactor replaced per-type snapshot/delta code in
``SimulatedSystem`` with one registry snapshot at the warmup boundary.
These tests re-run the *legacy* bookkeeping — baseline captures of every
counter the old ``_snapshot``/``_collect`` pair touched — alongside a
registry-driven run on the same trajectory, for every design, and demand
value-identical results (bitwise, for the derived floats: the division
operands must be the same integers).
"""

import pytest

from repro.core.memzip import MemZipController
from repro.core.metadata_table import MetadataTableController
from repro.core.policy import SamplingPolicy
from repro.core.ptmc import PTMCController
from repro.sim.config import quick_config
from repro.sim.system import DESIGNS, SimulatedSystem
from repro.workloads import get_workload

CFG = quick_config(ops_per_core=500, warmup_ops=300)


def _legacy_snapshot(system):
    """Baselines for everything the pre-registry ``_snapshot`` captured.

    The old code reset the LLP and the tmc_table metadata cache instead
    of capturing baselines; delta-from-baseline is arithmetically the
    same window, without mutating the components.
    """
    stats = system.dram.stats
    legacy = {
        "core_time": [core.time for core in system.cores],
        "core_instr": [core.instructions for core in system.cores],
        "dram": {
            "by_category": dict(stats.accesses_by_category),
            "row_hits": stats.row_hits,
            "row_misses": stats.row_misses,
            "activations": stats.activations,
            "reads": stats.reads,
            "writes": stats.writes,
            "busy_cycles": stats.busy_cycles,
        },
        "l3_hits": system.hierarchy.l3.hits,
        "l3_misses": system.hierarchy.l3.misses,
        "useful": system.hierarchy.useful_prefetches,
        "demand": system.hierarchy.demand_accesses,
    }
    controller = system.controller
    if isinstance(controller, PTMCController):
        legacy["llp"] = (controller.llp.predictions, controller.llp.mispredictions)
        legacy["ptmc"] = (
            controller.inversions,
            controller.invalidate_writes,
            controller.clean_writebacks,
        )
    if isinstance(controller, MetadataTableController):
        cache = controller.metadata_cache
        legacy["meta"] = (cache.hits, cache.misses)
    return legacy


def _legacy_expected(system, legacy):
    """The measured-phase values the pre-registry ``_collect`` computed."""
    stats = system.dram.stats
    base = legacy["dram"]
    by_category = {}
    for category, count in stats.accesses_by_category.items():
        measured = count - base["by_category"].get(category, 0)
        if measured:
            by_category[category] = measured
    expected = {
        "core_cycles": [
            core.time - t0 for core, t0 in zip(system.cores, legacy["core_time"])
        ],
        "core_instructions": [
            core.instructions - i0
            for core, i0 in zip(system.cores, legacy["core_instr"])
        ],
        "dram_by_category": by_category,
        "dram_row_hits": stats.row_hits - base["row_hits"],
        "dram_row_misses": stats.row_misses - base["row_misses"],
        "dram_activations": stats.activations - base["activations"],
        "dram_reads": stats.reads - base["reads"],
        "dram_writes": stats.writes - base["writes"],
        "dram_busy_cycles": stats.busy_cycles - base["busy_cycles"],
        "l3_hits": system.hierarchy.l3.hits - legacy["l3_hits"],
        "l3_misses": system.hierarchy.l3.misses - legacy["l3_misses"],
        "useful_prefetches": system.hierarchy.useful_prefetches - legacy["useful"],
        "demand_accesses": system.hierarchy.demand_accesses - legacy["demand"],
        "llp_accuracy": None,
        "metadata_hit_rate": None,
        "extras": {},
    }
    controller = system.controller
    if isinstance(controller, PTMCController):
        p0, m0 = legacy["llp"]
        predictions = controller.llp.predictions - p0
        mispredictions = controller.llp.mispredictions - m0
        expected["llp_accuracy"] = (
            1.0 if predictions == 0 else 1.0 - mispredictions / predictions
        )
        inv0, inval0, cwb0 = legacy["ptmc"]
        expected["extras"]["inversions"] = controller.inversions - inv0
        expected["extras"]["invalidate_writes"] = (
            controller.invalidate_writes - inval0
        )
        expected["extras"]["clean_writebacks"] = controller.clean_writebacks - cwb0
        expected["extras"]["lit_occupancy"] = len(controller.lit)
    if isinstance(controller, MetadataTableController):
        h0, m0 = legacy["meta"]
        hits = controller.metadata_cache.hits - h0
        misses = controller.metadata_cache.misses - m0
        total = hits + misses
        expected["metadata_hit_rate"] = hits / total if total else 0.0
    if isinstance(controller, MemZipController):
        # never reset at the boundary: whole-run hit rate, warmup included
        expected["metadata_hit_rate"] = controller.metadata_hit_rate
    if isinstance(system.policy, SamplingPolicy):
        expected["extras"]["policy_benefits"] = system.policy.benefits
        expected["extras"]["policy_costs"] = system.policy.costs
        expected["extras"]["compression_enabled_final"] = float(
            sum(
                system.policy.enabled_for(core)
                for core in range(system.config.num_cores)
            )
        ) / system.config.num_cores
    return expected


@pytest.mark.parametrize("design", DESIGNS)
def test_registry_metrics_match_legacy_accounting(design):
    system = SimulatedSystem(get_workload("lbm06"), design, CFG)
    system._run_phase(lambda core: core.mem_ops < CFG.warmup_ops)
    legacy = _legacy_snapshot(system)
    baseline = system.registry.snapshot()
    system._run_phase(None)
    result = system._collect(system.registry.delta(baseline))
    expected = _legacy_expected(system, legacy)

    assert result.core_cycles == expected["core_cycles"]
    assert result.core_instructions == expected["core_instructions"]
    assert dict(result.dram.accesses_by_category) == expected["dram_by_category"]
    assert result.dram.row_hits == expected["dram_row_hits"]
    assert result.dram.row_misses == expected["dram_row_misses"]
    assert result.dram.activations == expected["dram_activations"]
    assert result.dram.reads == expected["dram_reads"]
    assert result.dram.writes == expected["dram_writes"]
    assert result.dram.busy_cycles == expected["dram_busy_cycles"]
    assert result.dram.refresh_stalls == 0  # legacy wire-format parity
    assert result.l3_hits == expected["l3_hits"]
    assert result.l3_misses == expected["l3_misses"]
    assert result.useful_prefetches == expected["useful_prefetches"]
    assert result.demand_accesses == expected["demand_accesses"]
    assert result.llp_accuracy == expected["llp_accuracy"]
    assert result.metadata_hit_rate == expected["metadata_hit_rate"]
    assert result.extras == expected["extras"]


@pytest.mark.parametrize("design", DESIGNS)
def test_run_is_deterministic_and_metrics_round_trip(design):
    from repro.sim.results import SimResult

    first = SimulatedSystem(get_workload("lbm06"), design, CFG).run()
    second = SimulatedSystem(get_workload("lbm06"), design, CFG).run()
    assert first.to_json() == second.to_json()
    assert first.metrics  # registry always contributes paths
    decoded = SimResult.from_json(first.to_json())
    assert decoded.metrics == first.metrics
    # every int survives as an int, every float as a float
    for path, value in first.metrics.items():
        assert type(decoded.metrics[path]) is type(value), path


def test_metrics_namespaces_present():
    result = SimulatedSystem(get_workload("lbm06"), "dynamic_ptmc", CFG).run()
    for path in (
        "dram.row_hits",
        "dram.accesses.data_read",
        "llc.hits",
        "llc.l1.hit_rate",
        "core.0.cycles",
        "ptmc.inversions",
        "ptmc.llp.accuracy",
        "policy.benefits",
        "policy.compression_enabled",
    ):
        assert path in result.metrics, path
