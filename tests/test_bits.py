"""Unit and property tests for the bit-stream helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import BitReader, BitWriter


class TestBitWriter:
    def test_empty_stream(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.byte_length == 0
        assert writer.to_bytes() == b""

    def test_single_byte(self):
        writer = BitWriter()
        writer.write(0xAB, 8)
        assert writer.to_bytes() == b"\xab"

    def test_partial_byte_is_zero_padded(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        assert writer.to_bytes() == bytes([0b10100000])

    def test_msb_first_ordering(self):
        writer = BitWriter()
        writer.write(1, 1)
        writer.write(0, 1)
        writer.write(1, 1)
        writer.write(0b11111, 5)
        assert writer.to_bytes() == bytes([0b10111111])

    def test_byte_length_rounds_up(self):
        writer = BitWriter()
        writer.write(0, 9)
        assert writer.byte_length == 2

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(0b100, 2)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(-1, 4)

    def test_negative_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(0, -1)

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0


class TestBitReader:
    def test_read_back_single_value(self):
        reader = BitReader(b"\xf0")
        assert reader.read(4) == 0xF
        assert reader.read(4) == 0x0

    def test_read_past_end_raises(self):
        reader = BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read(5)
        assert reader.bits_remaining == 11

    def test_read_spanning_bytes(self):
        reader = BitReader(bytes([0b00000001, 0b10000000]))
        assert reader.read(4) == 0
        assert reader.read(8) == 0b00011000


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=33), st.integers(min_value=0)), max_size=50))
def test_roundtrip_random_fields(fields):
    """Any sequence of (width, value) fields reads back exactly."""
    fields = [(width, value & ((1 << width) - 1)) for width, value in fields]
    writer = BitWriter()
    for width, value in fields:
        writer.write(value, width)
    reader = BitReader(writer.to_bytes())
    for width, value in fields:
        assert reader.read(width) == value
