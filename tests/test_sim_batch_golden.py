"""Golden test: batch-driven simulation is bitwise-identical to scalar.

``SimConfig.batch_chunk`` switches the trace feed between the scalar
per-record reference (``0``) and the chunked path that precomputes
compressed sizes with the vectorized batch kernels.  The whole point of
the batch layer is that this switch is unobservable — every metric of
every design must match exactly, not approximately.
"""

import pytest

from repro.sim.config import quick_config
from repro.sim.system import DESIGNS, SimulatedSystem
from repro.workloads.generators import spec_like

CFG = quick_config(ops_per_core=400, warmup_ops=200)
WORKLOAD = spec_like("golden", seed=11)


def run_once(design, batch_chunk, workload=WORKLOAD, cfg=CFG):
    config = cfg.with_(batch_chunk=batch_chunk)
    return SimulatedSystem(workload, design, config).run()


@pytest.mark.parametrize("design", DESIGNS)
def test_batch_and_scalar_results_identical(design):
    scalar = run_once(design, batch_chunk=0)
    batched = run_once(design, batch_chunk=128)
    assert batched == scalar  # full dataclass equality: exact metrics


def test_chunk_size_does_not_matter():
    reference = run_once("static_ptmc", batch_chunk=0)
    for chunk in (1, 7, 64, 4096):
        assert run_once("static_ptmc", batch_chunk=chunk) == reference


def test_batch_front_end_active_only_for_compressing_designs():
    assert SimulatedSystem(WORKLOAD, "uncompressed", CFG).batch is None
    assert SimulatedSystem(WORKLOAD, "static_ptmc", CFG).batch is not None
    scalar_cfg = CFG.with_(batch_chunk=0)
    assert SimulatedSystem(WORKLOAD, "static_ptmc", scalar_cfg).batch is None


def test_irregular_workload_also_identical():
    from repro.workloads.generators import graph_like

    workload = graph_like("golden_gap").with_seed(23)
    scalar = run_once("dynamic_ptmc", 0, workload=workload)
    batched = run_once("dynamic_ptmc", 256, workload=workload)
    assert batched == scalar
