"""End-to-end tests over the service's HTTP API.

A real daemon (HTTP server + scheduler threads + SQLite store + disk
cache) is booted on an ephemeral port inside the test process and
driven through :class:`repro.service.client.ServiceClient` — the same
path the CLI verbs use.
"""

import io
import json
import re
import urllib.error
import urllib.request

import pytest

from repro.service import jobstore
from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.sim import runner
from repro.sim.config import bench_config

OPS, WARMUP = 200, 100
CFG = bench_config(ops_per_core=OPS, warmup_ops=WARMUP)


@pytest.fixture(autouse=True)
def _isolated_runner(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "simcache"))
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)
    yield
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)


def make_daemon(tmp_path, run_scheduler=True, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("drain_seconds", 30.0)
    daemon = ServiceDaemon(
        db_path=tmp_path / "service.db",
        cache_dir=tmp_path / "simcache",
        host="127.0.0.1",
        port=0,
        **kwargs,
    )
    daemon.start(run_scheduler=run_scheduler)
    return daemon


@pytest.fixture
def daemon(tmp_path):
    d = make_daemon(tmp_path)
    yield d
    d.stop()


@pytest.fixture
def paused_daemon(tmp_path):
    """HTTP up, scheduler off: queued jobs stay queued."""
    d = make_daemon(tmp_path, run_scheduler=False)
    yield d
    d.stop()


def comparable(result) -> dict:
    payload = result.to_json_dict()
    payload["extras"].pop("sim_seconds", None)  # wall time is not identity
    return payload


class TestRoundTrip:
    def test_submit_wait_result_matches_direct_simulate(self, daemon):
        client = ServiceClient(daemon.url)
        job = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        assert job["created"] and job["state"] == jobstore.QUEUED
        done = client.wait(job["id"], timeout=120)
        assert done["state"] == jobstore.DONE
        assert done["source"] == "executed"
        served = client.result(job["id"])
        direct = runner.simulate("lbm06", "ideal", CFG, use_cache=False)
        assert comparable(served) == comparable(direct)

    def test_resubmitted_identity_served_from_cache(self, daemon):
        client = ServiceClient(daemon.url)
        job = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        client.wait(job["id"], timeout=120)
        executed_before = daemon.stats.completed
        again = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        # a new job row, but complete on arrival — nothing to execute
        assert again["id"] != job["id"]
        assert again["state"] == jobstore.DONE
        assert again["source"] == "cache"
        assert daemon.stats.dedup_cache == 1
        assert daemon.stats.completed == executed_before
        assert comparable(client.result(again["id"])) == comparable(
            client.result(job["id"])
        )

    def test_restart_recovers_orphaned_job(self, tmp_path):
        # Daemon 1 "crashes" with the job claimed (running row left behind).
        first = make_daemon(tmp_path, run_scheduler=False)
        client = ServiceClient(first.url)
        job = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        assert first.store.claim() is not None
        assert first.store.counts()[jobstore.RUNNING] == 1
        first.stop()
        # Daemon 2 on the same store recovers and completes it.
        second = make_daemon(tmp_path)
        try:
            done = ServiceClient(second.url).wait(job["id"], timeout=120)
            assert done["state"] == jobstore.DONE
            assert second.stats.orphans_recovered == 1
            assert second.store.counts()[jobstore.RUNNING] == 0
        finally:
            second.stop()


class TestApiSurface:
    def test_dedup_joins_active_job(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        first = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        second = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        assert second["id"] == first["id"]
        assert first["created"] and not second["created"]
        assert paused_daemon.stats.dedup_active == 1

    def test_jobs_listing_and_state_filter(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        client.submit("mcf06", "ideal", ops=OPS, warmup=WARMUP)
        assert len(client.jobs()) == 2
        assert len(client.jobs(state="queued")) == 2
        assert client.jobs(state="done") == []

    def test_cancel_then_wait_reports_failure(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        job = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == jobstore.CANCELLED
        with pytest.raises(JobFailed):
            client.wait(job["id"], timeout=5)

    def test_result_of_unfinished_job_conflicts(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        job = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        with pytest.raises(ServiceError) as err:
            client.result(job["id"])
        assert err.value.status == 409

    def test_unknown_job_is_404(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        with pytest.raises(ServiceError) as err:
            client.job("deadbeef")
        assert err.value.status == 404

    def test_bad_submissions_are_400(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        with pytest.raises(ServiceError) as err:
            client.submit("lbm06", "warp_drive")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.submit("no_such_workload", "ideal")
        assert err.value.status == 400

    def test_healthz(self, paused_daemon):
        health = ServiceClient(paused_daemon.url).healthz()
        assert health["ok"] is True
        assert set(jobstore.STATES) <= set(health["queue"])
        assert health["workers"] == 2

    def test_metrics_exposes_service_and_runner_paths(self, daemon):
        client = ServiceClient(daemon.url)
        job = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        client.wait(job["id"], timeout=120)
        metrics = client.metrics()
        assert metrics["service.completed"] == 1
        assert metrics["service.queue_depth"] == 0
        # the runner satellite: execution counters share the registry
        assert "runner.executed" in metrics
        assert "runner.disk.stores" in metrics


def http_get(url: str):
    """``(status, content_type, body)`` without raising on HTTP errors."""
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, resp.headers["Content-Type"], resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.headers["Content-Type"], err.read().decode()


class TestObservabilityEndpoints:
    def test_prometheus_exposition_scrapes(self, daemon):
        client = ServiceClient(daemon.url)
        job = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        client.wait(job["id"], timeout=120)
        status, ctype, text = http_get(f"{daemon.url}/metrics?format=prometheus")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        assert re.search(r"^repro_service_completed_total 1$", text, re.M)
        assert re.search(r"^repro_service_uptime_seconds \d", text, re.M)
        # histograms made it through with their +Inf bucket intact
        assert re.search(
            r'^repro_service_job_seconds_bucket\{le="\+Inf"\} 1$', text, re.M
        )
        assert re.search(r"^repro_service_http_request_seconds_count \d+$", text, re.M)
        assert re.search(r"^repro_service_queue_depth_samples_count 1$", text, re.M)

    def test_unknown_metrics_format_is_400_json(self, paused_daemon):
        status, ctype, body = http_get(f"{paused_daemon.url}/metrics?format=xml")
        assert status == 400
        assert ctype == "application/json"
        assert "unknown format" in json.loads(body)["error"]

    def test_metrics_subpath_is_404_json(self, paused_daemon):
        for path in ("/metrics/foo", "/metrics/foo/bar", "/healthz/nope"):
            status, ctype, body = http_get(f"{paused_daemon.url}{path}")
            assert status == 404
            assert ctype == "application/json"
            assert "no route" in json.loads(body)["error"]

    def test_unsupported_method_gets_json_error(self, paused_daemon):
        request = urllib.request.Request(
            f"{paused_daemon.url}/metrics", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 501
        assert err.value.headers["Content-Type"] == "application/json"
        assert "error" in json.loads(err.value.read())

    def test_healthz_reports_uptime_and_queue_depth(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
        health = client.healthz()
        assert health["uptime_seconds"] >= 0
        assert health["queue_depth"] == 1

    def test_structured_log_records_requests_and_jobs(self, tmp_path):
        stream = io.StringIO()
        daemon = make_daemon(tmp_path, log_stream=stream)
        try:
            client = ServiceClient(daemon.url)
            job = client.submit("lbm06", "ideal", ops=OPS, warmup=WARMUP)
            client.wait(job["id"], timeout=120)
        finally:
            daemon.stop()
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        events = {record["event"] for record in records}
        assert {"job_submitted", "job_dispatched", "job_completed",
                "http_request"} <= events
        for record in records:
            assert {"ts", "event"} <= set(record)
        completed = next(r for r in records if r["event"] == "job_completed")
        assert completed["job_id"] == job["id"]
        assert completed["seconds"] >= 0


class TestPolicySubmission:
    def test_policy_job_round_trips(self, daemon):
        client = ServiceClient(daemon.url)
        job = client.submit(
            "lbm06", "static_ptmc", ops=OPS, warmup=WARMUP, llc_policy="fifo"
        )
        done = client.wait(job["id"], timeout=120)
        assert done["state"] == jobstore.DONE
        served = client.result(job["id"])
        direct = runner.simulate(
            "lbm06", "static_ptmc", CFG.with_(llc_policy="fifo"), use_cache=False
        )
        assert comparable(served) == comparable(direct)

    def test_policy_jobs_do_not_dedupe_across_policies(self, daemon):
        client = ServiceClient(daemon.url)
        lru = client.submit(
            "lbm06", "static_ptmc", ops=OPS, warmup=WARMUP, llc_policy="lru"
        )
        srrip = client.submit(
            "lbm06", "static_ptmc", ops=OPS, warmup=WARMUP, llc_policy="srrip"
        )
        assert lru["created"] and srrip["created"]
        assert lru["key"] != srrip["key"]

    def test_unknown_policy_rejected(self, daemon):
        client = ServiceClient(daemon.url)
        with pytest.raises(ServiceError) as err:
            client.submit("lbm06", "ideal", llc_policy="belady")
        assert "unknown llc_policy" in str(err.value)
