"""Tests for workload characterisation (Table II machinery)."""

import pytest

from repro.sim.config import quick_config
from repro.workloads import MIXES, get_workload
from repro.workloads.characterize import (
    WorkloadProfile,
    characterize,
    data_statistics,
    footprint_mb,
)

CFG = quick_config(ops_per_core=800, warmup_ops=200)


class TestDataStatistics:
    def test_spec_compresses_better_than_graph(self):
        spec_size, spec_pairs = data_statistics(get_workload("lbm06"))
        gap_size, gap_pairs = data_statistics(get_workload("bfs.twitter"))
        assert spec_size < gap_size
        assert spec_pairs > gap_pairs

    def test_rates_are_probabilities(self):
        size, pairs = data_statistics(get_workload("mcf06"), samples=64)
        assert 1 <= size <= 64
        assert 0.0 <= pairs <= 1.0

    def test_deterministic(self):
        assert data_statistics(get_workload("lbm06")) == data_statistics(
            get_workload("lbm06")
        )


class TestFootprint:
    def test_rate_mode_scales_by_cores(self):
        workload = get_workload("lbm06")
        assert footprint_mb(workload, num_cores=8) == pytest.approx(
            workload.footprint_lines * 64 * 8 / 1e6
        )

    def test_mix_sums_member_specs(self):
        mix = MIXES[0]
        value = footprint_mb(mix, num_cores=8)
        assert value > 0
        manual = sum(mix.spec_for_core(c).footprint_lines for c in range(8)) * 64 / 1e6
        assert value == pytest.approx(manual)


class TestCharacterize:
    def test_profile_fields(self):
        profile = characterize(get_workload("lbm06"), CFG)
        assert isinstance(profile, WorkloadProfile)
        assert profile.name == "lbm06"
        assert profile.l3_mpki > 0
        assert profile.footprint_mb > 0
        assert profile.memory_intensive == (profile.l3_mpki >= 5.0)

    def test_accepts_precomputed_baseline(self):
        from repro.sim.runner import simulate

        baseline = simulate("lbm06", "uncompressed", CFG)
        profile = characterize(get_workload("lbm06"), baseline=baseline)
        assert profile.l3_mpki > 0

    def test_low_mpki_filler_not_memory_intensive(self):
        profile = characterize(get_workload("perlbench06"), CFG)
        assert profile.l3_mpki < 30  # cache-friendly by construction
