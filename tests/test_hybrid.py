"""Tests for the hybrid (best-of-N) compressor."""

import random
import struct

import pytest
from hypothesis import given

from repro.compression import BDI, CPack, FPC, HybridCompressor, ZeroLine
from repro.compression.base import CompressionError
from tests.lineutils import any_lines, pointer_line, random_line, small_int_line, zero_line


@pytest.fixture
def hybrid():
    return HybridCompressor()


class TestHybrid:
    def test_default_is_fpc_plus_bdi(self, hybrid):
        assert [a.name for a in hybrid.algorithms] == ["fpc", "bdi"]

    def test_zero_line(self, hybrid):
        payload = hybrid.compress(zero_line())
        assert payload is not None
        assert hybrid.decompress(payload) == zero_line()

    def test_picks_smaller_algorithm(self, hybrid):
        line = pointer_line()  # BDI-friendly, FPC-hostile
        payload = hybrid.compress(line)
        assert payload is not None
        assert payload[0] == 1  # BDI tag
        assert hybrid.decompress(payload) == line

    def test_fpc_wins_on_small_ints(self, hybrid):
        line = small_int_line(start=0, step=1)
        payload = hybrid.compress(line)
        fpc_size = len(FPC().compress(line)) + 1
        assert len(payload) <= fpc_size

    def test_tag_charged_against_size(self, hybrid):
        line = small_int_line()
        raw = FPC().compress(line)
        payload = hybrid.compress(line)
        assert len(payload) <= len(raw) + 1

    def test_incompressible_returns_none(self, hybrid):
        rng = random.Random(21)
        assert hybrid.compress(random_line(rng)) is None

    def test_memoization_returns_same_result(self, hybrid):
        line = small_int_line()
        assert hybrid.compress(line) == hybrid.compress(line)

    def test_memoization_of_incompressible(self, hybrid):
        rng = random.Random(21)
        line = random_line(rng)
        assert hybrid.compress(line) is None
        assert hybrid.compress(line) is None  # served from cache

    def test_clear_cache(self, hybrid):
        hybrid.compress(zero_line())
        hybrid.clear_cache()
        assert hybrid.compress(zero_line()) is not None

    def test_custom_algorithm_set(self):
        h = HybridCompressor([ZeroLine(), CPack()])
        assert h.compress(zero_line())[0] == 0
        line = struct.pack(">16I", *([0xCAFEBABE] * 16))
        payload = h.compress(line)
        assert payload[0] == 1
        assert h.decompress(payload) == line

    def test_empty_algorithm_set_rejected(self):
        with pytest.raises(ValueError):
            HybridCompressor([])

    def test_decompress_unknown_tag(self, hybrid):
        with pytest.raises(CompressionError):
            hybrid.decompress(b"\x09\x00")

    def test_decompress_empty(self, hybrid):
        with pytest.raises(CompressionError):
            hybrid.decompress(b"")

    def test_compressed_size_helper(self, hybrid):
        rng = random.Random(21)
        assert hybrid.compressed_size(random_line(rng)) == 64
        assert hybrid.compressed_size(zero_line()) < 8


@given(any_lines)
def test_hybrid_roundtrip_property(line):
    hybrid = HybridCompressor(memoize=False)
    payload = hybrid.compress(line)
    if payload is not None:
        assert len(payload) < 64
        assert hybrid.decompress(payload) == line


@given(any_lines)
def test_hybrid_never_worse_than_components(line):
    hybrid = HybridCompressor(memoize=False)
    payload = hybrid.compress(line)
    for algorithm in (FPC(), BDI()):
        component = algorithm.compress(line)
        if component is not None and len(component) + 1 < 64:
            assert payload is not None
            assert len(payload) <= len(component) + 1
