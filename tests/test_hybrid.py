"""Tests for the hybrid (best-of-N) compressor."""

import random
import struct

import pytest
from hypothesis import given

from repro.compression import BDI, CPack, FPC, HybridCompressor, ZeroLine
from repro.compression.base import CompressionAlgorithm, CompressionError
from tests.lineutils import any_lines, pointer_line, random_line, small_int_line, zero_line


class FixedSize(CompressionAlgorithm):
    """Test double: always compresses to a payload of a fixed size."""

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self._size = size

    def compress(self, line):
        self.check_line(line)
        return bytes(self._size)

    def decompress(self, payload):
        return b"\x00" * 64


@pytest.fixture
def hybrid():
    return HybridCompressor()


class TestHybrid:
    def test_default_is_fpc_plus_bdi(self, hybrid):
        assert [a.name for a in hybrid.algorithms] == ["fpc", "bdi"]

    def test_zero_line(self, hybrid):
        payload = hybrid.compress(zero_line())
        assert payload is not None
        assert hybrid.decompress(payload) == zero_line()

    def test_picks_smaller_algorithm(self, hybrid):
        line = pointer_line()  # BDI-friendly, FPC-hostile
        payload = hybrid.compress(line)
        assert payload is not None
        assert payload[0] == 1  # BDI tag
        assert hybrid.decompress(payload) == line

    def test_fpc_wins_on_small_ints(self, hybrid):
        line = small_int_line(start=0, step=1)
        payload = hybrid.compress(line)
        fpc_size = len(FPC().compress(line)) + 1
        assert len(payload) <= fpc_size

    def test_tag_charged_against_size(self, hybrid):
        line = small_int_line()
        raw = FPC().compress(line)
        payload = hybrid.compress(line)
        assert len(payload) <= len(raw) + 1

    def test_incompressible_returns_none(self, hybrid):
        rng = random.Random(21)
        assert hybrid.compress(random_line(rng)) is None

    def test_memoization_returns_same_result(self, hybrid):
        line = small_int_line()
        assert hybrid.compress(line) == hybrid.compress(line)

    def test_memoization_of_incompressible(self, hybrid):
        rng = random.Random(21)
        line = random_line(rng)
        assert hybrid.compress(line) is None
        assert hybrid.compress(line) is None  # served from cache

    def test_clear_cache(self, hybrid):
        hybrid.compress(zero_line())
        hybrid.clear_cache()
        assert hybrid.compress(zero_line()) is not None

    def test_custom_algorithm_set(self):
        h = HybridCompressor([ZeroLine(), CPack()])
        assert h.compress(zero_line())[0] == 0
        line = struct.pack(">16I", *([0xCAFEBABE] * 16))
        payload = h.compress(line)
        assert payload[0] == 1
        assert h.decompress(payload) == line

    def test_empty_algorithm_set_rejected(self):
        with pytest.raises(ValueError):
            HybridCompressor([])

    def test_decompress_unknown_tag(self, hybrid):
        with pytest.raises(CompressionError):
            hybrid.decompress(b"\x09\x00")

    def test_decompress_empty(self, hybrid):
        with pytest.raises(CompressionError):
            hybrid.decompress(b"")

    def test_compressed_size_helper(self, hybrid):
        rng = random.Random(21)
        assert hybrid.compressed_size(random_line(rng)) == 64
        assert hybrid.compressed_size(zero_line()) < 8

    def test_compress_and_size_agree(self, hybrid):
        for line in (zero_line(), small_int_line(), random_line(random.Random(21))):
            payload, size = hybrid.compress_and_size(line)
            assert size == (64 if payload is None else len(payload))
            assert size == hybrid.compressed_size(line)

    def test_cached_size_lifecycle(self):
        h = HybridCompressor([FixedSize("only", 10)], memoize=True)
        line = b"\x07" * 64
        assert h.cached_size(line) is None  # never compressed yet
        assert h.compressed_size(line) == 11  # payload + tag byte
        assert h.cached_size(line) == 11
        h.clear_cache()
        assert h.cached_size(line) is None

    def test_cached_size_derives_from_payload_memo(self):
        h = HybridCompressor([FixedSize("only", 10)], memoize=True)
        line = b"\x07" * 64
        h.compress(line)  # fills the payload memo
        h._sizes.clear()  # size memo empty: must derive, not recompress
        assert h.cached_size(line) == 11

    def test_seed_sizes_feeds_compressed_size(self):
        h = HybridCompressor([FixedSize("only", 10)], memoize=True)
        line = b"\x07" * 64
        h.seed_sizes([line], [11])
        assert h.cached_size(line) == 11
        assert h.compressed_size(line) == 11

    def test_seed_sizes_noop_without_memo(self):
        h = HybridCompressor([FixedSize("only", 10)], memoize=False)
        h.seed_sizes([b"\x07" * 64], [11])
        assert h.cached_size(b"\x07" * 64) is None


class TestTieBreaking:
    """Equal-size candidates must resolve to the first algorithm.

    The rule (strict ``<`` in constructor order) is load-bearing: the
    vectorized batch kernel applies the same first-minimum selection, and
    any divergence would break the batch-vs-scalar bitwise-identity
    guarantee the simulator relies on.
    """

    def test_tie_keeps_first_algorithm(self):
        line = b"\x07" * 64
        h = HybridCompressor(
            [FixedSize("a", 8), FixedSize("b", 8)], memoize=False
        )
        payload = h.compress(line)
        assert payload is not None and payload[0] == 0

    def test_tie_follows_constructor_order(self):
        line = b"\x07" * 64
        h = HybridCompressor(
            [FixedSize("b", 8), FixedSize("a", 8)], memoize=False
        )
        payload = h.compress(line)
        assert payload[0] == 0  # still the first listed, not a name sort

    def test_strictly_smaller_still_wins(self):
        line = b"\x07" * 64
        h = HybridCompressor(
            [FixedSize("a", 9), FixedSize("b", 8)], memoize=False
        )
        assert h.compress(line)[0] == 1

    def test_real_algorithm_ties_are_deterministic(self):
        """Replaying the same corpus twice (memoized and not) always
        lands on the same tag, even where FPC and BDI tie on size."""
        rng = random.Random(7)
        lines = [small_int_line(start=i, step=1) for i in range(32)]
        lines += [pointer_line(base=0x7FFF_AB00_0000 + i * 0x1000) for i in range(8)]
        lines += [random_line(rng) for _ in range(8)]
        fresh = HybridCompressor(memoize=False)
        memo = HybridCompressor(memoize=False)
        for line in lines:
            a, b = fresh.compress(line), memo.compress(line)
            assert a == b


@given(any_lines)
def test_hybrid_roundtrip_property(line):
    hybrid = HybridCompressor(memoize=False)
    payload = hybrid.compress(line)
    if payload is not None:
        assert len(payload) < 64
        assert hybrid.decompress(payload) == line


@given(any_lines)
def test_hybrid_never_worse_than_components(line):
    hybrid = HybridCompressor(memoize=False)
    payload = hybrid.compress(line)
    for algorithm in (FPC(), BDI()):
        component = algorithm.compress(line)
        if component is not None and len(component) + 1 < 64:
            assert payload is not None
            assert len(payload) <= len(component) + 1
