"""Full-stack integration tests: every design must be functionally exact.

These drive complete simulated systems with real workload traffic and
assert the memory system's contract: after the caches are flushed, every
line reads back the last value the program wrote (or its initial
contents).  Compression, markers, inversion, relocation, invalidation and
ganged eviction are all under test at once — any interpretation bug
surfaces as a data mismatch or an unlocatable line.
"""

import pytest

from repro.sim.config import quick_config
from repro.sim.system import DESIGNS, SimulatedSystem
from repro.workloads import get_workload

CFG = quick_config(ops_per_core=1200, warmup_ops=0)


def run_and_verify(workload_name: str, design: str, config=CFG):
    system = SimulatedSystem(get_workload(workload_name), design, config)
    result = system.run()
    system.hierarchy.flush(0)
    null_llc = __import__("repro.core.base_controller", fromlist=["NullLLCView"]).NullLLCView()
    mismatches = 0
    checked = 0
    for core_id, generator in enumerate(system.generators):
        for vline, expected in generator.reference.items():
            paddr = system.page_table.translate(core_id, vline)
            actual = system.controller.read_line(paddr, 0, core_id, null_llc).data
            checked += 1
            if actual != expected:
                mismatches += 1
    assert checked > 0
    assert mismatches == 0, f"{mismatches}/{checked} lines corrupted under {design}"
    return result


@pytest.mark.parametrize("design", DESIGNS)
def test_spec_workload_data_integrity(design):
    run_and_verify("lbm06", design)


@pytest.mark.parametrize("design", DESIGNS)
def test_graph_workload_data_integrity(design):
    # graph footprints are large: give the quick config enough frames
    cfg = quick_config(ops_per_core=1200, warmup_ops=0, capacity_lines=1 << 21)
    run_and_verify("bfs.twitter", design, cfg)


@pytest.mark.parametrize("design", ["static_ptmc", "dynamic_ptmc", "tmc_table"])
def test_mix_workload_data_integrity(design):
    run_and_verify("mix1", design)


def test_write_heavy_integrity():
    from repro.workloads.generators import spec_like


    # a pathological write-heavy, scramble-heavy spec stresses regrouping
    spec = spec_like(
        "writestorm",
        footprint_lines=1024,
        write_frac=0.7,
        write_scramble=0.3,
        seed=77,
    )
    system = SimulatedSystem(spec, "static_ptmc", CFG)
    system.run()
    system.hierarchy.flush(0)
    from repro.core.base_controller import NullLLCView

    null_llc = NullLLCView()
    for core_id, generator in enumerate(system.generators):
        for vline, expected in generator.reference.items():
            paddr = system.page_table.translate(core_id, vline)
            actual = system.controller.read_line(paddr, 0, core_id, null_llc).data
            assert actual == expected


def test_inclusion_invariant_holds_throughout():
    """L1/L2 contents must always be a subset of the L3 (inclusive LLC)."""
    system = SimulatedSystem(get_workload("mcf06"), "static_ptmc", CFG)
    hierarchy = system.hierarchy
    original = hierarchy.access
    counter = {"n": 0}

    def checked(core_id, addr, is_write, now, write_data=None):
        outcome = original(core_id, addr, is_write, now, write_data)
        counter["n"] += 1
        if counter["n"] % 500 == 0:
            for caches in (hierarchy.l1s, hierarchy.l2s):
                for cache in caches:
                    for line in cache.resident():
                        assert hierarchy.l3.probe(line.addr) is not None
        return outcome

    hierarchy.access = checked
    system.run()
    assert counter["n"] > 0


def test_deterministic_results():
    a = SimulatedSystem(get_workload("lbm06"), "static_ptmc", CFG).run()
    b = SimulatedSystem(get_workload("lbm06"), "static_ptmc", CFG).run()
    assert a.core_cycles == b.core_cycles
    assert a.total_dram_accesses == b.total_dram_accesses


def test_designs_agree_on_functional_state():
    """All designs must end with identical logical memory contents."""
    from repro.core.base_controller import NullLLCView

    reference_state = None
    for design in ("uncompressed", "static_ptmc", "tmc_table", "ideal"):
        system = SimulatedSystem(get_workload("milc06"), design, CFG)
        system.run()
        system.hierarchy.flush(0)
        state = {}
        null_llc = NullLLCView()
        for core_id, generator in enumerate(system.generators):
            for vline in generator.reference:
                paddr = system.page_table.translate(core_id, vline)
                state[(core_id, vline)] = system.controller.read_line(
                    paddr, 0, core_id, null_llc
                ).data
        if reference_state is None:
            reference_state = state
        else:
            assert state == reference_state, f"{design} diverged"


def test_weighted_speedup_of_identical_systems_is_one():
    from repro.sim.results import weighted_speedup

    a = SimulatedSystem(get_workload("lbm06"), "uncompressed", CFG).run()
    b = SimulatedSystem(get_workload("lbm06"), "uncompressed", CFG).run()
    assert weighted_speedup(a, b) == pytest.approx(1.0)


def test_warmup_excluded_from_measurement():
    warm = quick_config(ops_per_core=800, warmup_ops=800)
    cold = quick_config(ops_per_core=800, warmup_ops=0)
    r_warm = SimulatedSystem(get_workload("lbm06"), "uncompressed", warm).run()
    r_cold = SimulatedSystem(get_workload("lbm06"), "uncompressed", cold).run()
    assert r_warm.core_instructions != r_cold.core_instructions or True
    # measured instruction counts reflect only the measured ops
    assert all(i > 0 for i in r_warm.core_instructions)
    assert max(r_warm.core_cycles) < max(r_cold.core_cycles) * 3


def test_per_core_dynamic_decision_on_mix():
    """Paper §V: per-core counters let a MIX disable compression only for
    the cores running compression-hostile workloads."""
    from repro.core.policy import SamplingPolicy
    from repro.workloads import MIXES

    cfg = quick_config(
        ops_per_core=2500,
        warmup_ops=2500,
        capacity_lines=1 << 21,
    )
    system = SimulatedSystem(MIXES[0], "dynamic_ptmc", cfg)
    system.run()
    policy = system.policy
    assert isinstance(policy, SamplingPolicy)
    decisions = [policy.enabled_for(core) for core in range(cfg.num_cores)]
    gap_cores = [
        c for c in range(cfg.num_cores)
        if MIXES[0].spec_for_core(c).suite == "gap"
    ]
    spec_cores = [c for c in range(cfg.num_cores) if c not in gap_cores]
    # SPEC cores keep compression more often than graph cores
    spec_on = sum(decisions[c] for c in spec_cores)
    gap_on = sum(decisions[c] for c in gap_cores)
    assert spec_on >= gap_on
    assert spec_on >= len(spec_cores) - 1, "SPEC cores should stay enabled"


def test_memory_mapped_lit_full_simulation():
    """Option 1 (memory-mapped LIT) stays correct under full traffic."""
    from repro.core.lit import LITPolicy
    from repro.core.ptmc import PTMCConfig

    cfg = quick_config(
        ops_per_core=1000,
        warmup_ops=0,
    ).with_(ptmc=PTMCConfig(lit_capacity=1, lit_policy=LITPolicy.MEMORY_MAPPED))
    run_and_verify("soplex06", "static_ptmc", cfg)


def test_tiny_lit_rekey_full_simulation():
    """Option 2 (rekey) stays correct even with an absurdly small LIT."""
    from repro.core.lit import LITPolicy
    from repro.core.ptmc import PTMCConfig

    cfg = quick_config(
        ops_per_core=1000,
        warmup_ops=0,
    ).with_(ptmc=PTMCConfig(lit_capacity=1, lit_policy=LITPolicy.REKEY))
    run_and_verify("gcc06", "static_ptmc", cfg)


def test_five_byte_marker_full_simulation():
    """The paper's recommendation for very large memories runs unchanged."""
    from repro.core.ptmc import PTMCConfig

    cfg = quick_config(ops_per_core=1000, warmup_ops=0).with_(
        ptmc=PTMCConfig(marker_size=5)
    )
    run_and_verify("lbm06", "static_ptmc", cfg)
