"""Tests for the compression enable/disable policies (Dynamic-PTMC)."""

import pytest

from repro.core.policy import AlwaysOffPolicy, AlwaysOnPolicy, SamplingPolicy


class TestStaticPolicies:
    def test_always_on(self):
        policy = AlwaysOnPolicy()
        assert policy.enabled_for(0)
        assert not policy.is_sampled_set(0)
        policy.on_benefit(0)  # no-ops
        policy.on_cost(0)

    def test_always_off(self):
        assert not AlwaysOffPolicy().enabled_for(3)


class TestSampling:
    def test_sampled_fraction(self):
        policy = SamplingPolicy(sample_period=32)
        sampled = sum(policy.is_sampled_set(s) for s in range(3200))
        assert sampled == 100

    def test_initially_enabled(self):
        policy = SamplingPolicy()
        assert all(policy.enabled_for(c) for c in range(8))

    def test_costs_disable(self):
        policy = SamplingPolicy(counter_bits=4, per_core=False)
        # init = 12, threshold = 8: five costs cross the MSB
        for _ in range(5):
            policy.on_cost(0)
        assert not policy.enabled_for(0)

    def test_benefits_reenable(self):
        policy = SamplingPolicy(counter_bits=4, per_core=False)
        for _ in range(6):
            policy.on_cost(0)
        for _ in range(4):
            policy.on_benefit(0)
        assert policy.enabled_for(0)

    def test_counter_saturates_high(self):
        policy = SamplingPolicy(counter_bits=4, per_core=False)
        for _ in range(100):
            policy.on_benefit(0)
        assert policy.counter() == 15

    def test_counter_saturates_low(self):
        policy = SamplingPolicy(counter_bits=4, per_core=False)
        for _ in range(100):
            policy.on_cost(0)
        assert policy.counter() == 0

    def test_per_core_isolation(self):
        policy = SamplingPolicy(counter_bits=4, num_cores=2, per_core=True)
        for _ in range(6):
            policy.on_cost(0)
        assert not policy.enabled_for(0)
        assert policy.enabled_for(1)

    def test_shared_counter(self):
        policy = SamplingPolicy(counter_bits=4, num_cores=8, per_core=False)
        for _ in range(6):
            policy.on_cost(3)
        assert not policy.enabled_for(0)

    def test_benefit_weight(self):
        policy = SamplingPolicy(counter_bits=6, per_core=False, benefit_weight=3)
        start = policy.counter()
        policy.on_benefit(0)
        assert policy.counter() == start + 3

    def test_event_statistics(self):
        policy = SamplingPolicy()
        policy.on_benefit(0)
        policy.on_cost(0)
        policy.on_cost(1)
        assert policy.benefits == 1
        assert policy.costs == 2

    def test_storage_bits(self):
        assert SamplingPolicy(counter_bits=12, num_cores=8).storage_bits() == 96
        assert SamplingPolicy(counter_bits=12, per_core=False).storage_bits() == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(counter_bits=1)
        with pytest.raises(ValueError):
            SamplingPolicy(sample_period=0)
