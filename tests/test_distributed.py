"""Distributed sweep fabric: leases, remote workers, auth, backpressure.

Covers the jobstore lease/heartbeat/reap protocol, the owner guards on
``finish``/``fail``, the scheduler timeout fixes, the HTTP worker
protocol end-to-end (a real :class:`RemoteWorker` draining a daemon
whose local scheduler is off), token auth, queue-depth backpressure,
per-client rate limiting, and a hypothesis state machine asserting the
store's invariants hold under arbitrary operation interleavings.
"""

import shutil
import tempfile
import threading
import time
from concurrent.futures import Future
from pathlib import Path

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.service import jobstore
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon, TokenBucketLimiter
from repro.service.jobstore import JobStore
from repro.service.scheduler import Scheduler
from repro.service.worker import RemoteWorker
from repro.sim import runner
from repro.sim.config import bench_config
from repro.sim.diskcache import DiskCache, cache_key
from repro.workloads import get_workload

OVERRIDES = {"ops_per_core": 200, "warmup_ops": 100}
CFG = bench_config(**OVERRIDES)


def key_for(workload: str, design: str) -> str:
    return cache_key(get_workload(workload), design, CFG)


def submit(store: JobStore, workload="lbm06", design="ideal", **kwargs):
    return store.submit(
        workload, design, key_for(workload, design), config=OVERRIDES, **kwargs
    )


def wait_for(condition, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def store(tmp_path):
    s = JobStore(tmp_path / "jobs.db")
    yield s
    s.close()


@pytest.fixture(autouse=True)
def _isolated_runner(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "simcache"))
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)
    yield
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)


# -- jobstore: leases ----------------------------------------------------


class TestLeases:
    def test_claim_records_worker_and_lease(self, store):
        submit(store)
        job = store.claim(now=100.0, worker_id="w1", lease_seconds=30.0)
        assert job.worker_id == "w1"
        assert job.lease_until == 130.0

    def test_leaseless_claim_is_never_reaped(self, store):
        submit(store)
        job = store.claim(worker_id="w1")
        assert job.lease_until is None
        assert store.reap_expired(now=time.time() + 10_000) == []

    def test_heartbeat_extends_lease(self, store):
        submit(store)
        job = store.claim(now=100.0, worker_id="w1", lease_seconds=30.0)
        assert store.heartbeat(job.id, "w1", lease_seconds=30.0, now=120.0)
        assert store.get(job.id).lease_until == 150.0

    def test_heartbeat_owner_guarded(self, store):
        submit(store)
        job = store.claim(now=100.0, worker_id="w1", lease_seconds=30.0)
        assert not store.heartbeat(job.id, "imposter", now=120.0)
        assert store.get(job.id).lease_until == 130.0

    def test_reap_requeues_expired_lease(self, store):
        submit(store)
        job = store.claim(now=100.0, worker_id="w1", lease_seconds=30.0)
        assert store.reap_expired(now=120.0) == []  # still live
        reaped = store.reap_expired(now=131.0)
        assert [j.id for j in reaped] == [job.id]
        assert reaped[0].worker_id == "w1"  # pre-reap view names the loser
        back = store.get(job.id)
        assert back.state == jobstore.QUEUED
        assert back.worker_id is None
        assert back.lease_until is None
        assert back.started_at is None
        assert back.attempts == 1  # the lost claim still counts

    def test_reap_fails_terminally_on_last_attempt(self, store):
        submit(store, max_attempts=1)
        job = store.claim(now=100.0, worker_id="w1", lease_seconds=5.0)
        store.reap_expired(now=200.0)
        final = store.get(job.id)
        assert final.state == jobstore.FAILED
        assert "lease expired" in final.error
        assert "w1" in final.error

    def test_finish_owner_guarded(self, store):
        submit(store)
        job = store.claim(worker_id="w1", lease_seconds=30.0)
        assert not store.finish(job.id, "executed", worker_id="imposter")
        assert store.get(job.id).state == jobstore.RUNNING
        assert store.finish(job.id, "executed", worker_id="w1")
        assert store.get(job.id).state == jobstore.DONE

    def test_fail_owner_guarded(self, store):
        submit(store)
        job = store.claim(worker_id="w1", lease_seconds=30.0)
        assert not store.fail(job.id, "boom", worker_id="imposter")
        assert store.get(job.id).state == jobstore.RUNNING
        assert store.fail(job.id, "boom", worker_id="w1")
        assert store.get(job.id).state == jobstore.FAILED

    def test_reaped_worker_cannot_clobber_new_owner(self, store):
        # w1's lease expires; the job is re-leased to w2; w1's late
        # finish must not override w2's ownership.
        submit(store)
        job = store.claim(now=100.0, worker_id="w1", lease_seconds=10.0)
        store.reap_expired(now=200.0)
        retry = store.claim(now=200.0, worker_id="w2", lease_seconds=10.0)
        assert retry.id == job.id and retry.worker_id == "w2"
        assert not store.finish(job.id, "executed", worker_id="w1")
        assert store.get(job.id).state == jobstore.RUNNING
        assert store.finish(job.id, "executed", worker_id="w2")

    def test_boot_recovery_spares_leased_rows(self, store):
        # A leased row may belong to a live remote worker: boot-time
        # recovery must leave it to the reaper.
        submit(store, "lbm06", "ideal")
        submit(store, "mcf06", "ideal")
        leased = store.claim(worker_id="remote", lease_seconds=300.0)
        legacy = store.claim(worker_id="old-daemon")  # no lease
        recovered = store.recover_orphans(only_leaseless=True)
        assert [j.id for j in recovered] == [legacy.id]
        assert store.get(leased.id).state == jobstore.RUNNING
        # full (legacy) recovery still takes everything
        assert len(store.recover_orphans()) == 1

    def test_old_database_schema_is_migrated(self, tmp_path):
        import sqlite3

        # A pre-lease database: same table minus the two new columns.
        db = tmp_path / "old.db"
        conn = sqlite3.connect(db)
        conn.executescript(
            """
            CREATE TABLE jobs (
                id TEXT PRIMARY KEY, key TEXT NOT NULL,
                workload TEXT NOT NULL, design TEXT NOT NULL,
                config_json TEXT NOT NULL,
                priority INTEGER NOT NULL DEFAULT 0, state TEXT NOT NULL,
                attempts INTEGER NOT NULL DEFAULT 0,
                max_attempts INTEGER NOT NULL DEFAULT 3,
                timeout REAL, not_before REAL NOT NULL DEFAULT 0,
                source TEXT, error TEXT, created_at REAL NOT NULL,
                updated_at REAL NOT NULL, started_at REAL, finished_at REAL
            );
            INSERT INTO jobs VALUES ('j1', 'k1', 'lbm06', 'ideal', '{}',
                0, 'queued', 0, 3, NULL, 0, NULL, NULL, 1.0, 1.0, NULL, NULL);
            """
        )
        conn.commit()
        conn.close()
        upgraded = JobStore(db)
        try:
            job = upgraded.get("j1")
            assert job.worker_id is None and job.lease_until is None
            claimed = upgraded.claim(worker_id="w1", lease_seconds=5.0)
            assert claimed.id == "j1" and claimed.worker_id == "w1"
        finally:
            upgraded.close()


# -- jobstore: satellite bug fixes ---------------------------------------


class TestJobStoreFixes:
    def test_find_escapes_like_wildcards(self, store):
        job, _ = submit(store)
        assert store.find(job.id[:8]).id == job.id
        # '%' and '_' are literals in a prefix, not LIKE wildcards —
        # they can never appear in a uuid id, so they must match nothing.
        with pytest.raises(KeyError):
            store.find("%")
        with pytest.raises(KeyError):
            store.find("________")
        with pytest.raises(KeyError):
            store.find(job.id[:4] + "%")

    def test_dedup_join_raises_priority(self, store):
        low, created = submit(store, priority=1)
        assert created
        joined, created2 = submit(store, priority=5)
        assert not created2 and joined.id == low.id
        assert joined.priority == 5
        # a lower-priority join never demotes the surviving row
        again, _ = submit(store, priority=0)
        assert again.priority == 5

    def test_dedup_priority_raise_changes_claim_order(self, store):
        first, _ = submit(store, "lbm06", "ideal", priority=0)
        other, _ = submit(store, "mcf06", "ideal", priority=3)
        submit(store, "lbm06", "ideal", priority=9)  # join + raise
        assert store.claim().id == first.id
        assert store.claim().id == other.id

    def test_retrying_fail_clears_claim_bookkeeping(self, store):
        submit(store)
        job = store.claim(worker_id="w1", lease_seconds=30.0)
        assert store.fail(job.id, "boom", retry_delay=0.0)
        back = store.get(job.id)
        assert back.state == jobstore.QUEUED
        assert back.started_at is None
        assert back.worker_id is None
        assert back.lease_until is None
        # and the re-claim starts a fresh lease, not a stale one
        retry = store.claim(now=time.time() + 1.0, worker_id="w2",
                            lease_seconds=30.0)
        assert retry.id == job.id and retry.started_at is not None


# -- scheduler: timeout fixes --------------------------------------------


class _FakePool:
    """Stands in for ProcessPoolExecutor in timeout unit tests."""

    def __init__(self):
        self._processes = {}
        self.killed = False

    def shutdown(self, wait=False, cancel_futures=False):
        self.killed = True


def make_timeout_scheduler(store, tmp_path):
    scheduler = Scheduler(
        store, cache_dir=str(tmp_path / "simcache"), workers=2,
        backoff_base=0.01,
    )
    scheduler._pool = _FakePool()
    scheduler._new_pool = _FakePool  # rebuilt pools are fakes too
    return scheduler


def claim_inflight(store, scheduler, deadline=None):
    """Claim one job as the scheduler would and plant a fake future."""
    job = store.claim(worker_id=scheduler.worker_id,
                      lease_seconds=scheduler.lease_seconds)
    future = Future()
    future.set_running_or_notify_cancel()
    scheduler._inflight[job.id] = (
        job, future, deadline, time.perf_counter(),
        time.time() + scheduler.lease_seconds,
    )
    return job, future


class TestSchedulerTimeouts:
    def test_completed_future_is_spared_from_timeout(self, store, tmp_path):
        # The job's deadline passed, but its future finished between the
        # deadline check and the kill: harvest it, don't kill the pool.
        submit(store)
        scheduler = make_timeout_scheduler(store, tmp_path)
        pool = scheduler._pool
        job, future = claim_inflight(store, scheduler,
                                     deadline=time.time() - 1.0)
        future.set_result((None, "executed", 0.01))
        assert scheduler._reap()  # harvests, no timeout declared
        assert not pool.killed
        assert scheduler.stats.timeouts == 0
        assert scheduler.stats.completed == 1
        assert store.get(job.id).state == jobstore.DONE

    def test_every_expired_job_is_reaped_in_one_pass(self, store, tmp_path):
        # Two jobs past their deadline in the same pass: both must be
        # failed, not just the last one the loop happened to remember.
        submit(store, "lbm06", "ideal", max_attempts=1)
        submit(store, "mcf06", "ideal", max_attempts=1)
        scheduler = make_timeout_scheduler(store, tmp_path)
        pool = scheduler._pool
        a, _ = claim_inflight(store, scheduler, deadline=time.time() - 1.0)
        b, _ = claim_inflight(store, scheduler, deadline=time.time() - 1.0)
        assert scheduler._reap()
        assert pool.killed
        assert scheduler.stats.timeouts == 2
        assert store.get(a.id).state == jobstore.FAILED
        assert store.get(b.id).state == jobstore.FAILED
        assert scheduler._inflight == {}

    def test_done_bystander_survives_pool_kill(self, store, tmp_path):
        # One genuinely stuck job forces a pool kill; a bystander whose
        # future already completed must be harvested afterwards, and a
        # pending bystander re-queued with its attempt refunded.
        submit(store, "lbm06", "ideal", max_attempts=1)
        submit(store, "mcf06", "ideal")
        submit(store, "xz17", "ideal")
        scheduler = make_timeout_scheduler(store, tmp_path)
        stuck, _ = claim_inflight(store, scheduler,
                                  deadline=time.time() - 1.0)
        done_by, done_future = claim_inflight(store, scheduler)
        pending_by, _ = claim_inflight(store, scheduler)
        done_future.set_result((None, "executed", 0.01))
        # _reap harvests the done bystander first (it is simply done),
        # then handles the expired job; drive _on_timeout directly to
        # model the done-after-deadline-check interleaving.
        expired = [(stuck, scheduler._inflight[stuck.id][1])]
        assert scheduler._on_timeout(expired)
        assert store.get(stuck.id).state == jobstore.FAILED
        # done bystander: still in flight, harvested on the next pass
        assert done_by.id in scheduler._inflight
        assert scheduler._reap()
        assert store.get(done_by.id).state == jobstore.DONE
        # pending bystander: requeued with the claim refunded
        back = store.get(pending_by.id)
        assert back.state == jobstore.QUEUED
        assert back.attempts == 0


# -- HTTP surface: worker protocol, auth, backpressure -------------------


def make_daemon(tmp_path, run_scheduler=False, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("drain_seconds", 30.0)
    daemon = ServiceDaemon(
        db_path=tmp_path / "service.db",
        cache_dir=tmp_path / "simcache",
        trace_dir=tmp_path / "traces",
        host="127.0.0.1",
        port=0,
        **kwargs,
    )
    daemon.start(run_scheduler=run_scheduler)
    return daemon


@pytest.fixture
def paused_daemon(tmp_path):
    """HTTP + reaper up, local scheduler off: only remote workers drain."""
    d = make_daemon(tmp_path)
    yield d
    d.stop()


def comparable(result) -> dict:
    payload = result.to_json_dict()
    payload["extras"].pop("sim_seconds", None)  # wall time is not identity
    return payload


class TestWorkerProtocolHttp:
    def test_claim_heartbeat_upload_round_trip(self, paused_daemon, tmp_path):
        client = ServiceClient(paused_daemon.url)
        job = client.submit("lbm06", "ideal", ops=200, warmup=100)
        claimed = client.claim("w1", lease_seconds=60.0)
        assert claimed["id"] == job["id"]
        assert claimed["worker_id"] == "w1"
        assert claimed["lease_until"] is not None
        assert client.claim("w1") is None  # queue drained
        renewed = client.heartbeat(job["id"], "w1", lease_seconds=120.0)
        assert renewed["lease_until"] > claimed["lease_until"]
        result = runner.simulate("lbm06", "ideal", CFG, use_cache=False)
        done = client.upload_result(job["id"], "w1", result, source="remote")
        assert done["state"] == jobstore.DONE
        assert done["source"] == "remote"
        # the daemon replicated the payload into its own cache
        assert comparable(client.result(job["id"])) == comparable(result)
        assert DiskCache(tmp_path / "simcache").get(claimed["key"]) is not None

    def test_heartbeat_conflicts_for_wrong_worker(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        job = client.submit("lbm06", "ideal", ops=200, warmup=100)
        client.claim("w1", lease_seconds=60.0)
        with pytest.raises(ServiceError) as err:
            client.heartbeat(job["id"], "imposter")
        assert err.value.status == 409

    def test_upload_after_reap_conflicts(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        job = client.submit("lbm06", "ideal", ops=200, warmup=100)
        client.claim("w1", lease_seconds=60.0)
        paused_daemon.store.reap_expired(now=time.time() + 120.0)
        result = runner.simulate("lbm06", "ideal", CFG, use_cache=False)
        with pytest.raises(ServiceError) as err:
            client.upload_result(job["id"], "w1", result)
        assert err.value.status == 409

    def test_remote_fail_applies_retry_policy(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        job = client.submit("lbm06", "ideal", ops=200, warmup=100)
        client.claim("w1", lease_seconds=60.0)
        failed = client.fail_job(job["id"], "w1", "worker exploded")
        assert failed["state"] == jobstore.QUEUED  # attempts left: retry
        assert failed["error"] == "worker exploded"
        assert paused_daemon.stats.retried == 1

    def test_claim_requires_worker_id(self, paused_daemon):
        with pytest.raises(ServiceError) as err:
            ServiceClient(paused_daemon.url)._request(
                "POST", "/jobs/claim", {"lease_seconds": 5.0}
            )
        assert err.value.status == 400

    def test_expired_lease_requeues_via_reaper_thread(self, tmp_path):
        daemon = make_daemon(tmp_path, lease_seconds=0.1, reaper_interval=0.02)
        try:
            client = ServiceClient(daemon.url)
            job = client.submit("lbm06", "ideal", ops=200, warmup=100)
            claimed = client.claim("w-dead")  # claims, then "crashes"
            assert claimed["id"] == job["id"]
            assert wait_for(
                lambda: daemon.store.get(job["id"]).state == jobstore.QUEUED,
                timeout=10,
            )
            metrics = daemon.metrics()
            assert metrics["worker.lease_expirations"] >= 1
        finally:
            daemon.stop()


class TestAuth:
    def test_mutating_requests_require_token(self, tmp_path):
        daemon = make_daemon(tmp_path, token="sekrit")
        try:
            anon = ServiceClient(daemon.url, token="")
            with pytest.raises(ServiceError) as err:
                anon.submit("lbm06", "ideal", ops=200, warmup=100)
            assert err.value.status == 401
            with pytest.raises(ServiceError) as err:
                anon.claim("w1")
            assert err.value.status == 401
            wrong = ServiceClient(daemon.url, token="not-sekrit")
            with pytest.raises(ServiceError) as err:
                wrong.submit("lbm06", "ideal", ops=200, warmup=100)
            assert err.value.status == 401
        finally:
            daemon.stop()

    def test_reads_stay_open_and_token_unlocks_writes(self, tmp_path):
        daemon = make_daemon(tmp_path, token="sekrit")
        try:
            authed = ServiceClient(daemon.url, token="sekrit")
            job = authed.submit("lbm06", "ideal", ops=200, warmup=100)
            assert job["created"]
            anon = ServiceClient(daemon.url, token="")
            assert anon.healthz()["auth"] is True
            assert len(anon.jobs()) == 1  # GETs need no secret
        finally:
            daemon.stop()

    def test_token_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TOKEN", "env-secret")
        daemon = make_daemon(tmp_path)  # picks the token up from the env
        try:
            assert daemon.token == "env-secret"
            client = ServiceClient(daemon.url)  # client does too
            assert client.submit("lbm06", "ideal", ops=200, warmup=100)
        finally:
            daemon.stop()


class TestBackpressure:
    def test_queue_full_rejects_new_submissions(self, tmp_path):
        daemon = make_daemon(tmp_path, max_queued=1)
        try:
            client = ServiceClient(daemon.url)
            first = client.submit("lbm06", "ideal", ops=200, warmup=100)
            with pytest.raises(ServiceError) as err:
                client.submit("mcf06", "ideal", ops=200, warmup=100)
            assert err.value.status == 429
            assert err.value.retry_after is not None
            # joining an existing identity is not a new row: never rejected
            joined = client.submit("lbm06", "ideal", ops=200, warmup=100)
            assert joined["id"] == first["id"]
        finally:
            daemon.stop()

    def test_rate_limit_throttles_per_client(self, tmp_path):
        daemon = make_daemon(tmp_path, rate_limit=0.001, rate_burst=2.0)
        try:
            client = ServiceClient(daemon.url)
            client.submit("lbm06", "ideal", ops=200, warmup=100)
            client.jobs()
            with pytest.raises(ServiceError) as err:
                client.jobs()
            assert err.value.status == 429
            assert err.value.retry_after > 0
            assert client.healthz()["ok"]  # health stays scrapeable
        finally:
            daemon.stop()

    def test_token_bucket_refills(self):
        limiter = TokenBucketLimiter(rate=2.0, burst=1.0)
        ok, _ = limiter.allow("c", now=0.0)
        assert ok
        ok, retry_after = limiter.allow("c", now=0.0)
        assert not ok and retry_after > 0
        ok, _ = limiter.allow("c", now=0.6)  # 0.6s * 2/s > 1 token
        assert ok
        ok, _ = limiter.allow("other", now=0.0)  # separate bucket
        assert ok


# -- RemoteWorker end-to-end ---------------------------------------------


def make_worker(daemon, tmp_path, name="w1", **kwargs):
    kwargs.setdefault("concurrency", 2)
    kwargs.setdefault("lease_seconds", 30.0)
    kwargs.setdefault("poll_interval", 0.02)
    return RemoteWorker(
        url=daemon.url,
        worker_id=name,
        cache_dir=str(tmp_path / f"{name}-cache"),
        trace_dir=str(tmp_path / "traces"),
        **kwargs,
    )


class TestRemoteWorker:
    def test_worker_drains_queue_with_identical_results(
        self, paused_daemon, tmp_path
    ):
        client = ServiceClient(paused_daemon.url)
        specs = [("lbm06", "ideal"), ("mcf06", "ideal"),
                 ("lbm06", "uncompressed")]
        jobs = [client.submit(w, d, ops=200, warmup=100) for w, d in specs]
        stats = make_worker(paused_daemon, tmp_path, max_jobs=3).run()
        assert stats.completed == 3
        assert stats.failed == 0 and stats.lease_lost == 0
        for (workload, design), job in zip(specs, jobs):
            done = client.job(job["id"])
            assert done["state"] == jobstore.DONE
            assert done["source"] in ("remote", "disk", "executed")
            direct = runner.simulate(workload, design, CFG, use_cache=False)
            assert comparable(client.result(job["id"])) == comparable(direct)
        # telemetry: the daemon tracked the worker and its completions
        metrics = paused_daemon.metrics()
        assert metrics["worker.completed.w1"] == 3
        assert paused_daemon.workers_seen.completions() == {"w1": 3}

    def test_two_workers_split_one_sweep(self, paused_daemon, tmp_path):
        client = ServiceClient(paused_daemon.url)
        specs = [(w, d) for w in ("lbm06", "mcf06", "xz17")
                 for d in ("ideal", "uncompressed")]
        jobs = [client.submit(w, d, ops=200, warmup=100) for w, d in specs]
        workers = [
            make_worker(paused_daemon, tmp_path, name=f"w{i}", max_jobs=None)
            for i in (1, 2)
        ]
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        try:
            assert wait_for(
                lambda: all(
                    paused_daemon.store.get(j["id"]).terminal for j in jobs
                ),
                timeout=120,
            )
        finally:
            for worker in workers:
                worker.request_stop()
            for thread in threads:
                thread.join(60)
        states = [paused_daemon.store.get(j["id"]).state for j in jobs]
        assert states == [jobstore.DONE] * len(jobs)
        total = sum(w.stats.completed for w in workers)
        assert total == len(jobs)

    def test_worker_reports_execution_failure(self, paused_daemon, tmp_path):
        # An unbuildable design passes submit-side validation only if
        # injected directly — the worker must fail it back upstream.
        job, _ = paused_daemon.store.submit(
            "lbm06", "warp_drive", "k-bad", config=OVERRIDES, max_attempts=1
        )
        stats = make_worker(paused_daemon, tmp_path, max_jobs=1).run()
        assert stats.failed == 1 and stats.completed == 0
        final = paused_daemon.store.get(job.id)
        assert final.state == jobstore.FAILED
        assert final.error

    def test_worker_without_token_cannot_claim(self, tmp_path):
        daemon = make_daemon(tmp_path, token="sekrit")
        try:
            ServiceClient(daemon.url, token="sekrit").submit(
                "lbm06", "ideal", ops=200, warmup=100
            )
            worker = make_worker(daemon, tmp_path, token="")
            # one claim pass: the 401 is swallowed (logged) and nothing
            # is claimed, so the job stays queued for an authed worker
            assert worker._claim_more() is False
            assert worker.stats.claimed == 0
            assert daemon.store.counts()[jobstore.QUEUED] == 1
        finally:
            daemon.stop()


# -- jobstore state machine (property test) ------------------------------


class JobStoreMachine(RuleBasedStateMachine):
    """Random claim/heartbeat/fail/finish/reap interleavings.

    Invariants after every step: at most one active job per key (the
    dedup index), queued rows carry no claim bookkeeping, running rows
    always record a claim, and terminal rows never change state again.
    """

    KEYS = ("k1", "k2", "k3")
    WORKERS = ("wa", "wb")

    def __init__(self):
        super().__init__()
        self.dir = tempfile.mkdtemp(prefix="repro-jobstore-prop-")
        self.store = JobStore(Path(self.dir) / "jobs.db")
        self.now = time.time()
        self.terminal_states = {}

    def teardown(self):
        self.store.close()
        shutil.rmtree(self.dir, ignore_errors=True)

    def _running(self):
        return self.store.list_jobs(state=jobstore.RUNNING, limit=10)

    @rule(key=st.sampled_from(KEYS), priority=st.integers(0, 5))
    def submit(self, key, priority):
        self.store.submit(
            "lbm06", "ideal", key, config={}, priority=priority, max_attempts=3
        )

    @rule(worker=st.sampled_from(WORKERS),
          lease=st.sampled_from([None, 5.0]))
    def claim(self, worker, lease):
        self.store.claim(now=self.now, worker_id=worker, lease_seconds=lease)

    @rule(worker=st.sampled_from(WORKERS))
    def heartbeat(self, worker):
        for job in self._running():
            self.store.heartbeat(job.id, worker, 5.0, now=self.now)

    @rule(worker=st.sampled_from(WORKERS), retry=st.booleans())
    def fail(self, worker, retry):
        for job in self._running():
            delay = 1.0 if (retry and job.attempts < job.max_attempts) else None
            self.store.fail(job.id, "boom", retry_delay=delay, worker_id=worker)
            break

    @rule(worker=st.sampled_from(WORKERS))
    def finish(self, worker):
        for job in self._running():
            self.store.finish(job.id, "executed", worker_id=worker)
            break

    @rule()
    def cancel(self):
        for job in self.store.list_jobs(state=jobstore.QUEUED, limit=1):
            self.store.cancel(job.id)

    @rule()
    def requeue(self):
        for job in self._running():
            self.store.requeue(job.id, refund_attempt=True)
            break

    @rule(dt=st.sampled_from([0.5, 3.0, 10.0]))
    def advance_and_reap(self, dt):
        self.now += dt
        self.store.reap_expired(now=self.now)

    @rule()
    def boot_recovery(self):
        self.store.recover_orphans(only_leaseless=True)

    @invariant()
    def store_is_consistent(self):
        jobs = self.store.list_jobs(limit=1000)
        active_keys = [j.key for j in jobs if j.state in jobstore.ACTIVE_STATES]
        assert len(active_keys) == len(set(active_keys)), (
            "dedup violated: two active jobs share a key"
        )
        for job in jobs:
            assert job.state in jobstore.STATES
            if job.state == jobstore.QUEUED:
                assert job.worker_id is None
                assert job.lease_until is None
                assert job.started_at is None
            if job.state == jobstore.RUNNING:
                assert job.attempts >= 1
                assert job.started_at is not None
                assert job.worker_id is not None
            if job.terminal:
                previous = self.terminal_states.setdefault(job.id, job.state)
                assert previous == job.state, (
                    f"terminal job {job.id} moved {previous} -> {job.state}"
                )
                assert job.finished_at is not None


JobStoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestJobStoreStateMachine = JobStoreMachine.TestCase
