"""Equivalence of the optimized FPC encoder against a reference encoder.

``FPC.compress`` accumulates the bit stream in a single integer for
speed; this reference implementation uses the generic BitWriter exactly
as the format is specified.  Both must produce identical payloads for
all inputs.
"""

from typing import Optional

from hypothesis import given

from repro.compression.base import LINE_SIZE
from repro.compression.fpc import FPC, _fits_signed
from repro.util.bits import BitWriter
from tests.lineutils import any_lines

fpc = FPC()


def reference_compress(line: bytes) -> Optional[bytes]:
    """Straightforward FPC encoder (the original specification)."""
    words = [int.from_bytes(line[i : i + 4], "little") for i in range(0, LINE_SIZE, 4)]
    writer = BitWriter()
    i = 0
    while i < len(words):
        word = words[i]
        if word == 0:
            run = 1
            while i + run < len(words) and words[i + run] == 0 and run < 8:
                run += 1
            writer.write(0b000, 3)
            writer.write(run - 1, 3)
            i += run
            continue
        i += 1
        if _fits_signed(word, 4):
            writer.write(0b001, 3)
            writer.write(word & 0xF, 4)
        elif _fits_signed(word, 8):
            writer.write(0b010, 3)
            writer.write(word & 0xFF, 8)
        elif _fits_signed(word, 16):
            writer.write(0b011, 3)
            writer.write(word & 0xFFFF, 16)
        elif word & 0xFFFF == 0:
            writer.write(0b100, 3)
            writer.write(word >> 16, 16)
        elif FPC._is_two_half_bytes(word):
            writer.write(0b101, 3)
            writer.write((word >> 16) & 0xFF, 8)
            writer.write(word & 0xFF, 8)
        elif FPC._is_repeated_bytes(word):
            writer.write(0b110, 3)
            writer.write(word & 0xFF, 8)
        else:
            writer.write(0b111, 3)
            writer.write(word, 32)
    if writer.byte_length >= LINE_SIZE:
        return None
    return writer.to_bytes()


@given(any_lines)
def test_fast_encoder_matches_reference(line):
    assert fpc.compress(line) == reference_compress(line)


def test_known_patterns_match():
    import struct

    samples = [
        b"\x00" * 64,
        struct.pack("<16i", *range(16)),
        struct.pack("<16I", *([0xDEAD0000] * 16)),
        struct.pack("<16I", *([0x5A5A5A5A] * 16)),
        struct.pack("<16i", *([30000, -5, 0, 0x7FFFFFFF - 2**31] * 4)),
    ]
    for line in samples:
        assert fpc.compress(line) == reference_compress(line)
