"""Prometheus text exposition: promtool-style line-grammar checks.

Every emitted line must match the exposition-format 0.0.4 grammar
(the same checks ``promtool check metrics`` applies): HELP/TYPE
comments, ``name{labels} value`` samples, ``_total`` on counters,
monotone cumulative histogram buckets ending in ``+Inf``.
"""

import re

import pytest

from repro.obs.prometheus import CONTENT_TYPE, metric_name, prometheus_exposition
from repro.telemetry import StatRegistry

#: metric line: name, optional {labels}, a value
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(-?[0-9.]+(e[+-]?[0-9]+)?|\+Inf|-Inf|NaN)$"
)
COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def build_registry() -> StatRegistry:
    registry = StatRegistry()
    scope = registry.scope("service")
    counts = {"jobs": 7}
    scope.counter("jobs_done", lambda: counts["jobs"], doc="completed jobs")
    scope.gauge("queue_depth", lambda: 3, doc="jobs waiting")
    histogram = scope.histogram(
        "job_seconds", buckets=(0.1, 1.0, 10.0), doc="job latency"
    )
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    hits = scope.counter("hits", lambda: 9)
    scope.ratio("hit_rate", hits, [hits], doc="hit fraction")
    return registry


def test_every_line_matches_the_exposition_grammar():
    text = prometheus_exposition(build_registry())
    assert text.endswith("\n")
    for line in text.strip().splitlines():
        assert COMMENT_RE.match(line) or SAMPLE_RE.match(line), line


def test_metric_name_mapping():
    assert metric_name("service.queue_depth") == "repro_service_queue_depth"
    assert metric_name("a.b.c", prefix="x") == "x_a_b_c"


def test_counter_gets_total_suffix_and_raw_value():
    text = prometheus_exposition(build_registry())
    assert "repro_service_jobs_done_total 7" in text
    assert "# TYPE repro_service_jobs_done_total counter" in text


def test_gauge_and_ratio_expose_as_gauge():
    text = prometheus_exposition(build_registry())
    assert "# TYPE repro_service_queue_depth gauge" in text
    assert "repro_service_queue_depth 3" in text
    assert "# TYPE repro_service_hit_rate gauge" in text
    assert "repro_service_hit_rate 1.0" in text


def test_histogram_buckets_are_cumulative_and_inf_equals_count():
    text = prometheus_exposition(build_registry())
    buckets = re.findall(
        r'repro_service_job_seconds_bucket\{le="([^"]+)"\} (\d+)', text
    )
    assert [b[0] for b in buckets] == ["0.1", "1", "10", "+Inf"]
    counts = [int(b[1]) for b in buckets]
    assert counts == sorted(counts), "cumulative buckets must be monotone"
    assert counts == [1, 3, 4, 5]
    assert "repro_service_job_seconds_count 5" in text
    assert "repro_service_job_seconds_sum 56.05" in text


def test_help_text_is_escaped():
    registry = StatRegistry()
    registry.scope("svc").counter("c", lambda: 1, doc="line\nbreak \\ slash")
    text = prometheus_exposition(registry)
    assert "# HELP repro_svc_c_total line\\nbreak \\\\ slash" in text
    assert "\nbreak" not in text.replace("\\nbreak", "")


def test_content_type_is_prometheus_text_004():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_histogram_normalizes_bounds_and_rejects_degenerate_ones():
    registry = StatRegistry()
    scope = registry.scope("svc")
    assert scope.histogram("h", buckets=(1.0, 0.5)).bounds == (0.5, 1.0)
    with pytest.raises(ValueError):
        scope.histogram("dup", buckets=(0.5, 0.5))
    with pytest.raises(ValueError):
        scope.histogram("empty", buckets=())
