"""Tests for Frequent Value Compression."""

import struct

import pytest
from hypothesis import given

from repro.compression.base import CompressionError
from repro.compression.fvc import FVC, train_dictionary
from tests.lineutils import any_lines, zero_line

fvc = FVC()


class TestDefaultDictionary:
    def test_zero_line_compresses_hard(self):
        payload = fvc.compress(zero_line())
        assert payload is not None
        assert len(payload) <= 10  # 16 x 5 bits = 80 bits
        assert fvc.decompress(payload) == zero_line()

    def test_frequent_values_hit(self):
        line = struct.pack("<16I", *([0xFFFFFFFF, 1, 0, 0x80000000] * 4))
        payload = fvc.compress(line)
        assert payload is not None
        assert len(payload) <= 10
        assert fvc.decompress(payload) == line

    def test_infrequent_values_literal(self):
        line = struct.pack("<16I", *[0xDEAD0000 + i * 7919 for i in range(16)])
        payload = fvc.compress(line)
        # all literals: 16 x 33 bits = 66 bytes > 64 => incompressible
        assert payload is None

    def test_mixed_line_roundtrip(self):
        line = struct.pack("<16I", *([0, 0xCAFEBABE] * 8))
        payload = fvc.compress(line)
        assert payload is not None
        assert fvc.decompress(payload) == line


class TestTraining:
    def test_trained_dictionary_covers_sample(self):
        lines = [struct.pack("<16I", *([0x12345678] * 16))] * 4
        dictionary = train_dictionary(lines, size=4)
        assert dictionary[0] == 0x12345678

    def test_trained_fvc_beats_default_on_its_data(self):
        word = 0x0BADF00D
        line = struct.pack("<16I", *([word] * 16))
        trained = FVC(train_dictionary([line]))
        default = FVC()
        assert trained.compressed_size(line) < default.compressed_size(line)

    def test_training_validates_line_size(self):
        with pytest.raises(ValueError):
            train_dictionary([b"short"])


class TestValidation:
    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            FVC([])

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            FVC([1, 1])

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            FVC([2**32])

    def test_oversized_dictionary_rejected(self):
        with pytest.raises(ValueError):
            FVC(list(range(257)))

    def test_truncated_payload(self):
        payload = fvc.compress(zero_line())
        with pytest.raises(CompressionError):
            fvc.decompress(payload[:1])

    def test_index_width_scales_with_dictionary(self):
        small = FVC([0])
        line = zero_line()
        # 1 entry => 1-bit indices: 16 x 2 bits = 4 bytes
        assert len(small.compress(line)) == 4


class TestHybridIntegration:
    def test_fvc_in_hybrid(self):
        from repro.compression import HybridCompressor

        hybrid = HybridCompressor([FVC(), *HybridCompressor().algorithms])
        line = struct.pack("<16I", *([0xFFFFFFFF] * 16))
        payload = hybrid.compress(line)
        assert payload is not None
        assert hybrid.decompress(payload) == line


@given(any_lines)
def test_fvc_roundtrip_property(line):
    payload = fvc.compress(line)
    if payload is not None:
        assert len(payload) < 64
        assert fvc.decompress(payload) == line
