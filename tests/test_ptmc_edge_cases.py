"""Additional PTMC edge-case tests: second pair, transitions, reads of
stale slots, and bandwidth-accounting invariants."""

import pytest

from repro.core.base_controller import NullLLCView
from repro.core.markers import SlotKind
from repro.types import Level
from tests.controller_harness import FakeLLC, category_counts, evicted, make_ptmc
from tests.lineutils import pointer_line, quad_friendly_line

NULL = NullLLCView()


@pytest.fixture
def ptmc():
    return make_ptmc()


class TestSecondPair:
    """The (G+2, G+3) pair compacts at G+2, independent of (G, G+1)."""

    def test_second_pair_compacts_at_its_own_slot(self, ptmc):
        lines = [pointer_line(base=0x7F0033000000), pointer_line(base=0x7F0044000000)]
        llc = FakeLLC()
        llc.add(11, lines[1], dirty=True)
        result = ptmc.handle_eviction(evicted(10, lines[0]), 0, 0, llc)
        assert result.level is Level.PAIR
        assert ptmc.markers.classify(10, ptmc.memory.read(10)).kind is SlotKind.PAIR
        # first pair's slots untouched
        assert ptmc.markers.classify(8, ptmc.memory.read(8)).kind is SlotKind.UNCOMPRESSED

    def test_both_pairs_coexist(self, ptmc):
        first = [pointer_line(base=0x7F0011000000), pointer_line(base=0x7F0022000000)]
        second = [pointer_line(base=0x7F0033000000), pointer_line(base=0x7F0044000000)]
        llc = FakeLLC()
        llc.add(9, first[1], dirty=True)
        ptmc.handle_eviction(evicted(8, first[0]), 0, 0, llc)
        llc2 = FakeLLC()
        llc2.add(11, second[1], dirty=True)
        ptmc.handle_eviction(evicted(10, second[0]), 0, 0, llc2)
        for addr, data in [(8, first[0]), (9, first[1]), (10, second[0]), (11, second[1])]:
            assert ptmc.read_line(addr, 0, 0, NULL).data == data

    def test_read_g3_with_three_candidates(self, ptmc):
        """G+3 has candidates at G (quad), G+2 (pair) and home."""
        second = [pointer_line(base=0x7F0033000000), pointer_line(base=0x7F0044000000)]
        llc = FakeLLC()
        llc.add(11, second[1], dirty=True)
        ptmc.handle_eviction(evicted(10, second[0]), 0, 0, llc)
        result = ptmc.read_line(11, 0, 0, NULL)
        assert result.data == second[1]
        assert result.level is Level.PAIR
        assert result.accesses <= 3


class TestTransitions:
    def test_pair_then_quad(self, ptmc):
        """Two pairs upgrade to a quad once all four lines co-evict."""
        lines = [quad_friendly_line(i) for i in range(4)]
        llc = FakeLLC()
        llc.add(9, lines[1], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        # now evict the second pair with the first pair re-resident
        llc2 = FakeLLC()
        llc2.add(8, lines[0], dirty=False, fill_level=Level.PAIR)
        llc2.add(9, lines[1], dirty=False, fill_level=Level.PAIR)
        llc2.add(11, lines[3], dirty=True)
        result = ptmc.handle_eviction(evicted(10, lines[2]), 0, 0, llc2)
        assert result.level is Level.QUAD
        read = ptmc.read_line(8, 0, 0, NULL)
        assert read.level is Level.QUAD
        assert set(read.extra_lines) == {9, 10, 11}

    def test_quad_downgrade_to_uncompressed(self, ptmc):
        import random

        from tests.lineutils import random_line

        lines = [quad_friendly_line(i) for i in range(4)]
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        # all four come back dirty and incompressible
        rng = random.Random(4)
        new = [random_line(rng) for _ in range(4)]
        llc2 = FakeLLC()
        for i in range(1, 4):
            llc2.add(8 + i, new[i], dirty=True, fill_level=Level.QUAD)
        ptmc.handle_eviction(
            evicted(8, new[0], dirty=True, fill_level=Level.QUAD), 0, 0, llc2
        )
        for i in range(4):
            result = ptmc.read_line(8 + i, 0, 0, NULL)
            assert result.data == new[i]
            assert result.level is Level.UNCOMPRESSED


class TestStaleSlots:
    def test_stale_home_not_misread(self, ptmc):
        """After compaction, the odd line's home holds Marker-IL, so a
        (mis)predicted read of the home cannot return stale data."""
        lines = [pointer_line(base=0x7F0055000000), pointer_line(base=0x7F0066000000)]
        # first, line 9 lives at home
        ptmc.handle_eviction(evicted(9, lines[1]), 0, 0, NULL)
        # then the pair compacts at slot 8
        llc = FakeLLC()
        llc.add(9, lines[1], dirty=False)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        assert ptmc.markers.classify(9, ptmc.memory.read(9)).kind is SlotKind.INVALID
        assert ptmc.read_line(9, 0, 0, NULL).data == lines[1]

    def test_invalidate_not_repeated(self, ptmc):
        """Re-compacting the same pair must not re-invalidate slot 9."""
        lines = [pointer_line(base=0x7F0055000000), pointer_line(base=0x7F0066000000)]
        llc = FakeLLC()
        llc.add(9, lines[1], dirty=False)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        first_invalidates = ptmc.invalidate_writes
        updated = pointer_line(base=0x7F0077000000)
        llc2 = FakeLLC()
        llc2.add(9, lines[1], dirty=False, fill_level=Level.PAIR)
        ptmc.handle_eviction(
            evicted(8, updated, dirty=True, fill_level=Level.PAIR), 0, 0, llc2
        )
        assert ptmc.invalidate_writes == first_invalidates


class TestBandwidthAccounting:
    def test_first_access_never_counted_as_mispredict(self, ptmc):
        ptmc.read_line(8, 0, 0, NULL)
        ptmc.read_line(9, 0, 0, NULL)
        cats = category_counts(ptmc)
        assert cats.get("mispredict_read", 0) == 0

    def test_dirty_group_write_is_data_write(self, ptmc):
        lines = [quad_friendly_line(i) for i in range(4)]
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=False)
        ptmc.handle_eviction(evicted(8, lines[0], dirty=True), 0, 0, llc)
        cats = category_counts(ptmc)
        # one dirty member makes the combined write a demand write, not a
        # compression overhead
        assert cats.get("data_write", 0) == 1
        assert cats.get("clean_writeback", 0) == 0

    def test_reads_by_level_statistics(self, ptmc):
        lines = [quad_friendly_line(i) for i in range(4)]
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        ptmc.read_line(8, 0, 0, NULL)
        ptmc.read_line(20, 0, 0, NULL)
        assert ptmc.reads_by_level[Level.QUAD] == 1
        assert ptmc.reads_by_level[Level.UNCOMPRESSED] == 1
