"""Tests for inline-metadata markers, classification and inversion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.markers import MarkerScheme, SlotKind, invert
from repro.types import Level
from tests.lineutils import zero_line


@pytest.fixture
def scheme():
    return MarkerScheme(key=1234)


class TestInvert:
    def test_involution(self):
        data = bytes(range(64))
        assert invert(invert(data)) == data

    def test_complement(self):
        assert invert(b"\x00\xff") == b"\xff\x00"


class TestMarkerGeneration:
    def test_marker_size(self, scheme):
        assert len(scheme.marker(0, Level.PAIR)) == 4
        assert len(scheme.marker(0, Level.QUAD)) == 4

    def test_invalid_marker_is_full_line(self, scheme):
        assert len(scheme.invalid_marker(7)) == 64

    def test_markers_differ_per_level(self, scheme):
        assert scheme.marker(4, Level.PAIR) != scheme.marker(4, Level.QUAD)

    def test_markers_differ_per_location(self, scheme):
        assert scheme.marker(0, Level.PAIR) != scheme.marker(4, Level.PAIR)

    def test_no_marker_for_uncompressed(self, scheme):
        with pytest.raises(ValueError):
            scheme.marker(0, Level.UNCOMPRESSED)

    def test_markers_deterministic(self):
        a = MarkerScheme(key=9).marker(12, Level.QUAD)
        b = MarkerScheme(key=9).marker(12, Level.QUAD)
        assert a == b

    def test_key_changes_markers(self):
        a = MarkerScheme(key=1).marker(12, Level.QUAD)
        b = MarkerScheme(key=2).marker(12, Level.QUAD)
        assert a != b

    def test_marker_set_pairwise_distinct(self, scheme):
        for loc in range(0, 64, 4):
            pair = scheme.marker(loc, Level.PAIR)
            quad = scheme.marker(loc, Level.QUAD)
            il_tail = scheme.invalid_marker(loc)[-4:]
            values = {pair, quad, il_tail, invert(pair), invert(quad), invert(il_tail)}
            assert len(values) == 6

    def test_bad_marker_size_rejected(self):
        with pytest.raises(ValueError):
            MarkerScheme(marker_size=0)
        with pytest.raises(ValueError):
            MarkerScheme(marker_size=9)


class TestClassification:
    def test_plain_data_is_uncompressed(self, scheme):
        assert scheme.classify(0, zero_line()).kind is SlotKind.UNCOMPRESSED

    def test_quad_marker_detected(self, scheme):
        slot = b"\x00" * 60 + scheme.marker(8, Level.QUAD)
        cls = scheme.classify(8, slot)
        assert cls.kind is SlotKind.QUAD
        assert cls.level is Level.QUAD

    def test_pair_marker_detected(self, scheme):
        slot = b"\x00" * 60 + scheme.marker(8, Level.PAIR)
        cls = scheme.classify(8, slot)
        assert cls.kind is SlotKind.PAIR
        assert cls.level is Level.PAIR

    def test_invalid_marker_detected(self, scheme):
        assert scheme.classify(8, scheme.invalid_marker(8)).kind is SlotKind.INVALID

    def test_inverted_tail_flags_maybe_inverted(self, scheme):
        slot = b"\x00" * 60 + invert(scheme.marker(8, Level.QUAD))
        assert scheme.classify(8, slot).kind is SlotKind.MAYBE_INVERTED

    def test_inverted_invalid_flags_maybe_inverted(self, scheme):
        slot = invert(scheme.invalid_marker(8))
        assert scheme.classify(8, slot).kind is SlotKind.MAYBE_INVERTED

    def test_marker_from_other_location_not_detected(self, scheme):
        # marker for slot 12 must not classify as compressed at slot 8
        slot = b"\x00" * 60 + scheme.marker(12, Level.QUAD)
        assert scheme.classify(8, slot).kind is SlotKind.UNCOMPRESSED

    def test_wrong_slot_size_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.classify(0, b"\x00" * 63)


class TestCollision:
    def test_colliding_line_detected(self, scheme):
        line = b"\x11" * 60 + scheme.marker(4, Level.PAIR)
        assert scheme.collides(4, line)

    def test_invalid_marker_collision_detected(self, scheme):
        assert scheme.collides(4, scheme.invalid_marker(4))

    def test_benign_line_does_not_collide(self, scheme):
        assert not scheme.collides(4, bytes(range(64)))

    def test_inverted_line_resolves_cleanly(self, scheme):
        # a colliding line stored inverted must classify as MAYBE_INVERTED
        line = b"\x22" * 60 + scheme.marker(4, Level.QUAD)
        stored = invert(line)
        assert scheme.classify(4, stored).kind is SlotKind.MAYBE_INVERTED


class TestRekey:
    def test_rekey_changes_markers(self, scheme):
        before = scheme.marker(8, Level.QUAD)
        scheme.rekey()
        assert scheme.generation == 1
        assert scheme.marker(8, Level.QUAD) != before

    def test_rekey_deterministic_sequence(self):
        a = MarkerScheme(key=5)
        b = MarkerScheme(key=5)
        a.rekey()
        b.rekey()
        assert a.marker(0, Level.PAIR) == b.marker(0, Level.PAIR)


class TestStorage:
    def test_storage_matches_table3(self, scheme):
        # 2 markers x 4B + 64B invalid marker = 72 bytes
        assert scheme.storage_bits() == (4 + 4 + 64) * 8


@given(st.integers(min_value=0, max_value=2**28 - 1))
def test_classification_of_own_markers(loc):
    scheme = MarkerScheme(key=77)
    quad_slot = b"\x00" * 60 + scheme.marker(loc, Level.QUAD)
    pair_slot = b"\x00" * 60 + scheme.marker(loc, Level.PAIR)
    assert scheme.classify(loc, quad_slot).level is Level.QUAD
    assert scheme.classify(loc, pair_slot).level is Level.PAIR
    assert scheme.classify(loc, scheme.invalid_marker(loc)).kind is SlotKind.INVALID
