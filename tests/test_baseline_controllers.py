"""Unit tests for the baseline controllers (uncompressed, table-TMC, ideal, prefetch)."""


from repro.core.ideal import IdealTMCController
from repro.core.metadata_table import MetadataTableConfig, MetadataTableController
from repro.core.prefetch import NextLinePrefetchController
from repro.core.uncompressed import UncompressedController
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.types import Level
from tests.controller_harness import FakeLLC, category_counts, evicted
from tests.lineutils import quad_friendly_line, random_line, zero_line


def build(cls, **kwargs):
    memory = PhysicalMemory(1 << 16)
    dram = DRAMSystem()
    return cls(memory, dram, **kwargs)


class TestUncompressed:
    def test_read(self):
        ctrl = build(UncompressedController)
        ctrl.memory.write(5, bytes(range(64)))
        result = ctrl.read_line(5, 0, 0, FakeLLC())
        assert result.data == bytes(range(64))
        assert result.accesses == 1

    def test_dirty_write(self):
        ctrl = build(UncompressedController)
        ctrl.handle_eviction(evicted(5, b"\x01" * 64), 0, 0, FakeLLC())
        assert ctrl.memory.read(5) == b"\x01" * 64
        assert category_counts(ctrl)["data_write"] == 1

    def test_clean_eviction_free(self):
        ctrl = build(UncompressedController)
        ctrl.handle_eviction(evicted(5, b"\x01" * 64, dirty=False), 0, 0, FakeLLC())
        assert ctrl.dram.stats.total_accesses == 0


class TestMetadataTable:
    def _compact_quad(self, ctrl):
        lines = [quad_friendly_line(i) for i in range(4)]
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        ctrl.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        return lines

    def test_read_consults_metadata(self):
        ctrl = build(MetadataTableController)
        ctrl.read_line(5, 0, 0, FakeLLC())
        cats = category_counts(ctrl)
        assert cats["metadata_read"] == 1
        assert cats["data_read"] == 1

    def test_metadata_cache_hit_avoids_traffic(self):
        ctrl = build(MetadataTableController)
        ctrl.read_line(5, 0, 0, FakeLLC())
        ctrl.read_line(6, 0, 0, FakeLLC())  # same metadata line
        assert category_counts(ctrl)["metadata_read"] == 1
        assert ctrl.metadata_hit_rate == 0.5

    def test_compaction_updates_csi_for_all_members(self):
        ctrl = build(MetadataTableController)
        self._compact_quad(ctrl)
        for i in range(4):
            assert ctrl._csi_level(8 + i) is Level.QUAD

    def test_compressed_read_returns_group(self):
        ctrl = build(MetadataTableController)
        lines = self._compact_quad(ctrl)
        result = ctrl.read_line(10, 0, 0, FakeLLC())
        assert result.data == lines[2]
        assert result.level is Level.QUAD
        assert set(result.extra_lines) == {8, 9, 11}

    def test_all_lines_readable_after_compaction(self):
        ctrl = build(MetadataTableController)
        lines = self._compact_quad(ctrl)
        for i, line in enumerate(lines):
            assert ctrl.read_line(8 + i, 0, 0, FakeLLC()).data == line

    def test_no_invalidates_ever(self):
        ctrl = build(MetadataTableController)
        self._compact_quad(ctrl)
        assert "invalidate_write" not in category_counts(ctrl)

    def test_dirty_metadata_evicted_to_memory(self):
        config = MetadataTableConfig(cache_bytes=2 * 64, cache_ways=1)
        ctrl = build(MetadataTableController, config=config)
        # dirty one metadata line, then thrash the tiny cache
        self._compact_quad(ctrl)
        for i in range(16):
            ctrl.read_line(i * 1024, 0, 0, FakeLLC())
        assert category_counts(ctrl).get("metadata_write", 0) >= 1

    def test_storage_is_metadata_cache(self):
        ctrl = build(MetadataTableController)
        assert ctrl.storage_bits()["metadata_cache"] == 32 * 1024 * 8


class TestIdeal:
    def test_cofetch_when_group_compressible(self):
        ctrl = build(IdealTMCController)
        memory = ctrl.memory
        for i in range(4):
            memory.write(8 + i, quad_friendly_line(i))
        result = ctrl.read_line(9, 0, 0, FakeLLC())
        assert result.level is Level.QUAD
        assert set(result.extra_lines) == {8, 10, 11}
        assert result.accesses == 1

    def test_no_cofetch_for_random_data(self):
        import random

        ctrl = build(IdealTMCController)
        rng = random.Random(9)
        for i in range(4):
            ctrl.memory.write(8 + i, random_line(rng))
        result = ctrl.read_line(9, 0, 0, FakeLLC())
        assert result.level is Level.UNCOMPRESSED
        assert not result.extra_lines

    def test_pair_cofetch(self):
        import random

        from tests.lineutils import pointer_line

        ctrl = build(IdealTMCController)
        rng = random.Random(9)
        ctrl.memory.write(8, pointer_line(base=0x7F0011000000))
        ctrl.memory.write(9, pointer_line(base=0x7F0022000000))
        ctrl.memory.write(10, random_line(rng))
        ctrl.memory.write(11, random_line(rng))
        result = ctrl.read_line(8, 0, 0, FakeLLC())
        assert result.level is Level.PAIR
        assert set(result.extra_lines) == {9}

    def test_combined_write_credit(self):
        ctrl = build(IdealTMCController)
        for i in range(4):
            ctrl.memory.write(8 + i, quad_friendly_line(i))
        # four dirty evictions of a quad-compressible group: 1 DRAM write
        for i in range(4):
            ctrl.handle_eviction(evicted(8 + i, quad_friendly_line(i)), 0, 0, FakeLLC())
        assert category_counts(ctrl)["data_write"] == 1

    def test_incompressible_writes_not_combined(self):
        import random

        ctrl = build(IdealTMCController)
        rng = random.Random(5)
        for i in range(4):
            ctrl.handle_eviction(evicted(8 + i, random_line(rng)), 0, 0, FakeLLC())
        assert category_counts(ctrl)["data_write"] == 4

    def test_clean_eviction_free(self):
        ctrl = build(IdealTMCController)
        ctrl.handle_eviction(evicted(5, zero_line(), dirty=False), 0, 0, FakeLLC())
        assert ctrl.dram.stats.total_accesses == 0


class TestPrefetch:
    def test_next_line_prefetched(self):
        ctrl = build(NextLinePrefetchController)
        result = ctrl.read_line(5, 0, 0, FakeLLC())
        assert set(result.extra_lines) == {6}
        cats = category_counts(ctrl)
        assert cats["prefetch_read"] == 1
        assert ctrl.prefetches_issued == 1

    def test_resident_filter_suppresses_prefetch(self):
        ctrl = build(NextLinePrefetchController)
        ctrl.resident_filter = lambda addr: True
        result = ctrl.read_line(5, 0, 0, FakeLLC())
        assert not result.extra_lines
        assert ctrl.prefetches_issued == 0

    def test_prefetch_at_memory_end_skipped(self):
        ctrl = build(NextLinePrefetchController)
        last = ctrl.memory.capacity_lines - 1
        result = ctrl.read_line(last, 0, 0, FakeLLC())
        assert not result.extra_lines

    def test_prefetch_costs_bandwidth(self):
        """The key contrast with PTMC: the extra line is NOT free."""
        ctrl = build(NextLinePrefetchController)
        ctrl.read_line(5, 0, 0, FakeLLC())
        assert ctrl.dram.stats.total_accesses == 2


class TestPrefetchPageBoundary:
    def test_prefetch_stops_at_page_boundary(self):
        ctrl = build(NextLinePrefetchController)
        # line 63 is the last line of its 4KB page: no prefetch of line 64,
        # which belongs to an unrelated physical frame
        result = ctrl.read_line(63, 0, 0, FakeLLC())
        assert not result.extra_lines
        assert ctrl.prefetches_issued == 0

    def test_prefetch_within_page(self):
        ctrl = build(NextLinePrefetchController)
        result = ctrl.read_line(62, 0, 0, FakeLLC())
        assert set(result.extra_lines) == {63}
