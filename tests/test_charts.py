"""Tests for the terminal chart helpers."""

from repro.analysis.charts import hbar_chart, sorted_curve, stacked_chart


class TestHBar:
    def test_empty(self):
        assert hbar_chart({}) == "(no data)"

    def test_bars_scale_with_values(self):
        text = hbar_chart({"big": 4.0, "small": 1.0}, width=20)
        big, small = text.splitlines()
        assert big.count("█") > small.count("█")

    def test_values_printed(self):
        text = hbar_chart({"a": 1.234}, width=10)
        assert "1.234" in text

    def test_reference_marker(self):
        text = hbar_chart({"a": 0.5, "b": 2.0}, width=20, reference=1.0)
        assert "|" in text.splitlines()[0]  # short bar shows the reference

    def test_zero_values(self):
        text = hbar_chart({"a": 0.0})
        assert "0.000" in text


class TestStacked:
    def test_empty(self):
        assert stacked_chart({}) == "(no data)"

    def test_segments_and_legend(self):
        stacks = {"w": {"data": 0.5, "metadata": 0.3}}
        text = stacked_chart(stacks, width=20)
        assert "legend" in text
        assert "data" in text and "metadata" in text
        assert "0.800" in text

    def test_total_column(self):
        stacks = {"w": {"a": 0.25, "b": 0.25}}
        assert "0.500" in stacked_chart(stacks, width=10)

    def test_distinct_glyphs(self):
        stacks = {"w": {"a": 0.4, "b": 0.4}}
        row = stacked_chart(stacks, width=20).splitlines()[0]
        glyphs = {ch for ch in row if ch in "█▓▒░◆●"}
        assert len(glyphs) == 2


class TestSortedCurve:
    def test_quantiles_monotone(self):
        values = {f"w{i}": 0.9 + i * 0.01 for i in range(30)}
        text = sorted_curve(values, bins=5)
        numbers = [float(line.split()[-1]) for line in text.splitlines()]
        assert numbers == sorted(numbers)

    def test_empty(self):
        assert sorted_curve({}) == "(no data)"
