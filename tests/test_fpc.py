"""Tests for Frequent Pattern Compression."""

import random
import struct

import pytest
from hypothesis import given

from repro.compression.base import CompressionError
from repro.compression.fpc import FPC
from tests.lineutils import (
    any_lines,
    random_line,
    small_int_line,
    zero_line,
)

fpc = FPC()


class TestFPCPatterns:
    def test_zero_line_compresses_tiny(self):
        payload = fpc.compress(zero_line())
        assert payload is not None
        assert len(payload) <= 2  # two zero-run tokens of 6 bits each

    def test_zero_line_roundtrip(self):
        assert fpc.decompress(fpc.compress(zero_line())) == zero_line()

    def test_small_ints_compress(self):
        line = small_int_line(start=-8, step=1)
        payload = fpc.compress(line)
        assert payload is not None
        assert len(payload) < 32
        assert fpc.decompress(payload) == line

    def test_4bit_pattern(self):
        line = struct.pack("<16i", *([7, -8] * 8))
        payload = fpc.compress(line)
        assert len(payload) <= (16 * 7 + 7) // 8
        assert fpc.decompress(payload) == line

    def test_8bit_pattern(self):
        line = struct.pack("<16i", *([100, -100] * 8))
        assert fpc.decompress(fpc.compress(line)) == line

    def test_16bit_pattern(self):
        line = struct.pack("<16i", *([30000, -30000] * 8))
        assert fpc.decompress(fpc.compress(line)) == line

    def test_half_padded_pattern(self):
        line = struct.pack("<16I", *([0xABCD0000] * 16))
        payload = fpc.compress(line)
        assert payload is not None
        assert fpc.decompress(payload) == line

    def test_two_half_bytes_pattern(self):
        # each halfword is a sign-extended byte: 0x00120034
        line = struct.pack("<16I", *([0x00120034] * 16))
        payload = fpc.compress(line)
        assert payload is not None
        assert fpc.decompress(payload) == line

    def test_repeated_bytes_pattern(self):
        line = struct.pack("<16I", *([0x5A5A5A5A] * 16))
        payload = fpc.compress(line)
        assert len(payload) <= (16 * 11 + 7) // 8
        assert fpc.decompress(payload) == line

    def test_incompressible_line_returns_none(self):
        rng = random.Random(7)
        line = random_line(rng)
        # Random data costs 35 bits/word => 70 bytes > 64, so None.
        assert fpc.compress(line) is None

    def test_mixed_compressible_and_literal_words(self):
        rng = random.Random(3)
        words = [0, 1, rng.getrandbits(32) | 0x01000000, 0xFFFFFFFF] * 4
        line = struct.pack("<16I", *words)
        payload = fpc.compress(line)
        if payload is not None:
            assert fpc.decompress(payload) == line

    def test_zero_run_capped_at_8(self):
        # 15 zeros + one literal — needs two run tokens.
        words = [0] * 15 + [0x12345678]
        line = struct.pack("<16I", *words)
        assert fpc.decompress(fpc.compress(line)) == line


class TestFPCErrors:
    def test_wrong_line_size_rejected(self):
        with pytest.raises(ValueError):
            fpc.compress(b"\x00" * 63)

    def test_truncated_payload_raises(self):
        payload = fpc.compress(small_int_line())
        with pytest.raises(CompressionError):
            fpc.decompress(payload[:1])

    def test_empty_payload_raises(self):
        with pytest.raises(CompressionError):
            fpc.decompress(b"")


@given(any_lines)
def test_fpc_roundtrip_property(line):
    """Whenever FPC claims compressibility, decompression is exact."""
    payload = fpc.compress(line)
    if payload is not None:
        assert len(payload) < 64
        assert fpc.decompress(payload) == line
