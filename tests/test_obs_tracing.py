"""Span tracer: event shapes, the no-op path, validation, and export."""

import json
import threading

import pytest

from repro.obs.tracing import (
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    span,
    validate_chrome_trace,
)


@pytest.fixture(autouse=True)
def no_global_tracer():
    set_tracer(None)
    yield
    set_tracer(None)


def test_span_records_complete_event_with_ids():
    tracer = Tracer()
    with tracer.span("work", category="test", detail=7) as handle:
        assert isinstance(handle, Span)
        assert handle.trace_id == tracer.trace_id
        assert handle.span_id == 1
    payload = tracer.to_chrome()
    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(events) == 1
    event = events[0]
    assert event["name"] == "work"
    assert event["cat"] == "test"
    assert event["dur"] >= 0
    assert event["args"]["detail"] == 7
    assert event["args"]["span_id"] == 1
    assert event["args"]["trace_id"] == tracer.trace_id


def test_module_span_is_noop_without_tracer():
    assert current_tracer() is None
    with span("anything") as handle:
        assert handle.span_id == 0  # the shared null span


def test_module_span_uses_installed_tracer():
    tracer = set_tracer(Tracer())
    with span("traced"):
        pass
    assert len(tracer) == 1


def test_instant_counter_and_async_events():
    tracer = Tracer()
    tracer.instant("marker", category="test", note="hi")
    tracer.counter("rates", {"reads": 10, "writes": 2})
    tracer.async_begin("job", "j-1", category="svc")
    tracer.async_end("job", "j-1", category="svc", outcome="done")
    payload = tracer.to_chrome()
    phases = [e["ph"] for e in payload["traceEvents"] if e["ph"] != "M"]
    assert phases == ["i", "C", "b", "e"]
    assert validate_chrome_trace(payload) == len(payload["traceEvents"])


def test_to_chrome_envelope_has_metadata_and_trace_id():
    tracer = Tracer(process_name="unit")
    with tracer.span("s"):
        pass
    payload = tracer.to_chrome()
    metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} >= {"unit", "thread-0"}
    assert payload["otherData"]["trace_id"] == tracer.trace_id
    assert payload["otherData"]["dropped_events"] == 0


def test_max_events_cap_drops_and_counts():
    tracer = Tracer(max_events=3)
    for index in range(10):
        tracer.instant(f"e{index}")
    assert len(tracer) == 3
    assert tracer.dropped == 7
    assert tracer.to_chrome()["otherData"]["dropped_events"] == 7


def test_span_ids_are_unique_across_threads():
    tracer = Tracer()

    def work():
        for _ in range(50):
            with tracer.span("t"):
                pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    events = [e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "X"]
    ids = [e["args"]["span_id"] for e in events]
    assert len(ids) == 200
    assert len(set(ids)) == 200


def test_write_produces_loadable_valid_json(tmp_path):
    tracer = Tracer()
    with tracer.span("a"):
        tracer.instant("b")
    out = tmp_path / "trace.json"
    written = tracer.write(out)
    payload = json.loads(out.read_text())
    assert validate_chrome_trace(payload) == written


@pytest.mark.parametrize(
    "payload",
    [
        "not an object",
        {},
        {"traceEvents": []},
        {"traceEvents": ["not an event"]},
        {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0}]},
        {"traceEvents": [{"ph": "i", "pid": 1, "tid": 1, "ts": 0}]},
        {"traceEvents": [{"ph": "i", "name": "x", "pid": "1", "tid": 1, "ts": 0}]},
        {"traceEvents": [{"ph": "i", "name": "x", "pid": 1, "tid": 1, "ts": -1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0}]},
        {"traceEvents": [{"ph": "b", "name": "x", "pid": 1, "tid": 1, "ts": 0}]},
        {
            "traceEvents": [
                {"ph": "C", "name": "x", "pid": 1, "tid": 1, "ts": 0, "args": {"v": "s"}}
            ]
        },
        {"traceEvents": [{"ph": "M", "name": "x", "pid": 1, "tid": 1, "ts": 0, "args": {}}]},
    ],
)
def test_validator_rejects_malformed_traces(payload):
    with pytest.raises(ValueError):
        validate_chrome_trace(payload)
