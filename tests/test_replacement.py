"""Unit and property tests for the pluggable replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.replacement import (
    DEFAULT_POLICY,
    POLICIES,
    RandomPolicy,
    SRRIPPolicy,
    make_policy,
)

LINE = b"\x00" * 64
ALL_POLICIES = sorted(POLICIES)


def small_cache(policy, ways=2, sets=4, name="cache", seed=0):
    return Cache(
        size_bytes=ways * sets * 64, ways=ways, name=name, policy=policy, policy_seed=seed
    )


class TestRegistry:
    def test_default_is_lru(self):
        assert DEFAULT_POLICY == "lru"
        assert type(Cache(1024, 2).policy).name == "lru"

    def test_make_policy_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("belady")

    def test_every_registered_name_instantiates(self):
        for name in ALL_POLICIES:
            assert make_policy(name).name == name

    def test_policy_instance_accepted_directly(self):
        policy = SRRIPPolicy(bits=3)
        cache = Cache(1024, 2, policy=policy)
        assert cache.policy is policy

    def test_srrip_needs_a_bit(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(bits=0)


class TestLRU:
    def test_hit_promotes(self):
        cache = small_cache("lru", ways=2, sets=1)
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        cache.lookup(0)
        assert cache.fill(2, LINE).addr == 1

    def test_untouched_lookup_does_not_promote(self):
        cache = small_cache("lru", ways=2, sets=1)
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        cache.lookup(0, touch=False)
        assert cache.fill(2, LINE).addr == 0


class TestFIFO:
    def test_hits_never_promote(self):
        cache = small_cache("fifo", ways=2, sets=1)
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        cache.lookup(0)  # FIFO ignores recency
        assert cache.fill(2, LINE).addr == 0

    def test_insertion_order_victims(self):
        cache = small_cache("fifo", ways=3, sets=1)
        for addr in (0, 1, 2):
            cache.fill(addr, LINE)
        assert cache.fill(3, LINE).addr == 0
        assert cache.fill(4, LINE).addr == 1


class TestRandom:
    def test_victim_is_resident(self):
        cache = small_cache("random", ways=2, sets=1)
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        assert cache.fill(2, LINE).addr in (0, 1)

    def test_same_seed_same_stream(self):
        a = RandomPolicy(cache_name="l3", seed=7)
        b = RandomPolicy(cache_name="l3", seed=7)
        draws_a = [a._rng.random() for _ in range(20)]
        draws_b = [b._rng.random() for _ in range(20)]
        assert draws_a == draws_b

    def test_distinct_cache_names_distinct_streams(self):
        a = RandomPolicy(cache_name="l3", seed=7)
        b = RandomPolicy(cache_name="l2_0", seed=7)
        assert [a._rng.random() for _ in range(8)] != [b._rng.random() for _ in range(8)]

    def test_whole_cache_replay_is_deterministic(self):
        def run():
            cache = small_cache("random", ways=2, sets=2, name="l3", seed=3)
            victims = []
            for addr in range(40):
                victim = cache.fill(addr, LINE)
                victims.append(victim.addr if victim else None)
            return victims

        assert run() == run()


class TestSRRIP:
    def test_fills_age_out_before_rereferenced_lines(self):
        cache = small_cache("srrip", ways=2, sets=1)
        cache.fill(0, LINE)
        cache.lookup(0)  # rrpv -> 0: near-immediate re-reference predicted
        cache.fill(1, LINE)  # rrpv 2
        victim = cache.fill(2, LINE)
        assert victim.addr == 1  # the never-hit line ages to distant first

    def test_scan_does_not_flush_working_set(self):
        cache = small_cache("srrip", ways=4, sets=1)
        for addr in (0, 1):
            cache.fill(addr, LINE)
            cache.lookup(addr)
        # a streaming burst through the set: under LRU the third scan
        # fill would already have evicted the working set, but the
        # scan lines age to distant first under SRRIP
        for addr in range(100, 106):
            cache.fill(addr, LINE)
        survivors = {line.addr for line in cache.resident()}
        assert {0, 1} <= survivors

    def test_victim_always_resident(self):
        cache = small_cache("srrip", ways=2, sets=2)
        for addr in range(50):
            victim = cache.fill(addr, LINE)
            if victim is not None:
                assert victim.addr != addr
        assert cache.occupancy() == 4


class TestPrefetchAwareLRU:
    def test_unreferenced_prefetch_sacrificed_first(self):
        cache = small_cache("pref_lru", ways=3, sets=1)
        cache.fill(0, LINE)
        cache.fill(1, LINE, prefetched=True)
        cache.fill(2, LINE)
        victim = cache.fill(3, LINE)
        assert victim.addr == 1
        assert victim.prefetched

    def test_referenced_prefetch_protected(self):
        cache = small_cache("pref_lru", ways=2, sets=1)
        cache.fill(0, LINE, prefetched=True)
        cache.fill(1, LINE)
        # demand reference clears the bit (as the hierarchy does) and
        # promotes the line, so plain LRU applies: 1 is least recent
        cache.lookup(0).prefetched = False
        assert cache.fill(2, LINE).addr == 1

    def test_falls_back_to_lru_without_prefetches(self):
        cache = small_cache("pref_lru", ways=2, sets=1)
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        cache.lookup(0)
        assert cache.fill(2, LINE).addr == 1


class TestEvictionTelemetry:
    def test_policy_evictions_counted(self):
        cache = small_cache("lru", ways=2, sets=1)
        for addr in range(5):
            cache.fill(addr, LINE)
        assert cache.policy_evictions == 3

    def test_prefetch_victims_counted(self):
        cache = small_cache("lru", ways=1, sets=1)
        cache.fill(0, LINE, prefetched=True)
        cache.fill(1, LINE)  # victimises the unreferenced prefetch
        cache.fill(2, LINE)  # victimises a demand line
        assert cache.prefetch_victims == 1
        assert cache.policy_evictions == 2

    def test_evicted_line_carries_prefetched_bit(self):
        cache = small_cache("fifo", ways=1, sets=1)
        cache.fill(0, LINE, prefetched=True)
        assert cache.fill(1, LINE).prefetched
        assert not cache.fill(2, LINE).prefetched

    def test_forced_evict_carries_prefetched_bit(self):
        cache = small_cache("lru")
        cache.fill(5, LINE, prefetched=True)
        assert cache.evict(5).prefetched

    def test_reset_clears_policy_counters(self):
        cache = small_cache("lru", ways=1, sets=1)
        cache.fill(0, LINE, prefetched=True)
        cache.fill(1, LINE)
        cache.reset_stats()
        assert cache.policy_evictions == 0
        assert cache.prefetch_victims == 0


# -- cross-policy properties -------------------------------------------------

access_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),  # address
        st.booleans(),  # fill (True) vs lookup (False)
        st.booleans(),  # prefetched hint on fills
    ),
    max_size=300,
)


@pytest.mark.parametrize("policy", ALL_POLICIES)
@settings(deadline=None, max_examples=40)
@given(stream=access_streams)
def test_occupancy_and_victims_invariant(policy, stream):
    """Under arbitrary access streams, every policy keeps each set within
    its way budget, evicts only resident lines, and keeps hit/miss
    accounting consistent with residency."""
    cache = Cache(2 * 4 * 64, ways=2, policy=policy, name="prop", policy_seed=1)
    expected_hits = expected_misses = 0
    for addr, is_fill, prefetched in stream:
        resident_before = cache.probe(addr) is not None
        if is_fill:
            victim = cache.fill(addr, LINE, prefetched=prefetched)
            if victim is not None:
                assert not resident_before or victim.addr != addr
                assert cache.probe(victim.addr) is None
        else:
            line = cache.lookup(addr)
            assert (line is not None) == resident_before
            if resident_before:
                expected_hits += 1
            else:
                expected_misses += 1
    assert cache.hits == expected_hits
    assert cache.misses == expected_misses
    assert cache.occupancy() <= 2 * 4
    for s in range(cache.num_sets):
        in_set = [ln for ln in cache.resident() if cache.set_index(ln.addr) == s]
        assert len(in_set) <= 2
