"""Golden test: the policy seam leaves the default path bitwise identical.

The fixtures under ``tests/golden/prepolicy_<design>.json`` are
``SimResult.to_json_dict()`` payloads captured from the code *before*
the replacement-policy refactor (commit 859ca33's hard-coded
``OrderedDict`` LRU), for all seven designs on one pinned workload and
config.  The refactored hierarchy running the default ``lru`` policy
must reproduce every one of them exactly — same cycles, same DRAM
traffic, same metric values — proving the seam introduction changed
nothing on the default path.

The only permitted difference is the *additive* telemetry this PR
introduces (``llc.wasted_prefetches``, ``llc.policy_evictions``,
``llc.prefetch_victims``): those paths did not exist pre-refactor, so
they are removed from the comparison rather than invented in the
fixtures.  Every pre-existing path must match bit for bit.
"""

import json
import pathlib

import pytest

from repro.sim.config import quick_config
from repro.sim.results import SimResult
from repro.sim.system import DESIGNS, SimulatedSystem
from repro.workloads.generators import spec_like

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Telemetry paths added by the policy-seam PR (absent from the fixtures).
ADDED_METRICS = frozenset(
    {"llc.wasted_prefetches", "llc.policy_evictions", "llc.prefetch_victims"}
)

CFG = quick_config(ops_per_core=400, warmup_ops=200)
WORKLOAD = spec_like("golden", seed=11)


def run_default(design: str) -> dict:
    result = SimulatedSystem(WORKLOAD, design, CFG).run()
    payload = result.to_json_dict()
    payload["metrics"] = {
        k: v for k, v in payload["metrics"].items() if k not in ADDED_METRICS
    }
    # Envelope-only wire-format churn since the fixtures were captured:
    # v3 tags a new schema number and an optional (here absent)
    # ``timeseries`` member.  Neither carries simulation output, so they
    # are normalised away and every *simulated* value still compares
    # bit for bit.
    assert payload.pop("timeseries") is None
    payload.pop("schema")
    return payload


@pytest.mark.parametrize("design", DESIGNS)
def test_default_lru_bitwise_identical_to_prerefactor(design):
    fixture_path = GOLDEN_DIR / f"prepolicy_{design}.json"
    want = json.loads(fixture_path.read_text())
    want.pop("schema")
    got = run_default(design)
    assert got == want


@pytest.mark.parametrize("design", DESIGNS)
def test_fixture_decodes_as_current_schema(design):
    """The captured payloads are live results, not stale wire formats."""
    fixture_path = GOLDEN_DIR / f"prepolicy_{design}.json"
    result = SimResult.from_json(fixture_path.read_text())
    assert result.design == design
    assert result.elapsed_cycles > 0


def test_explicit_lru_matches_default():
    """Naming the default policy explicitly is the identical simulation."""
    explicit = SimulatedSystem(WORKLOAD, "static_ptmc", CFG.with_(llc_policy="lru")).run()
    default = SimulatedSystem(WORKLOAD, "static_ptmc", CFG).run()
    assert explicit == default


@pytest.mark.parametrize("policy", ["fifo", "random", "srrip", "pref_lru"])
def test_non_default_policies_are_reproducible(policy):
    """Every policy is a deterministic function of its config (twice-run
    equality is what makes parallel sweeps and disk caching sound)."""
    cfg = CFG.with_(llc_policy=policy)
    first = SimulatedSystem(WORKLOAD, "static_ptmc", cfg).run()
    second = SimulatedSystem(WORKLOAD, "static_ptmc", cfg).run()
    assert first == second
