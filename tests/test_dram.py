"""Tests for the DRAM timing model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.dram.timing import DDRTiming, DRAMGeometry, ns_to_cycles
from repro.types import Category


class TestTiming:
    def test_ns_conversion_rounds_up(self):
        assert ns_to_cycles(1.0, 3.2) == 4
        assert ns_to_cycles(0.25, 4.0) == 1

    def test_bus_clock_ratio(self):
        assert DDRTiming().cycles_per_bus_clock == 4

    def test_burst_cycles(self):
        assert DDRTiming().t_burst == 16

    def test_latencies_positive(self):
        timing = DDRTiming()
        assert timing.t_cas > 0
        assert timing.t_rcd > 0
        assert timing.t_rp > 0
        assert timing.t_ras > timing.t_rcd


class TestGeometry:
    def test_channel_interleave_at_group_granularity(self):
        geo = DRAMGeometry(channels=2)
        # all four lines of a group share a channel...
        channels = {geo.decode(addr).channel for addr in range(4)}
        assert len(channels) == 1
        # ...and the next group uses the other channel
        assert geo.decode(4).channel != geo.decode(0).channel

    def test_group_bases_spread_over_channels(self):
        geo = DRAMGeometry(channels=2)
        bases = [geo.decode(g * 4).channel for g in range(16)]
        assert set(bases) == {0, 1}

    def test_single_channel(self):
        geo = DRAMGeometry(channels=1)
        assert geo.decode(12345).channel == 0

    def test_decode_fields_in_range(self):
        geo = DRAMGeometry()
        for addr in (0, 1, 1000, 123456, 2**24):
            decoded = geo.decode(addr)
            assert 0 <= decoded.channel < geo.channels
            assert 0 <= decoded.bank < geo.banks_per_channel
            assert 0 <= decoded.column < geo.lines_per_row

    def test_decode_bijective_on_sample(self):
        geo = DRAMGeometry()
        seen = set()
        for addr in range(4096):
            decoded = geo.decode(addr)
            key = (decoded.channel, decoded.bank, decoded.row, decoded.column)
            assert key not in seen
            seen.add(key)


class TestReadTiming:
    def test_row_miss_then_hit(self):
        dram = DRAMSystem()
        t1 = dram.access(0, 0, Category.DATA_READ)
        t2 = dram.access(1, t1, Category.DATA_READ)
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 1
        # the row hit completes faster than the initial miss
        assert t2 - t1 < t1 - 0

    def test_row_conflict_costs_precharge(self):
        geo = DRAMGeometry()
        dram = DRAMSystem(geometry=geo)
        timing = dram.timing
        same_bank_other_row = geo.channels * geo.lines_per_row * geo.banks_per_channel
        t1 = dram.access(0, 0, Category.DATA_READ)
        t2 = dram.access(same_bank_other_row, t1, Category.DATA_READ)
        assert dram.geometry.decode(0).bank == dram.geometry.decode(same_bank_other_row).bank
        assert dram.stats.row_misses == 2
        # conflict latency includes precharge
        assert (t2 - t1) >= timing.t_rp

    def test_bus_serialises_transfers(self):
        dram = DRAMSystem()
        # two accesses to different banks, same channel, same instant
        geo = dram.geometry
        a, b = 0, geo.channels * geo.lines_per_row  # different banks
        assert geo.decode(a).channel == geo.decode(b).channel
        assert geo.decode(a).bank != geo.decode(b).bank
        t1 = dram.access(a, 0, Category.DATA_READ)
        t2 = dram.access(b, 0, Category.DATA_READ)
        assert t2 >= t1 + dram.timing.t_burst

    def test_different_channels_independent(self):
        dram = DRAMSystem()
        t1 = dram.access(0, 0, Category.DATA_READ)
        t2 = dram.access(4, 0, Category.DATA_READ)  # next group, other channel
        assert t2 == t1  # identical service, no interference


class TestWriteBuffering:
    def test_write_returns_immediately(self):
        dram = DRAMSystem()
        assert dram.access(0, 100, Category.DATA_WRITE) == 100

    def test_writes_drain_into_idle_gaps(self):
        dram = DRAMSystem()
        t1 = dram.access(0, 0, Category.DATA_READ)
        dram.access(8, t1, Category.DATA_WRITE)
        # a read far in the future sees no backlog interference
        far = t1 + 10_000
        t2 = dram.access(1, far, Category.DATA_READ)
        assert t2 - far <= dram.timing.t_cas + dram.timing.t_burst

    def test_full_write_queue_stalls_reads(self):
        dram = DRAMSystem(write_queue_entries=4)
        t = dram.access(0, 0, Category.DATA_READ)
        for i in range(8):
            dram.access(8 + 8 * i, t, Category.DATA_WRITE)
        t2 = dram.access(1, t, Category.DATA_READ)
        # the forced drain pushed the read out by at least the backlog
        assert t2 - t > 4 * dram.timing.t_burst

    def test_write_row_stats_counted(self):
        dram = DRAMSystem()
        dram.access(0, 0, Category.DATA_WRITE)
        assert dram.stats.writes == 1
        assert dram.stats.row_misses == 1


class TestStats:
    def test_categories_counted(self):
        dram = DRAMSystem()
        dram.access(0, 0, Category.DATA_READ)
        dram.access(1, 0, Category.METADATA_READ)
        dram.access(2, 0, Category.DATA_WRITE)
        assert dram.stats.accesses_by_category[Category.DATA_READ] == 1
        assert dram.stats.accesses_by_category[Category.METADATA_READ] == 1
        assert dram.stats.total_accesses == 3
        assert dram.stats.category_count(Category.DATA_READ, Category.DATA_WRITE) == 2

    def test_utilisation_bounded(self):
        dram = DRAMSystem()
        now = 0
        for i in range(32):
            now = dram.access(i, now, Category.DATA_READ)
        assert 0.0 < dram.channel_utilisation(now) <= 1.0


class TestPhysicalMemory:
    def test_default_zero_fill(self):
        mem = PhysicalMemory(1024)
        assert mem.read(5) == b"\x00" * 64

    def test_write_read(self):
        mem = PhysicalMemory(1024)
        data = bytes(range(64))
        mem.write(5, data)
        assert mem.read(5) == data

    def test_bounds_checked(self):
        mem = PhysicalMemory(16)
        with pytest.raises(IndexError):
            mem.read(16)
        with pytest.raises(IndexError):
            mem.write(-1, b"\x00" * 64)

    def test_size_checked(self):
        mem = PhysicalMemory(16)
        with pytest.raises(ValueError):
            mem.write(0, b"short")

    def test_lazy_initial_content(self):
        calls = []

        def initial(addr):
            calls.append(addr)
            return bytes([addr % 256]) * 64

        mem = PhysicalMemory(1024, initial_content=initial)
        assert mem.read(7) == b"\x07" * 64
        assert mem.read(7) == b"\x07" * 64
        assert calls == [7]  # materialised once

    def test_resident_lines_snapshot(self):
        mem = PhysicalMemory(1024)
        mem.write(3, b"\x01" * 64)
        assert set(mem.resident_lines()) == {3}


@given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()), max_size=60))
def test_time_monotonic_per_stream(ops):
    """Completions never precede their issue time."""
    dram = DRAMSystem()
    now = 0
    for addr, is_write in ops:
        category = Category.DATA_WRITE if is_write else Category.DATA_READ
        done = dram.access(addr, now, category)
        assert done >= now
        if not is_write:
            now = done


class TestRefresh:
    def test_access_in_refresh_window_delayed(self):
        dram = DRAMSystem()
        t_rfc = dram.timing.t_rfc
        # time 0 falls inside the first refresh window
        completion = dram.access(0, 0, Category.DATA_READ)
        assert completion >= t_rfc
        assert dram.stats.refresh_stalls >= 1

    def test_access_outside_window_unaffected(self):
        with_refresh = DRAMSystem()
        without = DRAMSystem(refresh=False)
        start = with_refresh.timing.t_rfc + 10  # past the refresh window
        a = with_refresh.access(0, start, Category.DATA_READ)
        b = without.access(0, start, Category.DATA_READ)
        assert a == b

    def test_refresh_disabled(self):
        dram = DRAMSystem(refresh=False)
        dram.access(0, 0, Category.DATA_READ)
        assert dram.stats.refresh_stalls == 0


class TestPagePolicy:
    def test_closed_page_never_row_hits(self):
        dram = DRAMSystem(page_policy="closed", refresh=False)
        now = dram.access(0, 0, Category.DATA_READ)
        dram.access(1, now, Category.DATA_READ)
        assert dram.stats.row_hits == 0
        assert dram.stats.row_misses == 2

    def test_closed_page_constant_latency(self):
        dram = DRAMSystem(page_policy="closed", refresh=False)
        timing = dram.timing
        t1 = dram.access(0, 10_000, Category.DATA_READ)
        expected = timing.t_rcd + timing.t_cas + timing.t_burst
        assert t1 - 10_000 == expected

    def test_open_page_beats_closed_on_streams(self):
        open_page = DRAMSystem(page_policy="open", refresh=False)
        closed = DRAMSystem(page_policy="closed", refresh=False)
        t_open = t_closed = 100_000
        for i in range(16):
            t_open = open_page.access(i, t_open, Category.DATA_READ)
            t_closed = closed.access(i, t_closed, Category.DATA_READ)
        assert t_open < t_closed

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            DRAMSystem(page_policy="sideways")

    def test_closed_page_write_stats(self):
        dram = DRAMSystem(page_policy="closed", refresh=False)
        dram.access(0, 0, Category.DATA_WRITE)
        dram.access(0, 0, Category.DATA_WRITE)
        assert dram.stats.row_hits == 0
