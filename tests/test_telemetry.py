"""Unit tests for the telemetry primitives and the stat registry."""

import pytest

from repro.telemetry import Counter, Gauge, RatioStat, StatRegistry


class TestCounter:
    def test_owned_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.read() == 5

    def test_owned_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_sourced_counter_reads_through(self):
        box = {"value": 0}
        counter = Counter(lambda: box["value"])
        box["value"] = 7
        assert counter.read() == 7

    def test_sourced_counter_is_read_only(self):
        with pytest.raises(TypeError):
            Counter(lambda: 0).inc()

    def test_windowed_delta(self):
        box = {"value": 10}
        counter = Counter(lambda: box["value"])
        base = counter.read()
        box["value"] = 25
        assert counter.measured(base) == 15

    def test_unwindowed_counter_ignores_base(self):
        box = {"value": 10}
        counter = Counter(lambda: box["value"], windowed=False)
        base = counter.read()
        box["value"] = 25
        assert counter.measured(base) == 25

    def test_no_base_measures_whole_run(self):
        counter = Counter()
        counter.inc(3)
        assert counter.measured(None) == 3


class TestGauge:
    def test_gauge_reports_point_in_time(self):
        gauge = Gauge()
        gauge.set(0.5)
        assert gauge.measured(0.1) == 0.5

    def test_sourced_gauge_is_read_only(self):
        with pytest.raises(TypeError):
            Gauge(lambda: 1).set(2)


class TestRatioStat:
    def test_ratio_over_window(self):
        box = {"hits": 10, "misses": 10}
        hits = Counter(lambda: box["hits"])
        misses = Counter(lambda: box["misses"])
        ratio = RatioStat(hits, [hits, misses])
        base = ratio.read()
        box["hits"], box["misses"] = 40, 20
        # window: 30 hits over 40 accesses
        assert ratio.measured(base) == 30 / 40

    def test_default_on_zero_denominator(self):
        hits = Counter()
        ratio = RatioStat(hits, [hits], default=1.0)
        assert ratio.measured(None) == 1.0

    def test_one_minus_complement(self):
        box = {"bad": 1, "total": 4}
        bad = Counter(lambda: box["bad"])
        total = Counter(lambda: box["total"])
        ratio = RatioStat(bad, [total], default=1.0, one_minus=True)
        assert ratio.measured(None) == 1.0 - 1 / 4

    def test_requires_denominators(self):
        with pytest.raises(ValueError):
            RatioStat(Counter(), [])


class TestStatRegistry:
    def test_scoped_registration_and_paths(self):
        registry = StatRegistry()
        scope = registry.scope("dram")
        scope.counter("row_hits")
        scope.scope("accesses").counter("data_read")
        assert registry.paths() == ["dram.row_hits", "dram.accesses.data_read"]
        assert "dram.row_hits" in registry
        assert len(registry) == 2

    def test_duplicate_path_rejected(self):
        registry = StatRegistry()
        registry.scope("llc").counter("hits")
        with pytest.raises(ValueError):
            registry.scope("llc").counter("hits")

    @pytest.mark.parametrize("path", ["", "Upper.case", "sp ace", "a..b", "a."])
    def test_invalid_paths_rejected(self, path):
        registry = StatRegistry()
        with pytest.raises(ValueError):
            registry.register(path, Counter())

    def test_snapshot_delta_windows_counters(self):
        box = {"value": 5}
        registry = StatRegistry()
        registry.scope("x").counter("count", lambda: box["value"])
        base = registry.snapshot()
        box["value"] = 12
        assert registry.delta(base) == {"x.count": 7}

    def test_delta_without_base_measures_whole_run(self):
        box = {"value": 5}
        registry = StatRegistry()
        registry.scope("x").counter("count", lambda: box["value"])
        assert registry.delta() == {"x.count": 5}

    def test_stat_registered_after_snapshot_measures_from_zero(self):
        registry = StatRegistry()
        base = registry.snapshot()
        box = {"value": 9}
        registry.scope("x").counter("count", lambda: box["value"])
        assert registry.delta(base) == {"x.count": 9}

    def test_mixed_kinds_in_one_delta(self):
        box = {"hits": 2, "misses": 2, "level": 0.0}
        registry = StatRegistry()
        scope = registry.scope("c")
        hits = scope.counter("hits", lambda: box["hits"])
        misses = scope.counter("misses", lambda: box["misses"])
        scope.ratio("hit_rate", hits, [hits, misses])
        scope.gauge("level", lambda: box["level"])
        base = registry.snapshot()
        box.update(hits=10, misses=4, level=0.75)
        delta = registry.delta(base)
        assert delta["c.hits"] == 8
        assert delta["c.misses"] == 2
        assert delta["c.hit_rate"] == 8 / 10
        assert delta["c.level"] == 0.75
