"""Tests for the content-addressed on-disk result cache.

Covers the cache-key identity rules (full workload parameters, not just
the name — the memoization-aliasing regression), the versioned JSON
round trip for :class:`SimResult`, and corruption/version-mismatch
handling.
"""

import dataclasses
import json

import pytest

from repro.sim import runner
from repro.sim.config import quick_config
from repro.sim.diskcache import (
    DiskCache,
    cache_key,
    stable_identity,
    workload_identity,
)
from repro.sim.results import (
    RESULT_SCHEMA_VERSION,
    ResultDecodeError,
    SimResult,
)
from repro.workloads import get_workload
from repro.workloads.generators import make_mix, spec_like

CFG = quick_config(ops_per_core=300, warmup_ops=100)


@pytest.fixture(autouse=True)
def _isolated_runner():
    """Fresh memo and no disk cache unless a test configures one."""
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)
    yield
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)


def small_result(**overrides) -> SimResult:
    result = runner.simulate("lbm06", "uncompressed", CFG)
    return dataclasses.replace(result, **overrides) if overrides else result


class TestIdentity:
    def test_same_spec_same_identity(self):
        a = spec_like("dup", footprint_lines=512, seed=7)
        b = spec_like("dup", footprint_lines=512, seed=7)
        assert workload_identity(a) == workload_identity(b)
        assert cache_key(a, "ideal", CFG) == cache_key(b, "ideal", CFG)

    def test_same_name_different_params_distinct(self):
        a = spec_like("dup", footprint_lines=512, seed=7)
        b = spec_like("dup", footprint_lines=4096, seed=7)
        assert workload_identity(a) != workload_identity(b)
        assert cache_key(a, "ideal", CFG) != cache_key(b, "ideal", CFG)

    def test_seed_is_part_of_identity(self):
        a = spec_like("dup", seed=1)
        b = spec_like("dup", seed=2)
        assert cache_key(a, "ideal", CFG) != cache_key(b, "ideal", CFG)

    def test_mix_identity_covers_member_specs(self):
        a = make_mix("m", [spec_like("x", seed=1)], seed=5)
        b = make_mix("m", [spec_like("x", seed=1, footprint_lines=9999)], seed=5)
        assert workload_identity(a) != workload_identity(b)

    def test_design_and_config_in_key(self):
        w = get_workload("lbm06")
        assert cache_key(w, "ideal", CFG) != cache_key(w, "static_ptmc", CFG)
        other = CFG.with_(ops_per_core=301)
        assert cache_key(w, "ideal", CFG) != cache_key(w, "ideal", other)

    def test_stable_identity_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            stable_identity(object())


class TestRunnerAliasingRegression:
    def test_same_name_workloads_do_not_share_results(self):
        """Two same-named workloads with different parameters must not
        return each other's memoized results (the old name-keyed bug)."""
        small = spec_like("dup", footprint_lines=256, seed=3)
        large = spec_like("dup", footprint_lines=8192, seq_frac=0.1, seed=3)
        a = runner.simulate(small, "uncompressed", CFG)
        b = runner.simulate(large, "uncompressed", CFG)
        assert a is not b
        assert a.core_cycles != b.core_cycles
        # and each key still memoizes correctly on repeat (hits replay as
        # marked copies, never the other workload's result)
        again_small = runner.simulate(small, "uncompressed", CFG)
        again_large = runner.simulate(large, "uncompressed", CFG)
        assert again_small.extras["cached"] == 1.0
        assert again_large.extras["cached"] == 1.0
        assert again_small.core_cycles == a.core_cycles
        assert again_large.core_cycles == b.core_cycles


class TestSerialization:
    def test_round_trip_equality(self):
        result = small_result()
        assert SimResult.from_json(result.to_json()) == result

    def test_round_trip_preserves_optionals(self):
        result = runner.simulate("lbm06", "static_ptmc", CFG)
        loaded = SimResult.from_json(result.to_json())
        assert loaded.llp_accuracy == result.llp_accuracy
        assert loaded.extras == result.extras

    def test_schema_version_embedded(self):
        payload = small_result().to_json_dict()
        assert payload["schema"] == RESULT_SCHEMA_VERSION

    def test_version_mismatch_rejected(self):
        payload = small_result().to_json_dict()
        payload["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ResultDecodeError):
            SimResult.from_json_dict(payload)

    def test_metrics_survive_round_trip(self):
        result = runner.simulate("lbm06", "dynamic_ptmc", CFG)
        loaded = SimResult.from_json(result.to_json())
        assert loaded.metrics == result.metrics
        assert "ptmc.llp.accuracy" in loaded.metrics

    def test_missing_metrics_rejected(self):
        payload = small_result().to_json_dict()
        del payload["metrics"]
        with pytest.raises(ResultDecodeError):
            SimResult.from_json_dict(payload)

    def test_missing_field_rejected(self):
        payload = small_result().to_json_dict()
        del payload["dram"]
        with pytest.raises(ResultDecodeError):
            SimResult.from_json_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ResultDecodeError):
            SimResult.from_json("{not json")

    def test_unknown_category_rejected(self):
        payload = small_result().to_json_dict()
        payload["dram"]["accesses_by_category"]["warp_traffic"] = 3
        with pytest.raises(ResultDecodeError):
            SimResult.from_json_dict(payload)


class TestDiskCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = small_result()
        cache.put("ab" * 32, result)
        loaded = cache.get("ab" * 32)
        assert loaded == result
        assert loaded.metrics == result.metrics
        assert cache.counters.hits == 1
        assert cache.counters.stores == 1

    def test_absent_key_is_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("cd" * 32) is None
        assert cache.counters.misses == 1

    def test_corrupt_entry_discarded(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" * 32
        cache.put(key, small_result())
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("garbage{{{")
        assert cache.get(key) is None
        assert cache.counters.evicted_corrupt == 1
        assert not path.exists()

    def test_stale_schema_entry_discarded(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" * 32
        cache.put(key, small_result())
        path = tmp_path / key[:2] / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = RESULT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None
        assert cache.counters.evicted_corrupt == 1

    def test_clear_and_stats(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("ab" * 32, small_result())
        cache.put("cd" * 32, small_result())
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_runner_uses_disk_cache_across_memo_clears(self, tmp_path):
        runner.configure_disk_cache(tmp_path)
        first, src_first = runner.simulate_with_source("lbm06", "ideal", CFG)
        assert src_first == "executed"
        runner.clear_cache()  # simulate a fresh process (memo gone)
        second, src_second = runner.simulate_with_source("lbm06", "ideal", CFG)
        assert src_second == "disk"
        assert second is not first
        # the replay markers are the only difference from the original
        assert second.extras.pop("cached") == 1.0
        assert second.extras.pop("serve_seconds") >= 0.0
        assert second == first


class TestConcurrentWriters:
    def test_two_writers_racing_on_one_key(self, tmp_path):
        """Concurrent service workers and CLI sweeps share one store: a
        key written by many racers must end up as one writer's complete,
        decodable entry — never an interleaving of partial writes."""
        import threading

        cache = DiskCache(tmp_path)
        key = "ef" * 32
        variants = [
            small_result(extras={"writer": float(i)}) for i in range(4)
        ]
        errors = []
        barrier = threading.Barrier(len(variants))

        def race(result):
            try:
                barrier.wait(timeout=30)
                for _ in range(25):
                    DiskCache(tmp_path).put(key, result)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=race, args=(v,)) for v in variants]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        survivor = cache.get(key)
        assert survivor is not None
        assert survivor.extras["writer"] in {v.extras["writer"] for v in variants}
        assert cache.counters.evicted_corrupt == 0

    def test_interleaved_put_get_never_sees_partials(self, tmp_path):
        import threading

        key = "aa" * 32
        result = small_result()
        stop = threading.Event()
        outcomes = []

        def writer():
            while not stop.is_set():
                DiskCache(tmp_path).put(key, result)

        def reader():
            cache = DiskCache(tmp_path)
            while not stop.is_set():
                loaded = cache.get(key)
                if loaded is not None:
                    outcomes.append(loaded == result)
            stop.set()

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        import time as _time

        _time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(30)
        assert outcomes and all(outcomes)


class TestMaintenance:
    def test_stats_report_entry_ages(self, tmp_path):
        import os
        import time as _time

        cache = DiskCache(tmp_path)
        assert cache.stats()["oldest_age_seconds"] is None
        cache.put("ab" * 32, small_result())
        cache.put("cd" * 32, small_result())
        old = tmp_path / ("ab" * 32)[:2] / f"{'ab' * 32}.json"
        os.utime(old, (1, 1))  # epoch-old entry
        stats = cache.stats()
        assert stats["oldest_age_seconds"] > _time.time() - 100
        assert 0 <= stats["newest_age_seconds"] < 120
        assert stats["oldest_age_seconds"] >= stats["newest_age_seconds"]

    def test_prune_removes_only_old_entries(self, tmp_path):
        import os

        cache = DiskCache(tmp_path)
        old_key, new_key = "ab" * 32, "cd" * 32
        cache.put(old_key, small_result())
        cache.put(new_key, small_result())
        os.utime(tmp_path / old_key[:2] / f"{old_key}.json", (1, 1))
        assert cache.prune(older_than_seconds=86400) == 1
        assert cache.get(old_key) is None
        assert cache.get(new_key) is not None

    def test_prune_empty_cache_is_noop(self, tmp_path):
        assert DiskCache(tmp_path).prune(0) == 0


class TestPolicyKeying:
    """Replacement-policy knobs are part of the result identity: sweeps
    over policies must never collide in the shared store."""

    def test_llc_policy_knob_changes_key(self):
        w = get_workload("lbm06")
        keys = {cache_key(w, "static_ptmc", CFG.with_(llc_policy=p))
                for p in (None, "lru", "fifo", "random", "srrip", "pref_lru")}
        assert len(keys) == 6  # None and explicit "lru" are distinct identities

    def test_hierarchy_policy_fields_change_key(self):
        w = get_workload("lbm06")
        base = cache_key(w, "ideal", CFG)
        hcfg = dataclasses.replace(CFG.hierarchy, l3_policy="srrip")
        assert cache_key(w, "ideal", CFG.with_(hierarchy=hcfg)) != base
        seeded = dataclasses.replace(CFG.hierarchy, policy_seed=1)
        assert cache_key(w, "ideal", CFG.with_(hierarchy=seeded)) != base

    def test_policy_differing_runs_store_distinct_results(self, tmp_path):
        runner.configure_disk_cache(tmp_path)
        lru, src_lru = runner.simulate_with_source(
            "lbm06", "static_ptmc", CFG.with_(llc_policy="lru")
        )
        fifo, src_fifo = runner.simulate_with_source(
            "lbm06", "static_ptmc", CFG.with_(llc_policy="fifo")
        )
        assert src_lru == src_fifo == "executed"  # no key collision
        runner.clear_cache()  # fresh process: only the disk store remains
        lru2, src = runner.simulate_with_source(
            "lbm06", "static_ptmc", CFG.with_(llc_policy="lru")
        )
        assert src == "disk"
        assert lru2.metrics == lru.metrics
        fifo2, src = runner.simulate_with_source(
            "lbm06", "static_ptmc", CFG.with_(llc_policy="fifo")
        )
        assert src == "disk"
        assert fifo2.metrics == fifo.metrics

    def test_identical_policy_configs_still_hit(self, tmp_path):
        runner.configure_disk_cache(tmp_path)
        cfg = CFG.with_(llc_policy="srrip")
        _, first = runner.simulate_with_source("lbm06", "static_ptmc", cfg)
        _, second = runner.simulate_with_source("lbm06", "static_ptmc", cfg)
        assert first == "executed"
        assert second == "memory"
        runner.clear_cache()
        _, third = runner.simulate_with_source("lbm06", "static_ptmc", cfg)
        assert third == "disk"
