"""Shared helpers for building 64-byte cache-line test data."""

import struct

from hypothesis import strategies as st

LINE_SIZE = 64


def line_of_words(*words, width=4, byteorder="little"):
    """Build a 64-byte line from integer words, repeating the last word."""
    count = LINE_SIZE // width
    values = list(words) + [words[-1]] * (count - len(words))
    return b"".join(w.to_bytes(width, byteorder) for w in values[:count])


def zero_line():
    return b"\x00" * LINE_SIZE


def small_int_line(start=0, step=1):
    """Line of small 32-bit integers — highly FPC/BDI compressible."""
    return b"".join(
        struct.pack("<i", start + i * step) for i in range(LINE_SIZE // 4)
    )


def quad_friendly_line(variant=0):
    """Line that compresses small enough for 4:1 packing (12 zero words
    followed by four tiny values), mirroring the SMALL_INT data family."""
    values = [0] * 12 + [((variant + i) % 15) - 7 for i in range(4)]
    return b"".join(struct.pack("<i", v) for v in values)


def pointer_line(base=0x7FFF_AB00_0000, stride=64):
    """Line of 8-byte pointer-like values — BDI (B8D1/D2) territory."""
    return b"".join(
        struct.pack("<Q", base + i * stride) for i in range(LINE_SIZE // 8)
    )


def random_line(rng):
    """Uniformly random line — incompressible with high probability."""
    return bytes(rng.getrandbits(8) for _ in range(LINE_SIZE))


# Hypothesis strategies -------------------------------------------------

raw_lines = st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE)

small_word_lines = st.lists(
    st.integers(min_value=-128, max_value=127), min_size=16, max_size=16
).map(lambda ws: b"".join(struct.pack("<i", w) for w in ws))

delta_lines = st.tuples(
    st.integers(min_value=0, max_value=2**62),
    st.lists(st.integers(min_value=-100, max_value=100), min_size=8, max_size=8),
).map(
    lambda t: b"".join(
        struct.pack("<Q", (t[0] + d) % 2**64) for d in t[1]
    )
)

compressible_lines = st.one_of(
    st.just(zero_line()), small_word_lines, delta_lines
)

any_lines = st.one_of(raw_lines, compressible_lines)
