"""Tests for the real-trace ingestion subsystem (``repro.traces``).

Covers the parsers (text/binary/gzip, strict/lenient), the
content-addressed store (dedup, prefix resolution, corruption
detection), reuse-distance characterization, and — the load-bearing
property — bitwise-deterministic replay: the same stored trace produces
the same ``SimResult`` across fresh processes-worth of state, across
the scalar and batched simulation paths, and across parallel sweeps.
"""

import dataclasses
import gzip
import io

import pytest

from repro.sim import runner
from repro.sim.config import quick_config
from repro.sim.diskcache import cache_key
from repro.sim.system import SimulatedSystem
from repro.traces import formats
from repro.traces.formats import (
    ParseStats,
    TraceParseError,
    decode_records,
    encode_records,
    parse_bytes,
    parse_text,
    parse_text_line,
    sniff_format,
)
from repro.traces.replay import TraceWorkload, clear_record_memo, trace_workload
from repro.traces.store import (
    TraceStore,
    TraceStoreError,
    configure_trace_store,
    content_hash,
)
from repro.workloads.characterize import reuse_distance_histogram

CFG = quick_config(ops_per_core=300, warmup_ops=200)


@pytest.fixture(autouse=True)
def _isolated_stores(tmp_path, monkeypatch):
    """Fresh trace store + disk cache per test; reset singletons after."""
    import repro.traces.store as store_module

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "simcache"))
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    configure_trace_store(tmp_path / "traces")
    clear_record_memo()
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)
    yield
    clear_record_memo()
    store_module._default_store = None
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)


def toy_records(lines=48, hot=6, length=256):
    """A small deterministic record list with reuse and writes."""
    records = []
    for i in range(length):
        if i % 3 == 2:
            records.append((True, 0x9000 + (i % hot)))  # hot write set
        else:
            records.append((False, 0x1000 + (i * 7) % lines))
    return records


def ingest_toy(**kwargs):
    from repro.traces.store import trace_store

    info, created = trace_store().ingest_records(toy_records(), **kwargs)
    return info, created


# ---------------------------------------------------------------------------
# Text parsing
# ---------------------------------------------------------------------------


class TestTextParsing:
    def test_kinds_and_aliases(self):
        for token in ("r", "R", "read", "ld", "LOAD"):
            assert parse_text_line(f"{token} 0x1000", 1) == [(False, 0x40)]
        for token in ("w", "W", "write", "st", "STORE"):
            assert parse_text_line(f"{token} 0x1000", 1) == [(True, 0x40)]

    def test_bare_address_is_a_read(self):
        assert parse_text_line("0x1040", 1) == [(False, 0x41)]

    def test_decimal_addresses(self):
        assert parse_text_line("r 128", 1) == [(False, 2)]

    def test_comments_and_blanks(self):
        assert parse_text_line("", 1) == []
        assert parse_text_line("   # note", 1) == []
        assert parse_text_line("r 0x40  # inline", 1) == [(False, 1)]

    def test_size_expands_to_one_record_per_line(self):
        assert parse_text_line("r 0x0 256", 1) == [(False, i) for i in range(4)]

    def test_unaligned_access_crossing_a_line_boundary(self):
        assert parse_text_line("w 60 8", 1) == [(True, 0), (True, 1)]

    def test_strict_mode_raises_with_line_number(self):
        lines = ["r 0x40", "w 0x80", "bogus line here"]
        with pytest.raises(TraceParseError) as excinfo:
            list(parse_text(lines, mode="strict"))
        assert excinfo.value.lineno == 3
        assert "line 3" in str(excinfo.value)

    def test_lenient_mode_skips_and_counts(self):
        lines = ["r 0x40", "x 0x80", "w nope", "w 0xc0"]
        stats = ParseStats()
        parsed = list(parse_text(lines, mode="lenient", stats=stats))
        assert parsed == [(False, 1), (True, 3)]
        assert stats.records == 2
        assert stats.errors == 2
        assert [lineno for lineno, _ in stats.samples] == [2, 3]

    def test_bad_kind_and_address_and_size(self):
        for line in ("jmp 0x40", "r zz", "r 0x40 0", "r -64", "r 1 2 3 4"):
            with pytest.raises(TraceParseError):
                parse_text_line(line, 1)


# ---------------------------------------------------------------------------
# Binary format + containers
# ---------------------------------------------------------------------------


class TestBinaryFormat:
    def test_round_trip(self):
        records = toy_records()
        assert list(decode_records(io.BytesIO(encode_records(records)))) == records

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceParseError, match="magic"):
            list(decode_records(io.BytesIO(b"NOTATRACE")))

    def test_truncated_record_rejected(self):
        data = encode_records([(False, 1), (True, 2)])[:-3]
        with pytest.raises(TraceParseError, match="truncated"):
            list(decode_records(io.BytesIO(data)))

    def test_unknown_flags_rejected(self):
        data = formats.MAGIC + formats._RECORD.pack(0x80, 1)
        with pytest.raises(TraceParseError, match="flags"):
            list(decode_records(io.BytesIO(data)))

    def test_sniffing(self):
        assert sniff_format(encode_records([(False, 1)])) == "binary"
        assert sniff_format(b"r 0x40\n") == "text"

    def test_gzip_container_any_format(self):
        records = toy_records()
        text = formats.format_text(records).encode()
        for payload in (
            gzip.compress(encode_records(records)),
            gzip.compress(text),
            encode_records(records),
            text,
        ):
            assert list(parse_bytes(payload)) == records

    def test_corrupt_gzip_is_a_parse_error(self):
        payload = gzip.compress(b"r 0x40\n")[:10]
        with pytest.raises(TraceParseError, match="gzip"):
            list(parse_bytes(payload))

    def test_format_text_round_trips(self):
        records = toy_records()
        again = list(parse_text(formats.format_text(records).splitlines()))
        assert again == records


# ---------------------------------------------------------------------------
# Content-addressed store
# ---------------------------------------------------------------------------


class TestTraceStore:
    def test_ingest_and_dedup_across_containers(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        records = toy_records()
        text = formats.format_text(records).encode()
        info1, created1 = store.ingest_bytes(text, name="as-text")
        info2, created2 = store.ingest_bytes(
            gzip.compress(encode_records(records)), name="as-binary-gz"
        )
        assert created1 and not created2
        assert info1.hash == info2.hash == content_hash(records)
        assert info2.name == "as-text"  # first ingest wins the name
        assert store.stats.ingested == 1
        assert store.stats.dedup_hits == 1

    def test_sidecar_characterization(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        records = [(False, 1), (True, 2), (False, 1), (True, 2)]
        info, _ = store.ingest_records(records, name="tiny")
        assert info.records == 4
        assert info.reads == 2 and info.writes == 2
        assert info.write_frac == 0.5
        assert info.unique_lines == 2
        assert info.footprint_bytes == 2 * 64
        assert sum(info.reuse_distance.values()) == 4

    def test_prefix_resolution(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        info, _ = store.ingest_records(toy_records())
        assert store.resolve(info.hash[:8]) == info.hash
        assert store.resolve(info.hash) == info.hash
        with pytest.raises(TraceStoreError, match="unknown"):
            store.resolve("feedface")
        with pytest.raises(TraceStoreError, match="at least 2"):
            store.resolve("a")
        with pytest.raises(TraceStoreError, match="invalid"):
            store.resolve("not-hex!")

    def test_empty_trace_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        with pytest.raises(TraceStoreError, match="no records"):
            store.ingest_records([])

    def test_missing_sidecar_is_rebuilt(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        info, _ = store.ingest_records(toy_records(), name="x")
        _, json_path = store._paths(info.hash)
        json_path.unlink()
        rebuilt = store.info(info.hash)
        assert rebuilt.records == info.records
        assert rebuilt.reuse_distance == info.reuse_distance
        assert json_path.exists()

    def test_corrupt_payload_detected(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        info, _ = store.ingest_records(toy_records())
        bin_path, _ = store._paths(info.hash)
        # re-gzip different bytes: valid container, wrong content hash
        buffer = io.BytesIO()
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as zipped:
            zipped.write(encode_records([(False, 99)]))
        bin_path.write_bytes(buffer.getvalue())
        with pytest.raises(TraceStoreError, match="content hash"):
            store.load_records(info.hash)

    def test_stored_container_is_byte_stable(self, tmp_path):
        a = TraceStore(tmp_path / "a")
        b = TraceStore(tmp_path / "b")
        info_a, _ = a.ingest_records(toy_records())
        info_b, _ = b.ingest_records(toy_records())
        path_a, _ = a._paths(info_a.hash)
        path_b, _ = b._paths(info_b.hash)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_list_and_remove(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        info, _ = store.ingest_records(toy_records(), name="keep")
        assert [i.hash for i in store.list()] == [info.hash]
        store.remove(info.hash[:8])
        assert store.list() == []

    def test_lenient_ingest_counts_errors_in_sidecar(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        info, _ = store.ingest_bytes(
            b"r 0x40\nzzz\nw 0x80\n", mode="lenient", name="noisy"
        )
        assert info.records == 2
        assert info.parse_errors == 1
        assert store.stats.parse_errors == 1


# ---------------------------------------------------------------------------
# Reuse-distance characterization
# ---------------------------------------------------------------------------


class TestReuseDistance:
    def test_known_small_sequence(self):
        # a b a b c: both re-accesses see 2 distinct lines (incl. self)
        assert reuse_distance_histogram([1, 2, 1, 2, 3]) == {"cold": 3, "2": 2}

    def test_immediate_reaccess_is_distance_one(self):
        assert reuse_distance_histogram([5, 5, 5]) == {"cold": 1, "1": 2}

    def test_distances_bucket_by_power_of_two(self):
        # touch 0..4 then re-touch 0: distance 5 -> bucket 8
        hist = reuse_distance_histogram([0, 1, 2, 3, 4, 0])
        assert hist == {"cold": 5, "8": 1}

    def test_total_mass_equals_accesses(self):
        addresses = [line for _, line in toy_records()]
        hist = reuse_distance_histogram(addresses)
        assert sum(hist.values()) == len(addresses)


# ---------------------------------------------------------------------------
# Replay: workload interface + determinism
# ---------------------------------------------------------------------------


def comparable(result) -> dict:
    payload = result.to_json_dict()
    payload["extras"].pop("sim_seconds", None)  # wall time is not identity
    return payload


class TestTraceReplay:
    def test_trace_workload_resolves_prefix(self):
        info, _ = ingest_toy(name="toy")
        w = trace_workload(info.hash[:8])
        assert w.trace_hash == info.hash
        assert w.name == f"trace:{info.hash[:12]}"
        assert w.memory_intensive

    def test_generator_replays_trace_addresses(self):
        info, _ = ingest_toy()
        g = trace_workload(info.hash).make_generator(0)
        records = toy_records()
        out = list(g.generate(len(records)))
        assert [(r.is_write, r.vline) for r in out] == records
        assert g.replayed_records == len(records)
        assert g.loops == 0
        # writes synthesized data; reads did not
        assert all((r.write_data is not None) == r.is_write for r in out)

    def test_non_loop_trace_exhausts_cleanly(self):
        info, _ = ingest_toy()
        spec = trace_workload(info.hash, loop=False)
        scalar = list(spec.make_generator(0).generate(10_000))
        assert len(scalar) == len(toy_records())
        batched = list(
            spec.make_generator(0).generate_batched(10_000, 64, lambda chunk: None)
        )
        assert [(r.is_write, r.vline, r.gap) for r in batched] == [
            (r.is_write, r.vline, r.gap) for r in scalar
        ]

    def test_limit_caps_the_replayed_records(self):
        info, _ = ingest_toy()
        g = trace_workload(info.hash, limit=10).make_generator(0)
        out = list(g.generate(25))
        assert [(r.is_write, r.vline) for r in out[:10]] == toy_records()[:10]
        assert [(r.is_write, r.vline) for r in out[10:20]] == toy_records()[:10]
        assert g.loops == 2

    def test_per_core_streams_share_addresses_not_data(self):
        info, _ = ingest_toy()
        spec = trace_workload(info.hash)
        a = list(spec.make_generator(0).generate(64))
        b = list(spec.make_generator(1).generate(64))
        assert [(r.is_write, r.vline) for r in a] == [(r.is_write, r.vline) for r in b]
        data_a = [r.write_data for r in a if r.is_write]
        data_b = [r.write_data for r in b if r.is_write]
        assert data_a != data_b  # per-core seeds decorrelate contents

    def test_replay_is_deterministic_across_fresh_state(self):
        info, _ = ingest_toy()
        spec = trace_workload(info.hash)
        first = SimulatedSystem(spec, "dynamic_ptmc", CFG).run()
        clear_record_memo()
        second = SimulatedSystem(spec, "dynamic_ptmc", CFG).run()
        assert comparable(first) == comparable(second)

    @pytest.mark.parametrize("design", ["uncompressed", "static_ptmc", "dynamic_ptmc"])
    def test_scalar_and_batch_paths_identical(self, design):
        info, _ = ingest_toy()
        spec = trace_workload(info.hash)
        scalar = SimulatedSystem(spec, design, CFG.with_(batch_chunk=0)).run()
        batched = SimulatedSystem(spec, design, CFG.with_(batch_chunk=128)).run()
        assert comparable(batched) == comparable(scalar)

    def test_trace_telemetry_registered(self):
        info, _ = ingest_toy()
        result = SimulatedSystem(trace_workload(info.hash), "uncompressed", CFG).run()
        assert result.metrics["trace.replayed_records"] > 0
        assert "trace.synthesized_fills" in result.metrics
        assert "trace.loops" in result.metrics

    def test_synthetic_workloads_carry_no_trace_metrics(self):
        from repro.workloads import get_workload

        result = SimulatedSystem(get_workload("lbm06"), "uncompressed", CFG).run()
        assert not any(k.startswith("trace.") for k in result.metrics)

    def test_runner_resolves_trace_prefix_strings(self):
        info, _ = ingest_toy()
        resolved = runner.resolve_workload(f"trace:{info.hash[:8]}")
        assert isinstance(resolved, TraceWorkload)
        assert resolved.trace_hash == info.hash


# ---------------------------------------------------------------------------
# Disk-cache keying + parallel sweeps
# ---------------------------------------------------------------------------


class TestTraceCaching:
    def test_cache_key_tracks_trace_identity_knobs(self):
        info, _ = ingest_toy()
        base = trace_workload(info.hash)
        key = cache_key(base, "static_ptmc", CFG)
        assert key == cache_key(trace_workload(info.hash), "static_ptmc", CFG)
        for variant in (
            trace_workload(info.hash, limit=10),
            trace_workload(info.hash, seed=7),
            trace_workload(info.hash, loop=False),
            trace_workload(info.hash, mean_gap=12),
            dataclasses.replace(base, trace_hash="f" * 64),
        ):
            assert cache_key(variant, "static_ptmc", CFG) != key

    def test_second_run_served_from_disk_cache(self, tmp_path):
        info, _ = ingest_toy()
        runner.configure_disk_cache(tmp_path / "dc", enabled=True)
        spec = trace_workload(info.hash)
        first = runner.simulate(spec, "static_ptmc", CFG)
        executed = runner.stats.executed
        second = runner.simulate(spec, "static_ptmc", CFG)
        assert runner.stats.executed == executed
        a, b = comparable(first), comparable(second)
        assert b["extras"].pop("cached", None) == 1.0  # served-from-cache marker
        b["extras"].pop("serve_seconds", None)
        assert a == b

    def test_parallel_sweep_matches_serial(self):
        from repro.sim.parallel import sweep_with_report

        info, _ = ingest_toy()
        spec = trace_workload(info.hash)
        serial, _ = sweep_with_report([spec], ["static_ptmc"], CFG)
        clear_record_memo()
        parallel, _ = sweep_with_report([spec], ["static_ptmc"], CFG, jobs=2)
        assert parallel == serial
