"""Unit tests for the MemZip-style (non-commodity) TMC baseline."""

import random

import pytest

from repro.core.memzip import MemZipConfig, MemZipController
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from tests.controller_harness import FakeLLC, category_counts, evicted
from tests.lineutils import quad_friendly_line, random_line, zero_line


@pytest.fixture
def memzip():
    return MemZipController(PhysicalMemory(1 << 16), DRAMSystem(refresh=False))


class TestReadWrite:
    def test_roundtrip_compressible(self, memzip):
        line = quad_friendly_line(3)
        memzip.handle_eviction(evicted(5, line), 0, 0, FakeLLC())
        assert memzip.read_line(5, 0, 0, FakeLLC()).data == line

    def test_roundtrip_incompressible(self, memzip):
        line = random_line(random.Random(8))
        memzip.handle_eviction(evicted(5, line), 0, 0, FakeLLC())
        assert memzip.read_line(5, 0, 0, FakeLLC()).data == line

    def test_no_cofetch(self, memzip):
        memzip.handle_eviction(evicted(5, zero_line()), 0, 0, FakeLLC())
        result = memzip.read_line(5, 0, 0, FakeLLC())
        assert not result.extra_lines

    def test_clean_eviction_free(self, memzip):
        memzip.handle_eviction(evicted(5, zero_line(), dirty=False), 0, 0, FakeLLC())
        assert memzip.dram.stats.total_accesses == 0


class TestVariableBurst:
    def test_compressed_read_occupies_less_bus(self, memzip):
        compressible = quad_friendly_line(1)
        incompressible = random_line(random.Random(3))
        memzip.handle_eviction(evicted(0, compressible), 0, 0, FakeLLC())
        memzip.handle_eviction(evicted(64, incompressible), 0, 0, FakeLLC())
        busy_before = memzip.dram.stats.busy_cycles
        memzip.read_line(0, 10_000, 0, FakeLLC())
        short = memzip.dram.stats.busy_cycles - busy_before
        busy_before = memzip.dram.stats.busy_cycles
        memzip.read_line(64, 20_000, 0, FakeLLC())
        full = memzip.dram.stats.busy_cycles - busy_before
        # metadata hits for both; the data burst is what differs
        assert short < full

    def test_burst_counts_tracked(self, memzip):
        memzip.handle_eviction(evicted(5, zero_line()), 0, 0, FakeLLC())
        assert memzip._burst_count(5) < 8
        memzip.handle_eviction(
            evicted(5, random_line(random.Random(1))), 0, 0, FakeLLC()
        )
        assert memzip._burst_count(5) == 8

    def test_untouched_lines_assume_full_burst(self, memzip):
        assert memzip._burst_count(999) == 8


class TestMetadata:
    def test_read_touches_metadata(self, memzip):
        memzip.read_line(5, 0, 0, FakeLLC())
        assert category_counts(memzip).get("metadata_read", 0) == 1

    def test_metadata_cache_reuse(self, memzip):
        memzip.read_line(5, 0, 0, FakeLLC())
        memzip.read_line(6, 0, 0, FakeLLC())
        assert category_counts(memzip)["metadata_read"] == 1

    def test_size_change_dirties_metadata(self, memzip):
        config = MemZipConfig(cache_bytes=2 * 64, cache_ways=1)
        small = MemZipController(PhysicalMemory(1 << 16), DRAMSystem(refresh=False), config=config)
        small.handle_eviction(evicted(5, zero_line()), 0, 0, FakeLLC())
        for i in range(8):
            small.read_line(i * 2048, 0, 0, FakeLLC())
        assert category_counts(small).get("metadata_write", 0) >= 1


class TestIntegration:
    def test_full_simulation_data_integrity(self):
        from repro.core.base_controller import NullLLCView
        from repro.sim.config import quick_config
        from repro.sim.system import SimulatedSystem
        from repro.workloads import get_workload

        cfg = quick_config(ops_per_core=1000, warmup_ops=0)
        system = SimulatedSystem(get_workload("milc06"), "memzip", cfg)
        system.run()
        system.hierarchy.flush(0)
        null = NullLLCView()
        for core_id, generator in enumerate(system.generators):
            for vline, expected in generator.reference.items():
                paddr = system.page_table.translate(core_id, vline)
                assert system.controller.read_line(paddr, 0, core_id, null).data == expected
