"""Tests for C-Pack dictionary compression."""

import random
import struct

import pytest
from hypothesis import given

from repro.compression.base import CompressionError
from repro.compression.cpack import CPack
from tests.lineutils import any_lines, random_line, zero_line

cpack = CPack()


class TestCPackPatterns:
    def test_zero_line(self):
        payload = cpack.compress(zero_line())
        assert len(payload) == 4  # 16 words x 2 bits
        assert cpack.decompress(payload) == zero_line()

    def test_full_dictionary_match(self):
        line = struct.pack(">16I", *([0xCAFEBABE] * 16))
        payload = cpack.compress(line)
        # first word literal (34 bits), 15 matches (6 bits) = 124 bits
        assert len(payload) <= 16
        assert cpack.decompress(payload) == line

    def test_partial_match_mmmx(self):
        words = [0xAABBCC00 + i for i in range(16)]
        line = struct.pack(">16I", *words)
        payload = cpack.compress(line)
        assert payload is not None
        assert cpack.decompress(payload) == line

    def test_partial_match_mmxx(self):
        words = [0xAABB0000 + i * 257 for i in range(16)]
        line = struct.pack(">16I", *words)
        payload = cpack.compress(line)
        assert payload is not None
        assert cpack.decompress(payload) == line

    def test_zzzx_pattern(self):
        words = [0x000000AA] * 16
        line = struct.pack(">16I", *words)
        payload = cpack.compress(line)
        assert len(payload) <= 24  # 12 bits per word
        assert cpack.decompress(payload) == line

    def test_incompressible(self):
        rng = random.Random(5)
        line = random_line(rng)
        payload = cpack.compress(line)
        if payload is not None:
            assert cpack.decompress(payload) == line

    def test_dictionary_fifo_eviction(self):
        # 17 distinct words forces eviction of the first entry; the 17th..
        # wait, a line only has 16 words, so craft near-overflow instead.
        words = [0x10000000 + (i << 8) for i in range(16)]
        line = struct.pack(">16I", *words)
        payload = cpack.compress(line)
        if payload is not None:
            assert cpack.decompress(payload) == line


class TestCPackErrors:
    def test_wrong_size(self):
        with pytest.raises(ValueError):
            cpack.compress(b"")

    def test_truncated(self):
        payload = cpack.compress(zero_line())
        with pytest.raises(CompressionError):
            cpack.decompress(payload[:1])

    def test_bad_dictionary_index(self):
        # "10" prefix + index 5 with an empty dictionary
        from repro.util.bits import BitWriter

        writer = BitWriter()
        writer.write(0b10, 2)
        writer.write(5, 4)
        with pytest.raises(CompressionError):
            cpack.decompress(writer.to_bytes())


@given(any_lines)
def test_cpack_roundtrip_property(line):
    payload = cpack.compress(line)
    if payload is not None:
        assert len(payload) < 64
        assert cpack.decompress(payload) == line
