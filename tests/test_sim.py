"""Tests for the simulation runner, results and configs."""

import pytest

from repro.sim.config import bench_config, paper_config, quick_config
from repro.sim.results import SimResult, geometric_mean, normalized_bandwidth, weighted_speedup
from repro.sim.runner import clear_cache, compare, simulate, suite_geomean, sweep
from repro.sim.system import DESIGNS, build_controller
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMStats, DRAMSystem
from repro.types import Category
from repro.workloads import get_workload

CFG = quick_config(ops_per_core=600, warmup_ops=200)


class TestConfigs:
    def test_presets_distinct(self):
        assert paper_config().hierarchy.l3_bytes > bench_config().hierarchy.l3_bytes
        assert bench_config().hierarchy.l3_bytes > quick_config().hierarchy.l3_bytes

    def test_with_override(self):
        cfg = bench_config().with_(ops_per_core=123)
        assert cfg.ops_per_core == 123

    def test_hashable(self):
        assert hash(bench_config()) == hash(bench_config())
        assert bench_config() == bench_config()

    def test_paper_scale_values(self):
        cfg = paper_config()
        assert cfg.capacity_lines == 1 << 28  # 16GB
        assert cfg.hierarchy.l3_bytes == 8 * 1024 * 1024


class TestBuildController:
    def test_all_designs_instantiate(self):
        for design in DESIGNS:
            memory = PhysicalMemory(1 << 12)
            dram = DRAMSystem()
            controller, policy = build_controller(design, memory, dram, CFG)
            assert controller is not None

    def test_unknown_design(self):
        with pytest.raises(ValueError):
            build_controller("bogus", PhysicalMemory(1 << 12), DRAMSystem(), CFG)

    def test_dynamic_gets_sampling_policy(self):
        from repro.core.policy import SamplingPolicy

        _, policy = build_controller(
            "dynamic_ptmc", PhysicalMemory(1 << 12), DRAMSystem(), CFG
        )
        assert isinstance(policy, SamplingPolicy)


class TestRunner:
    def test_simulate_returns_result(self):
        result = simulate("lbm06", "uncompressed", CFG)
        assert result.workload == "lbm06"
        assert result.design == "uncompressed"
        assert result.elapsed_cycles > 0
        assert len(result.core_cycles) == CFG.num_cores

    def test_cache_hit_returns_marked_copy(self):
        clear_cache()
        a = simulate("lbm06", "uncompressed", CFG)
        b = simulate("lbm06", "uncompressed", CFG)
        # replays never alias (or mutate) the memoized result; they carry
        # their own serve timing instead of the original's wall clock
        assert b is not a
        assert "cached" not in a.extras
        assert b.extras["cached"] == 1.0
        assert b.extras["serve_seconds"] >= 0.0
        assert b.extras["sim_seconds"] == a.extras["sim_seconds"]
        assert b.core_cycles == a.core_cycles
        assert b.metrics == a.metrics

    def test_cache_bypass(self):
        a = simulate("lbm06", "uncompressed", CFG)
        b = simulate("lbm06", "uncompressed", CFG, use_cache=False)
        assert a is not b
        assert a.core_cycles == b.core_cycles  # deterministic

    def test_clear_cache(self):
        a = simulate("lbm06", "uncompressed", CFG)
        clear_cache()
        b = simulate("lbm06", "uncompressed", CFG)
        assert a is not b

    def test_compare_self_is_one(self):
        assert compare("lbm06", "uncompressed", CFG) == pytest.approx(1.0)

    def test_workload_object_accepted(self):
        result = simulate(get_workload("lbm06"), "uncompressed", CFG)
        assert result.workload == "lbm06"

    def test_sweep_shape(self):
        matrix = sweep([get_workload("lbm06")], ["uncompressed", "ideal"], CFG)
        assert set(matrix) == {"lbm06"}
        assert set(matrix["lbm06"]) == {"uncompressed", "ideal"}

    def test_suite_geomean(self):
        value = suite_geomean([get_workload("lbm06")], "uncompressed", CFG)
        assert value == pytest.approx(1.0)


class TestResults:
    def _result(self, cycles, reads=100, writes=20):
        stats = DRAMStats()
        stats.accesses_by_category = {
            Category.DATA_READ: reads,
            Category.DATA_WRITE: writes,
        }
        stats.reads, stats.writes = reads, writes
        return SimResult(
            workload="w",
            design="d",
            core_cycles=[cycles] * 2,
            core_instructions=[1000] * 2,
            dram=stats,
        )

    def test_weighted_speedup(self):
        fast, slow = self._result(500), self._result(1000)
        assert weighted_speedup(fast, slow) == pytest.approx(2.0)

    def test_weighted_speedup_requires_same_traces(self):
        a = self._result(500)
        b = self._result(500)
        b.core_instructions = [999] * 2
        with pytest.raises(ValueError):
            weighted_speedup(a, b)

    def test_normalized_bandwidth(self):
        design = self._result(500, reads=60, writes=20)
        baseline = self._result(500, reads=80, writes=20)
        norm = normalized_bandwidth(design, baseline)
        assert norm["data_read"] == pytest.approx(0.6)
        assert sum(norm.values()) == pytest.approx(0.8)

    def test_l3_hit_rate(self):
        result = self._result(500)
        result.l3_hits, result.l3_misses = 30, 70
        assert result.l3_hit_rate == pytest.approx(0.3)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_ipc_per_core(self):
        result = self._result(500)
        assert result.ipc_per_core == [2.0, 2.0]


class TestEnergy:
    def test_energy_positive(self):
        from repro.energy import energy_of

        result = simulate("lbm06", "uncompressed", CFG)
        report = energy_of(result)
        assert report.energy_nj > 0
        assert report.power_mw > 0
        assert report.edp > 0

    def test_relative_energy_speedup_consistent(self):
        from repro.energy import relative_energy

        base = simulate("lbm06", "uncompressed", CFG)
        ours = simulate("lbm06", "ideal", CFG)
        rel = relative_energy(ours, base)
        assert rel.speedup == pytest.approx(
            max(base.core_cycles) / max(ours.core_cycles)
        )
        # fewer DRAM accesses and shorter runtime => less energy
        if ours.total_dram_accesses < base.total_dram_accesses and rel.speedup > 1:
            assert rel.energy < 1.05

    def test_identical_runs_unity(self):
        from repro.energy import relative_energy

        base = simulate("lbm06", "uncompressed", CFG)
        rel = relative_energy(base, base)
        assert rel.speedup == pytest.approx(1.0)
        assert rel.energy == pytest.approx(1.0)
        assert rel.edp == pytest.approx(1.0)


class TestAnalysis:
    def test_format_table(self):
        from repro.analysis import format_table

        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_speedups(self):
        from repro.analysis import format_speedups

        text = format_speedups("t", {"w1": {"d1": 1.5}, "w2": {"d1": 0.9}})
        assert "w1" in text and "1.500" in text

    def test_format_bandwidth(self):
        from repro.analysis import format_bandwidth

        text = format_bandwidth("t", {"w": {"data_read": 0.5, "metadata_read": 0.2}})
        assert "total" in text and "0.700" in text

    def test_banner(self):
        from repro.analysis import banner

        assert "hello" in banner("hello")
