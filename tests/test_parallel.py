"""Tests for the process-parallel sweep engine.

The acceptance bar: a parallel sweep must be bitwise-identical to the
serial path (deterministic seeds), and a repeat sweep in a fresh process
must be satisfied entirely from the on-disk cache with zero simulations
executed.
"""

import pytest

from repro.sim import parallel, runner
from repro.sim.config import quick_config
from repro.workloads import get_workload

CFG = quick_config(ops_per_core=300, warmup_ops=100)

WORKLOADS = ["lbm06", "mcf06", "milc06", "soplex06"]
DESIGNS = ["static_ptmc", "dynamic_ptmc", "ideal"]


@pytest.fixture(autouse=True)
def _isolated_runner():
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)
    runner.stats.reset()
    yield
    runner.clear_cache()
    runner.configure_disk_cache(enabled=False)


class TestRunBatch:
    def test_serial_batch_reports_sources(self):
        report = parallel.run_batch(
            [("lbm06", "ideal"), ("lbm06", "uncompressed")], config=CFG
        )
        assert report.counts() == {
            "jobs": 2,
            "executed": 2,
            "memory_hits": 0,
            "disk_hits": 0,
        }
        assert len(report.seconds) == 2
        assert all(s > 0 for s in report.seconds)
        assert report.wall_seconds > 0

    def test_repeat_batch_hits_memory(self):
        tasks = [("lbm06", "ideal")]
        parallel.run_batch(tasks, config=CFG)
        report = parallel.run_batch(tasks, config=CFG)
        assert report.sources == ["memory"]

    def test_parallel_results_adopted_by_parent(self):
        tasks = [("lbm06", "ideal"), ("mcf06", "ideal")]
        parallel.run_batch(tasks, config=CFG, jobs=2)
        # the parent's memo was seeded: serial follow-ups are free
        _, source = runner.simulate_with_source("lbm06", "ideal", CFG)
        assert source == "memory"


class TestParallelMatchesSerial:
    def test_sweep_bitwise_identical(self):
        serial = runner.sweep(
            [get_workload(w) for w in WORKLOADS], DESIGNS, CFG
        )
        runner.clear_cache()
        with_pool = parallel.sweep(WORKLOADS, DESIGNS, CFG, jobs=4)
        assert with_pool == serial  # exact float equality, not approx

    def test_runner_sweep_jobs_delegates(self):
        serial = runner.sweep([get_workload("lbm06")], ["ideal"], CFG)
        runner.clear_cache()
        delegated = runner.sweep([get_workload("lbm06")], ["ideal"], CFG, jobs=2)
        assert delegated == serial

    def test_suite_geomean_matches(self):
        workloads = [get_workload(w) for w in WORKLOADS[:2]]
        serial = runner.suite_geomean(workloads, "ideal", CFG)
        runner.clear_cache()
        assert parallel.suite_geomean(workloads, "ideal", CFG, jobs=2) == serial


class TestDiskCacheIntegration:
    def test_second_cold_run_executes_nothing(self, tmp_path):
        runner.configure_disk_cache(tmp_path)
        _, first = parallel.sweep_with_report(WORKLOADS, DESIGNS, CFG, jobs=4)
        assert first.executed == len(WORKLOADS) * (len(DESIGNS) + 1)
        # cold process: memo gone, only the disk cache remains
        runner.clear_cache()
        matrix, second = parallel.sweep_with_report(WORKLOADS, DESIGNS, CFG, jobs=4)
        assert second.executed == 0
        assert second.counts()["disk_hits"] == first.executed
        assert set(matrix) == set(WORKLOADS)

    def test_explicit_cache_dir_shared_with_workers(self, tmp_path):
        report = parallel.run_batch(
            [("lbm06", "ideal")], config=CFG, jobs=2, cache_dir=str(tmp_path)
        )
        assert report.sources == ["executed"]
        runner.clear_cache()
        report = parallel.run_batch(
            [("lbm06", "ideal")], config=CFG, jobs=2, cache_dir=str(tmp_path)
        )
        assert report.sources == ["disk"]
