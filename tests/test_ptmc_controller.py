"""Unit tests for the PTMC controller's read and eviction paths."""

import pytest

from repro.core.lit import LITPolicy
from repro.core.markers import SlotKind, invert
from repro.core.policy import AlwaysOffPolicy, AlwaysOnPolicy
from repro.core.ptmc import PTMCConfig
from repro.types import Level
from tests.controller_harness import FakeLLC, category_counts, evicted, make_ptmc
from tests.lineutils import pointer_line, quad_friendly_line, zero_line


@pytest.fixture
def ptmc():
    return make_ptmc()


@pytest.fixture
def llc():
    return FakeLLC()


def compressible_lines(n=4):
    return [quad_friendly_line(variant=i) for i in range(n)]


class TestUncompressedPath:
    def test_read_untouched_memory(self, ptmc, llc):
        result = ptmc.read_line(8, 0, 0, llc)
        assert result.data == zero_line()
        assert result.level is Level.UNCOMPRESSED
        assert result.accesses == 1
        assert not result.extra_lines

    def test_dirty_eviction_writes_home(self, ptmc, llc):
        data = bytes(range(64))
        ptmc.handle_eviction(evicted(9, data), 0, 0, llc)
        assert ptmc.memory.read(9) == data
        assert ptmc.read_line(9, 0, 0, llc).data == data

    def test_clean_unrelocated_eviction_is_free(self, ptmc, llc):
        before = ptmc.dram.stats.total_accesses
        ptmc.handle_eviction(evicted(9, zero_line(), dirty=False), 0, 0, llc)
        assert ptmc.dram.stats.total_accesses == before


class TestCompaction:
    def test_quad_compaction(self, ptmc, llc):
        lines = compressible_lines()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        result = ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        assert result.level is Level.QUAD
        # ganged eviction pulled the partners out
        assert sorted(llc.force_evicted) == [9, 10, 11]
        # slot 8 classifies as a quad; homes 9..11 are invalidated
        cls = ptmc.markers.classify(8, ptmc.memory.read(8))
        assert cls.kind is SlotKind.QUAD
        for home in (9, 10, 11):
            assert ptmc.markers.classify(home, ptmc.memory.read(home)).kind is SlotKind.INVALID
        assert result.invalidates == 3

    def test_quad_lines_all_readable(self, ptmc, llc):
        lines = compressible_lines()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        for i, line in enumerate(lines):
            assert ptmc.read_line(8 + i, 0, 0, FakeLLC()).data == line

    def test_quad_read_cofetches_all(self, ptmc, llc):
        lines = compressible_lines()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        result = ptmc.read_line(8, 0, 0, FakeLLC())
        assert result.level is Level.QUAD
        assert set(result.extra_lines) == {9, 10, 11}
        assert result.extra_lines[10] == lines[2]

    def test_pair_compaction_when_quad_absent(self, ptmc, llc):
        lines = [pointer_line(base=0x7F0011000000), pointer_line(base=0x7F0022000000)]
        llc.add(13, lines[1], dirty=True)
        result = ptmc.handle_eviction(evicted(12, lines[0]), 0, 0, llc)
        assert result.level is Level.PAIR
        cls = ptmc.markers.classify(12, ptmc.memory.read(12))
        assert cls.kind is SlotKind.PAIR
        assert ptmc.markers.classify(13, ptmc.memory.read(13)).kind is SlotKind.INVALID

    def test_incompressible_neighbours_stay_uncompressed(self, ptmc, llc):
        import random

        from tests.lineutils import random_line

        rng = random.Random(1)
        llc.add(13, random_line(rng), dirty=True)
        result = ptmc.handle_eviction(evicted(12, random_line(rng)), 0, 0, llc)
        assert result.level is Level.UNCOMPRESSED
        assert result.invalidates == 0
        # the resident neighbour was NOT ganged out (no compaction happened)
        assert 13 in llc.lines

    def test_absent_neighbours_no_compaction(self, ptmc, llc):
        result = ptmc.handle_eviction(evicted(12, zero_line()), 0, 0, llc)
        assert result.level is Level.UNCOMPRESSED

    def test_clean_compaction_counts_clean_writeback(self, ptmc, llc):
        lines = compressible_lines()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=False)
        result = ptmc.handle_eviction(
            evicted(8, lines[0], dirty=False), 0, 0, llc
        )
        assert result.clean_writebacks == 1
        assert category_counts(ptmc)["clean_writeback"] == 1


class TestSteadyState:
    def _compact(self, ptmc, lines):
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)

    def test_clean_unchanged_group_eviction_free(self, ptmc):
        lines = compressible_lines()
        self._compact(ptmc, lines)
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=False, fill_level=Level.QUAD)
        before = ptmc.dram.stats.total_accesses
        result = ptmc.handle_eviction(
            evicted(8, lines[0], dirty=False, fill_level=Level.QUAD), 0, 0, llc
        )
        assert ptmc.dram.stats.total_accesses == before  # no traffic at all
        assert result.writes == 0
        assert result.invalidates == 0

    def test_dirty_group_rewritten_in_place(self, ptmc):
        lines = compressible_lines()
        self._compact(ptmc, lines)
        updated = quad_friendly_line(variant=9)
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=False, fill_level=Level.QUAD)
        result = ptmc.handle_eviction(
            evicted(8, updated, dirty=True, fill_level=Level.QUAD), 0, 0, llc
        )
        assert result.writes == 1
        assert result.invalidates == 0
        assert ptmc.read_line(8, 0, 0, FakeLLC()).data == updated

    def test_update_breaking_group_relocates_members(self, ptmc):
        import random

        from tests.lineutils import random_line

        lines = compressible_lines()
        self._compact(ptmc, lines)
        scrambled = random_line(random.Random(2))
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=False, fill_level=Level.QUAD)
        ptmc.handle_eviction(
            evicted(8, scrambled, dirty=True, fill_level=Level.QUAD), 0, 0, llc
        )
        # everyone must be readable afterwards
        probe = FakeLLC()
        assert ptmc.read_line(8, 0, 0, probe).data == scrambled
        for i in range(1, 4):
            assert ptmc.read_line(8 + i, 0, 0, probe).data == lines[i]

    def test_quad_to_pairs_transition(self, ptmc):
        lines = compressible_lines()
        self._compact(ptmc, lines)
        # replace the first pair with pointer data: quad no longer fits,
        # but each pair still does
        new0 = pointer_line(base=0x7F00AA000000)
        new1 = pointer_line(base=0x7F00BB000000)
        llc = FakeLLC()
        llc.add(9, new1, dirty=True, fill_level=Level.QUAD)
        llc.add(10, lines[2], dirty=False, fill_level=Level.QUAD)
        llc.add(11, lines[3], dirty=False, fill_level=Level.QUAD)
        result = ptmc.handle_eviction(
            evicted(8, new0, dirty=True, fill_level=Level.QUAD), 0, 0, llc
        )
        assert result.level is Level.PAIR
        probe = FakeLLC()
        assert ptmc.read_line(8, 0, 0, probe).data == new0
        assert ptmc.read_line(9, 0, 0, probe).data == new1
        assert ptmc.read_line(10, 0, 0, probe).data == lines[2]
        assert ptmc.read_line(11, 0, 0, probe).data == lines[3]


class TestLLPIntegration:
    def test_prediction_learns_from_reads(self, ptmc, llc):
        lines = compressible_lines()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        # first predicted read of line 9 may mispredict; second must not
        ptmc.read_line(9, 0, 0, FakeLLC())
        result = ptmc.read_line(9, 0, 0, FakeLLC())
        assert result.accesses == 1
        assert not result.mispredicted

    def test_mispredict_counts_extra_access(self, ptmc, llc):
        lines = compressible_lines()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        # LCT still says UNCOMPRESSED for this page => reads home, finds
        # Marker-IL, retries at the quad slot
        result = ptmc.read_line(9, 0, 0, FakeLLC())
        if result.mispredicted:
            assert result.accesses >= 2
            assert category_counts(ptmc).get("mispredict_read", 0) >= 1

    def test_group_base_never_predicted(self, ptmc, llc):
        before = ptmc.llp.predictions
        ptmc.read_line(8, 0, 0, llc)
        assert ptmc.llp.predictions == before


class TestInversion:
    def test_colliding_write_inverted_and_tracked(self, ptmc, llc):
        data = b"\x33" * 60 + ptmc.markers.marker(9, Level.PAIR)
        ptmc.handle_eviction(evicted(9, data), 0, 0, llc)
        assert 9 in ptmc.lit
        assert ptmc.memory.read(9) == invert(data)
        assert ptmc.inversions == 1

    def test_inverted_line_reads_back_correctly(self, ptmc, llc):
        data = b"\x33" * 60 + ptmc.markers.marker(9, Level.QUAD)
        ptmc.handle_eviction(evicted(9, data), 0, 0, llc)
        assert ptmc.read_line(9, 0, 0, llc).data == data

    def test_invalid_marker_collision_inverted(self, ptmc, llc):
        data = ptmc.markers.invalid_marker(9)
        ptmc.handle_eviction(evicted(9, data), 0, 0, llc)
        assert 9 in ptmc.lit
        assert ptmc.read_line(9, 0, 0, llc).data == data

    def test_rewrite_without_collision_clears_lit(self, ptmc, llc):
        data = b"\x33" * 60 + ptmc.markers.marker(9, Level.PAIR)
        ptmc.handle_eviction(evicted(9, data), 0, 0, llc)
        benign = bytes(range(64))
        ptmc.handle_eviction(evicted(9, benign), 0, 0, llc)
        assert 9 not in ptmc.lit
        assert ptmc.read_line(9, 0, 0, llc).data == benign

    def test_tail_matching_inverted_marker_not_inverted(self, ptmc, llc):
        # data that looks like an inverted line but never collided
        data = b"\x44" * 60 + invert(ptmc.markers.marker(9, Level.PAIR))
        ptmc.handle_eviction(evicted(9, data), 0, 0, llc)
        assert 9 not in ptmc.lit
        assert ptmc.read_line(9, 0, 0, llc).data == data


class TestLITOverflow:
    def test_rekey_sweep_preserves_contents(self, llc):
        config = PTMCConfig(lit_capacity=2, lit_policy=LITPolicy.REKEY)
        ptmc = make_ptmc(config=config)
        # fill memory with a compressed quad and some plain lines
        lines = compressible_lines()
        setup = FakeLLC()
        for i in range(1, 4):
            setup.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, setup)
        plain = bytes(range(64))
        ptmc.handle_eviction(evicted(20, plain), 0, 0, llc)
        # force collisions until the LIT overflows and a rekey happens
        for addr in (30, 31, 33):
            data = b"\x55" * 60 + ptmc.markers.marker(addr, Level.PAIR)
            ptmc.handle_eviction(evicted(addr, data), 0, 0, FakeLLC())
        assert ptmc.rekeys >= 1
        # everything still reads back correctly under the new markers
        probe = FakeLLC()
        for i in range(4):
            assert ptmc.read_line(8 + i, 0, 0, probe).data == lines[i]
        assert ptmc.read_line(20, 0, 0, probe).data == plain

    def test_memory_mapped_policy_spills(self, llc):
        config = PTMCConfig(lit_capacity=1, lit_policy=LITPolicy.MEMORY_MAPPED)
        ptmc = make_ptmc(config=config)
        for addr in (30, 31):
            data = b"\x55" * 60 + ptmc.markers.marker(addr, Level.PAIR)
            ptmc.handle_eviction(evicted(addr, data), 0, 0, llc)
        assert ptmc.lit.overflows == 1
        # both lines remain readable; the spilled one costs a LIT access
        assert ptmc.read_line(30, 0, 0, llc).data[-4:] == ptmc.markers.marker(30, Level.PAIR)
        assert ptmc.read_line(31, 0, 0, llc).data[-4:] == ptmc.markers.marker(31, Level.PAIR)
        assert category_counts(ptmc).get("maintenance", 0) >= 1


class TestPolicyIntegration:
    def test_disabled_compression_skips_compaction(self, llc):
        ptmc = make_ptmc(policy=AlwaysOffPolicy())
        lines = compressible_lines()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        result = ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        assert result.level is Level.UNCOMPRESSED
        assert 9 in llc.lines  # neighbours untouched

    def test_sampled_group_compresses_despite_disabled_policy(self):
        ptmc = make_ptmc(policy=AlwaysOffPolicy())
        llc = FakeLLC(sampled_addrs={2})  # group index 2 = lines 8..11
        lines = compressible_lines()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=True)
        result = ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, llc)
        assert result.level is Level.QUAD

    def test_disabled_preserves_existing_groups(self):
        ptmc = make_ptmc(policy=AlwaysOnPolicy())
        lines = compressible_lines()
        setup = FakeLLC()
        for i in range(1, 4):
            setup.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, setup)
        # switch compression off; clean eviction of the group must be free
        ptmc.policy = AlwaysOffPolicy()
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=False, fill_level=Level.QUAD)
        before = ptmc.dram.stats.total_accesses
        ptmc.handle_eviction(
            evicted(8, lines[0], dirty=False, fill_level=Level.QUAD), 0, 0, llc
        )
        assert ptmc.dram.stats.total_accesses == before
        # quad stays resident in memory
        assert ptmc.markers.classify(8, ptmc.memory.read(8)).kind is SlotKind.QUAD

    def test_disabled_dirty_group_rewritten_compressed(self):
        ptmc = make_ptmc(policy=AlwaysOnPolicy())
        lines = compressible_lines()
        setup = FakeLLC()
        for i in range(1, 4):
            setup.add(8 + i, lines[i], dirty=True)
        ptmc.handle_eviction(evicted(8, lines[0]), 0, 0, setup)
        ptmc.policy = AlwaysOffPolicy()
        updated = quad_friendly_line(variant=5)
        llc = FakeLLC()
        for i in range(1, 4):
            llc.add(8 + i, lines[i], dirty=False, fill_level=Level.QUAD)
        result = ptmc.handle_eviction(
            evicted(8, updated, dirty=True, fill_level=Level.QUAD), 0, 0, llc
        )
        assert result.writes == 1
        assert ptmc.read_line(8, 0, 0, FakeLLC()).data == updated


class TestStorageBits:
    def test_under_300_bytes(self, ptmc):
        assert ptmc.total_storage_bytes() < 300

    def test_structures_present(self, ptmc):
        bits = ptmc.storage_bits()
        assert bits["line_inversion_table"] == 64 * 8
        assert bits["line_location_predictor"] == 128 * 8
