"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "lbm06", "dynamic_ptmc"])
        assert args.command == "run"
        assert args.workload == "lbm06"
        assert args.design == "dynamic_ptmc"

    def test_bad_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lbm06", "warp_drive"])

    def test_ops_override(self):
        args = build_parser().parse_args(["--ops", "123", "list"])
        assert args.ops == 123


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dynamic_ptmc" in out
        assert "lbm06" in out
        assert "mix1" in out

    def test_run(self, capsys):
        assert main(["--ops", "200", "--warmup", "100", "run", "lbm06", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out
        assert "DRAM accesses" in out

    def test_compare(self, capsys):
        assert main(["--ops", "200", "--warmup", "100", "compare", "libquantum06"]) == 0
        out = capsys.readouterr().out
        assert "static_ptmc" in out

    def test_suite(self, capsys):
        assert main(["--ops", "150", "--warmup", "50", "suite", "spec17", "uncompressed"]) == 0
        out = capsys.readouterr().out
        assert "geomean: 1.000" in out
