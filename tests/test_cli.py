"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.sim import runner


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Keep CLI-enabled disk caching away from the user's real cache dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "simcache"))
    yield
    runner.configure_disk_cache(enabled=False)
    runner.clear_cache()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "lbm06", "dynamic_ptmc"])
        assert args.command == "run"
        assert args.workload == "lbm06"
        assert args.design == "dynamic_ptmc"

    def test_bad_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lbm06", "warp_drive"])

    def test_ops_override(self):
        args = build_parser().parse_args(["--ops", "123", "list"])
        assert args.ops == 123


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dynamic_ptmc" in out
        assert "lbm06" in out
        assert "mix1" in out

    def test_run(self, capsys):
        assert main(["--ops", "200", "--warmup", "100", "run", "lbm06", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out
        assert "DRAM accesses" in out

    def test_stats(self, capsys):
        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "dynamic_ptmc"]
        ) == 0
        out = capsys.readouterr().out
        assert "dram.row_hits" in out
        assert "ptmc.llp.accuracy" in out
        assert "policy.benefits" in out

    def test_stats_json(self, capsys):
        import json

        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "ideal", "--json"]
        ) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert "llc.hits" in metrics
        assert "core.0.cycles" in metrics

    def test_compare(self, capsys):
        assert main(["--ops", "200", "--warmup", "100", "compare", "libquantum06"]) == 0
        out = capsys.readouterr().out
        assert "static_ptmc" in out

    def test_suite(self, capsys):
        assert main(["--ops", "150", "--warmup", "50", "suite", "spec17", "uncompressed"]) == 0
        out = capsys.readouterr().out
        assert "geomean: 1.000" in out

    def test_sweep(self, capsys):
        assert main(
            ["--ops", "150", "--warmup", "50", "sweep", "spec17", "--designs", "ideal"]
        ) == 0
        out = capsys.readouterr().out
        assert "ideal" in out
        assert "geomean" in out
        assert "executed" in out

    def test_sweep_parallel_matches_serial(self, capsys):
        args = ["--ops", "150", "--warmup", "50", "sweep", "spec17", "--designs", "ideal"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        runner.clear_cache()
        runner.configure_disk_cache(enabled=False)
        assert main(
            ["--no-disk-cache", *args, "--jobs", "2"]
        ) == 0
        parallel_out = capsys.readouterr().out
        # the speedup table lines must be identical between the two paths
        def rows(text):
            prefixes = ("lbm", "mcf", "cam4", "fotonik", "roms")
            return [ln for ln in text.splitlines() if ln.strip().startswith(prefixes)]
        assert rows(parallel_out) == rows(serial_out)

    def test_sweep_dump_metrics(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(
            [
                "--ops", "150", "--warmup", "50",
                "sweep", "spec17", "--designs", "ideal",
                "--dump-metrics", str(out_path),
            ]
        ) == 0
        assert "wrote metrics" in capsys.readouterr().out
        rows = json.loads(out_path.read_text())
        assert rows, "expected one row per (workload, design) job"
        for row in rows:
            assert {"workload", "design", "metrics"} <= set(row)
            assert "dram.row_hits" in row["metrics"]

    def test_sweep_dump_metrics_stdout(self, capsys):
        import json

        assert main(
            [
                "--ops", "150", "--warmup", "50",
                "sweep", "spec17", "--designs", "ideal",
                "--dump-metrics", "-",
            ]
        ) == 0
        out = capsys.readouterr().out
        payload = out[out.index("[") :]
        rows = json.loads(payload)
        assert all("metrics" in row for row in rows)

    def test_sweep_rejects_unknown_design(self, capsys):
        assert main(["sweep", "spec17", "--designs", "warp_drive"]) == 2
        assert "unknown designs" in capsys.readouterr().out

    def test_cache_stats_and_clear(self, capsys):
        assert main(["--ops", "150", "--warmup", "50", "run", "lbm06", "ideal"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out

    def test_cache_stats_json(self, capsys):
        import json

        assert main(["--ops", "150", "--warmup", "50", "run", "lbm06", "ideal"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] >= 1
        assert "bytes" in stats and "dir" in stats

    def test_stats_metrics_filter(self, capsys):
        assert main(
            [
                "--ops", "200", "--warmup", "100",
                "stats", "lbm06", "ideal",
                "--metrics", "dram.reads,runner.executed",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "dram.reads" in out
        assert "runner.executed" in out
        assert "llc.hits" not in out

    def test_stats_metrics_filter_json(self, capsys):
        import json

        assert main(
            [
                "--ops", "200", "--warmup", "100",
                "stats", "lbm06", "ideal",
                "--json", "--metrics", "llc.misses",
            ]
        ) == 0
        assert list(json.loads(capsys.readouterr().out)) == ["llc.misses"]

    def test_stats_missing_metric_exits_cleanly(self, capsys):
        """Satellite: a cached result lacking a metric must not traceback."""
        args = ["--ops", "200", "--warmup", "100", "stats", "lbm06", "ideal"]
        assert main(args) == 0  # populate the cache
        capsys.readouterr()
        assert main([*args, "--metrics", "added.in.a.later.pr"]) == 2
        out = capsys.readouterr().out
        assert "metrics not present in this result" in out
        assert "Traceback" not in out


class TestTimelineCLI:
    ARGS = ["--ops", "200", "--warmup", "100", "timeline", "lbm06", "ideal"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["timeline", "lbm06", "ideal"])
        assert args.command == "timeline"
        assert args.interval == 2000
        assert args.metrics is None
        assert not args.no_warmup

    def test_timeline_renders_sparklines(self, capsys):
        assert main([*self.ARGS, "--interval", "300"]) == 0
        out = capsys.readouterr().out
        assert "samples @ 300 accesses/interval" in out
        assert "dram.reads" in out
        assert "warmup | measured" in out
        assert any(glyph in out for glyph in "▁▂▃▄▅▆▇█")

    def test_timeline_json_is_the_raw_series(self, capsys):
        import json

        assert main([*self.ARGS, "--interval", "300", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interval"] == 300
        assert payload["points"]
        assert all(p["phase"] in ("warmup", "measured") for p in payload["points"])

    def test_timeline_metric_selection(self, capsys):
        assert main(
            [*self.ARGS, "--interval", "300", "--metrics", "llc.misses"]
        ) == 0
        out = capsys.readouterr().out
        assert "llc.misses" in out
        assert "dram.reads" not in out

    def test_timeline_unknown_metric_is_an_error(self, capsys):
        assert main(
            [*self.ARGS, "--interval", "300", "--metrics", "no.such.path"]
        ) == 2
        out = capsys.readouterr().out
        assert "series not present in this result" in out
        assert "available:" in out

    def test_timeline_missing_series_on_cached_result_exits_cleanly(self, capsys):
        """Satellite: a cached result lacking a series must not traceback."""
        assert main([*self.ARGS, "--interval", "300"]) == 0
        capsys.readouterr()
        before = runner.stats.executed
        assert main(
            [*self.ARGS, "--interval", "300", "--metrics", "added.in.a.later.pr"]
        ) == 2
        assert runner.stats.executed == before  # second call hit the cache
        out = capsys.readouterr().out
        assert "series not present in this result" in out
        assert "Traceback" not in out

    def test_timeline_replays_from_cache_with_series(self, capsys):
        assert main([*self.ARGS, "--interval", "300"]) == 0
        capsys.readouterr()
        before = runner.stats.executed
        assert main([*self.ARGS, "--interval", "300"]) == 0
        assert "samples @ 300" in capsys.readouterr().out
        assert runner.stats.executed == before  # served from cache

    def test_trace_out_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs.tracing import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        assert main(
            [
                "--ops", "200", "--warmup", "100",
                "--trace-out", str(trace_path),
                "run", "lbm06", "ideal",
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) > 0
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"sim.run", "sim.phase", "runner.execute"} <= names


class TestSortedKeyOrdering:
    """The stable-ordering satellite: dumped JSON keys arrive sorted."""

    def test_stats_json_keys_are_sorted(self, capsys):
        import json

        assert main(
            ["--ops", "150", "--warmup", "50", "stats", "lbm06", "ideal", "--json"]
        ) == 0
        text = capsys.readouterr().out
        keys = list(json.loads(text))
        assert keys == sorted(keys)
        # byte-level too: the serialized order is the sorted order
        assert text.index('"core.0.cycles"') < text.index('"dram.reads"')

    def test_dump_metrics_rows_are_sorted(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(
            [
                "--ops", "150", "--warmup", "50",
                "sweep", "spec17", "--designs", "ideal",
                "--dump-metrics", str(out_path),
            ]
        ) == 0
        capsys.readouterr()
        for row in json.loads(out_path.read_text()):
            keys = list(row["metrics"])
            assert keys == sorted(keys)

    def test_metrics_matrix_is_sorted_at_source(self):
        from repro.sim.config import bench_config
        from repro.sim.parallel import run_batch

        report = run_batch(
            [("lbm06", "ideal")],
            config=bench_config(ops_per_core=150, warmup_ops=50),
        )
        for row in report.metrics_matrix():
            keys = list(row["metrics"])
            assert keys == sorted(keys)

    def test_result_json_dict_orders_metrics_and_extras(self):
        from repro.sim.config import quick_config
        from repro.sim.system import SimulatedSystem
        from repro.workloads.generators import spec_like

        result = SimulatedSystem(
            spec_like("ordered", seed=5),
            "static_ptmc",
            quick_config(ops_per_core=200, warmup_ops=100),
        ).run()
        payload = result.to_json_dict()
        assert list(payload["metrics"]) == sorted(payload["metrics"])
        assert list(payload["extras"]) == sorted(payload["extras"])


class TestRunnerTelemetrySatellite:
    def test_stats_reports_runner_counters(self, capsys):
        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "ideal"]
        ) == 0
        out = capsys.readouterr().out
        assert "runner.executed" in out
        assert "runner.disk.stores" in out

    def test_stats_json_merges_runner_paths(self, capsys):
        import json

        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "ideal", "--json"]
        ) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["runner.executed"] >= 1
        assert "runner.memory_hits" in metrics
        assert "runner.disk.hits" in metrics


class TestCachePrune:
    def test_prune_requires_older_than(self, capsys):
        assert main(["cache", "prune"]) == 2
        assert "--older-than" in capsys.readouterr().out

    def test_prune_reports_age_cutoff(self, capsys):
        import os

        assert main(["--ops", "150", "--warmup", "50", "run", "lbm06", "ideal"]) == 0
        capsys.readouterr()
        cache = runner.disk_cache()
        for path in cache.root.glob("*/*.json"):
            os.utime(path, (1, 1))
        assert main(["cache", "prune", "--older-than", "1"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert len(cache) == 0

    def test_stats_show_entry_ages(self, capsys):
        assert main(["--ops", "150", "--warmup", "50", "run", "lbm06", "ideal"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "oldest_age_seconds" in out
        assert "newest_age_seconds" in out


class TestServiceParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8035
        assert args.workers == 2
        assert args.max_attempts == 3
        assert args.drain_seconds == 30.0

    def test_submit_args(self):
        args = build_parser().parse_args(
            ["submit", "lbm06", "dynamic_ptmc", "--priority", "4", "--wait"]
        )
        assert args.command == "submit"
        assert args.workload == "lbm06"
        assert args.priority == 4
        assert args.wait

    def test_submit_rejects_unknown_design(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "lbm06", "warp_drive"])

    def test_jobs_state_filter(self):
        args = build_parser().parse_args(["jobs", "--state", "queued"])
        assert args.state == "queued"

    def test_wait_and_result_and_cancel(self):
        for verb in ("wait", "result", "cancel"):
            args = build_parser().parse_args([verb, "abc123"])
            assert args.command == verb
            assert args.job_id == "abc123"

    def test_unreachable_service_is_an_error_not_a_crash(self, capsys):
        assert main(["jobs", "--url", "http://127.0.0.1:1"]) == 1
        assert "service error" in capsys.readouterr().out


class TestPolicyCLI:
    def test_policies_verb_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("lru", "fifo", "random", "srrip", "pref_lru"):
            assert name in out
        assert "default" in out

    def test_llc_policy_flag_parsed(self):
        args = build_parser().parse_args(
            ["--llc-policy", "srrip", "run", "lbm06", "ideal"]
        )
        assert args.llc_policy == "srrip"

    def test_llc_policy_defaults_to_none(self):
        args = build_parser().parse_args(["run", "lbm06", "ideal"])
        assert args.llc_policy is None

    def test_unknown_policy_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--llc-policy", "belady", "run", "lbm06", "ideal"])

    def test_run_with_policy_override(self, capsys):
        assert main(
            [
                "--ops", "200", "--warmup", "100",
                "--llc-policy", "fifo",
                "run", "lbm06", "static_ptmc",
            ]
        ) == 0
        assert "weighted speedup" in capsys.readouterr().out

    def test_stats_expose_policy_counters(self, capsys):
        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "prefetch"]
        ) == 0
        out = capsys.readouterr().out
        assert "llc.policy_evictions" in out
        assert "llc.wasted_prefetches" in out


class TestTraceCLI:
    @pytest.fixture(autouse=True)
    def _isolated_trace_store(self, tmp_path, monkeypatch):
        import repro.traces.store as store_module
        from repro.traces.replay import clear_record_memo
        from repro.traces.store import configure_trace_store

        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        configure_trace_store(tmp_path / "traces")
        clear_record_memo()
        yield
        clear_record_memo()
        store_module._default_store = None

    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "toy.trace"
        lines = ["# toy trace"]
        for i in range(200):
            op = "w" if i % 4 == 0 else "r"
            lines.append(f"{op} {((0x4000 + (i * 7) % 40) * 64):#x}")
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_parser_subcommands(self):
        args = build_parser().parse_args(["trace", "ingest", "t.trace", "--lenient"])
        assert args.command == "trace" and args.trace_command == "ingest"
        assert args.lenient
        args = build_parser().parse_args(["trace", "run", "abc123", "--no-loop"])
        assert args.trace_command == "run"
        assert args.trace_hash == "abc123"
        assert args.no_loop

    def test_ingest_list_info_run_round_trip(self, capsys, trace_file):
        assert main(["trace", "ingest", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "ingested: trace:" in out
        digest = [ln for ln in out.splitlines() if ln.startswith("full hash:")][0]
        digest = digest.split()[-1]

        assert main(["trace", "ingest", str(trace_file), "--name", "again"]) == 0
        assert "deduplicated" in capsys.readouterr().out

        assert main(["trace", "list"]) == 0
        out = capsys.readouterr().out
        assert digest[:12] in out and "toy.trace" in out

        assert main(["trace", "info", digest[:8]]) == 0
        out = capsys.readouterr().out
        assert "reuse distance" in out

        assert main(
            [
                "--ops", "150", "--warmup", "100",
                "trace", "run", digest[:12], "--designs", "ideal",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert f"trace:{digest[:12]}" in out
        assert "replayed" in out

    def test_trace_run_hits_disk_cache_on_second_invocation(self, capsys, trace_file):
        assert main(["trace", "ingest", str(trace_file)]) == 0
        out = capsys.readouterr().out
        digest = [ln for ln in out.splitlines() if ln.startswith("full hash:")][0]
        digest = digest.split()[-1]
        args = [
            "--ops", "150", "--warmup", "100",
            "trace", "run", digest[:12], "--designs", "ideal",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert " 0 executed" in second  # runs now served from cache

        def table_rows(text):
            return [ln for ln in text.splitlines() if ln.startswith("ideal")]

        assert table_rows(first) == table_rows(second)

    def test_unknown_trace_hash_is_a_clean_error(self, capsys):
        assert main(["trace", "info", "feedface"]) == 2
        assert "trace error" in capsys.readouterr().out
        assert main(["trace", "run", "feedface"]) == 2
        assert "trace error" in capsys.readouterr().out

    def test_missing_trace_file_is_a_clean_error(self, capsys, tmp_path):
        assert main(["trace", "ingest", str(tmp_path / "nope.trace")]) == 2
        assert "no such trace file" in capsys.readouterr().out

    def test_strict_ingest_reports_line_number(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text("r 0x40\nwat\n")
        assert main(["trace", "ingest", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "line 2" in out
        assert main(["trace", "ingest", str(bad), "--lenient"]) == 0
        assert "1 lines skipped" in capsys.readouterr().out

    def test_committed_example_trace_ingests(self, capsys):
        from pathlib import Path

        example = Path(__file__).resolve().parents[1] / "examples" / "traces"
        assert main(["trace", "ingest", str(example / "example_mix.trace")]) == 0
        out = capsys.readouterr().out
        assert "ingested: trace:" in out
        assert "13056 records" in out
