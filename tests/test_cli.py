"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.sim import runner


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Keep CLI-enabled disk caching away from the user's real cache dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "simcache"))
    yield
    runner.configure_disk_cache(enabled=False)
    runner.clear_cache()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "lbm06", "dynamic_ptmc"])
        assert args.command == "run"
        assert args.workload == "lbm06"
        assert args.design == "dynamic_ptmc"

    def test_bad_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lbm06", "warp_drive"])

    def test_ops_override(self):
        args = build_parser().parse_args(["--ops", "123", "list"])
        assert args.ops == 123


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dynamic_ptmc" in out
        assert "lbm06" in out
        assert "mix1" in out

    def test_run(self, capsys):
        assert main(["--ops", "200", "--warmup", "100", "run", "lbm06", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out
        assert "DRAM accesses" in out

    def test_stats(self, capsys):
        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "dynamic_ptmc"]
        ) == 0
        out = capsys.readouterr().out
        assert "dram.row_hits" in out
        assert "ptmc.llp.accuracy" in out
        assert "policy.benefits" in out

    def test_stats_json(self, capsys):
        import json

        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "ideal", "--json"]
        ) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert "llc.hits" in metrics
        assert "core.0.cycles" in metrics

    def test_compare(self, capsys):
        assert main(["--ops", "200", "--warmup", "100", "compare", "libquantum06"]) == 0
        out = capsys.readouterr().out
        assert "static_ptmc" in out

    def test_suite(self, capsys):
        assert main(["--ops", "150", "--warmup", "50", "suite", "spec17", "uncompressed"]) == 0
        out = capsys.readouterr().out
        assert "geomean: 1.000" in out

    def test_sweep(self, capsys):
        assert main(
            ["--ops", "150", "--warmup", "50", "sweep", "spec17", "--designs", "ideal"]
        ) == 0
        out = capsys.readouterr().out
        assert "ideal" in out
        assert "geomean" in out
        assert "executed" in out

    def test_sweep_parallel_matches_serial(self, capsys):
        args = ["--ops", "150", "--warmup", "50", "sweep", "spec17", "--designs", "ideal"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        runner.clear_cache()
        runner.configure_disk_cache(enabled=False)
        assert main(
            ["--no-disk-cache", *args, "--jobs", "2"]
        ) == 0
        parallel_out = capsys.readouterr().out
        # the speedup table lines must be identical between the two paths
        def rows(text):
            prefixes = ("lbm", "mcf", "cam4", "fotonik", "roms")
            return [ln for ln in text.splitlines() if ln.strip().startswith(prefixes)]
        assert rows(parallel_out) == rows(serial_out)

    def test_sweep_dump_metrics(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(
            [
                "--ops", "150", "--warmup", "50",
                "sweep", "spec17", "--designs", "ideal",
                "--dump-metrics", str(out_path),
            ]
        ) == 0
        assert "wrote metrics" in capsys.readouterr().out
        rows = json.loads(out_path.read_text())
        assert rows, "expected one row per (workload, design) job"
        for row in rows:
            assert {"workload", "design", "metrics"} <= set(row)
            assert "dram.row_hits" in row["metrics"]

    def test_sweep_dump_metrics_stdout(self, capsys):
        import json

        assert main(
            [
                "--ops", "150", "--warmup", "50",
                "sweep", "spec17", "--designs", "ideal",
                "--dump-metrics", "-",
            ]
        ) == 0
        out = capsys.readouterr().out
        payload = out[out.index("[") :]
        rows = json.loads(payload)
        assert all("metrics" in row for row in rows)

    def test_sweep_rejects_unknown_design(self, capsys):
        assert main(["sweep", "spec17", "--designs", "warp_drive"]) == 2
        assert "unknown designs" in capsys.readouterr().out

    def test_cache_stats_and_clear(self, capsys):
        assert main(["--ops", "150", "--warmup", "50", "run", "lbm06", "ideal"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out


class TestTimelineCLI:
    ARGS = ["--ops", "200", "--warmup", "100", "timeline", "lbm06", "ideal"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["timeline", "lbm06", "ideal"])
        assert args.command == "timeline"
        assert args.interval == 2000
        assert args.metrics is None
        assert not args.no_warmup

    def test_timeline_renders_sparklines(self, capsys):
        assert main([*self.ARGS, "--interval", "300"]) == 0
        out = capsys.readouterr().out
        assert "samples @ 300 accesses/interval" in out
        assert "dram.reads" in out
        assert "warmup | measured" in out
        assert any(glyph in out for glyph in "▁▂▃▄▅▆▇█")

    def test_timeline_json_is_the_raw_series(self, capsys):
        import json

        assert main([*self.ARGS, "--interval", "300", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interval"] == 300
        assert payload["points"]
        assert all(p["phase"] in ("warmup", "measured") for p in payload["points"])

    def test_timeline_metric_selection(self, capsys):
        assert main(
            [*self.ARGS, "--interval", "300", "--metrics", "llc.misses"]
        ) == 0
        out = capsys.readouterr().out
        assert "llc.misses" in out
        assert "dram.reads" not in out

    def test_timeline_unknown_metric_is_an_error(self, capsys):
        assert main(
            [*self.ARGS, "--interval", "300", "--metrics", "no.such.path"]
        ) == 2
        assert "unknown metric path" in capsys.readouterr().out

    def test_timeline_replays_from_cache_with_series(self, capsys):
        assert main([*self.ARGS, "--interval", "300"]) == 0
        capsys.readouterr()
        before = runner.stats.executed
        assert main([*self.ARGS, "--interval", "300"]) == 0
        assert "samples @ 300" in capsys.readouterr().out
        assert runner.stats.executed == before  # served from cache

    def test_trace_out_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs.tracing import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        assert main(
            [
                "--ops", "200", "--warmup", "100",
                "--trace-out", str(trace_path),
                "run", "lbm06", "ideal",
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) > 0
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"sim.run", "sim.phase", "runner.execute"} <= names


class TestSortedKeyOrdering:
    """The stable-ordering satellite: dumped JSON keys arrive sorted."""

    def test_stats_json_keys_are_sorted(self, capsys):
        import json

        assert main(
            ["--ops", "150", "--warmup", "50", "stats", "lbm06", "ideal", "--json"]
        ) == 0
        text = capsys.readouterr().out
        keys = list(json.loads(text))
        assert keys == sorted(keys)
        # byte-level too: the serialized order is the sorted order
        assert text.index('"core.0.cycles"') < text.index('"dram.reads"')

    def test_dump_metrics_rows_are_sorted(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(
            [
                "--ops", "150", "--warmup", "50",
                "sweep", "spec17", "--designs", "ideal",
                "--dump-metrics", str(out_path),
            ]
        ) == 0
        capsys.readouterr()
        for row in json.loads(out_path.read_text()):
            keys = list(row["metrics"])
            assert keys == sorted(keys)

    def test_metrics_matrix_is_sorted_at_source(self):
        from repro.sim.config import bench_config
        from repro.sim.parallel import run_batch

        report = run_batch(
            [("lbm06", "ideal")],
            config=bench_config(ops_per_core=150, warmup_ops=50),
        )
        for row in report.metrics_matrix():
            keys = list(row["metrics"])
            assert keys == sorted(keys)

    def test_result_json_dict_orders_metrics_and_extras(self):
        from repro.sim.config import quick_config
        from repro.sim.system import SimulatedSystem
        from repro.workloads.generators import spec_like

        result = SimulatedSystem(
            spec_like("ordered", seed=5),
            "static_ptmc",
            quick_config(ops_per_core=200, warmup_ops=100),
        ).run()
        payload = result.to_json_dict()
        assert list(payload["metrics"]) == sorted(payload["metrics"])
        assert list(payload["extras"]) == sorted(payload["extras"])


class TestRunnerTelemetrySatellite:
    def test_stats_reports_runner_counters(self, capsys):
        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "ideal"]
        ) == 0
        out = capsys.readouterr().out
        assert "runner.executed" in out
        assert "runner.disk.stores" in out

    def test_stats_json_merges_runner_paths(self, capsys):
        import json

        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "ideal", "--json"]
        ) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["runner.executed"] >= 1
        assert "runner.memory_hits" in metrics
        assert "runner.disk.hits" in metrics


class TestCachePrune:
    def test_prune_requires_older_than(self, capsys):
        assert main(["cache", "prune"]) == 2
        assert "--older-than" in capsys.readouterr().out

    def test_prune_reports_age_cutoff(self, capsys):
        import os

        assert main(["--ops", "150", "--warmup", "50", "run", "lbm06", "ideal"]) == 0
        capsys.readouterr()
        cache = runner.disk_cache()
        for path in cache.root.glob("*/*.json"):
            os.utime(path, (1, 1))
        assert main(["cache", "prune", "--older-than", "1"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert len(cache) == 0

    def test_stats_show_entry_ages(self, capsys):
        assert main(["--ops", "150", "--warmup", "50", "run", "lbm06", "ideal"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "oldest_age_seconds" in out
        assert "newest_age_seconds" in out


class TestServiceParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8035
        assert args.workers == 2
        assert args.max_attempts == 3
        assert args.drain_seconds == 30.0

    def test_submit_args(self):
        args = build_parser().parse_args(
            ["submit", "lbm06", "dynamic_ptmc", "--priority", "4", "--wait"]
        )
        assert args.command == "submit"
        assert args.workload == "lbm06"
        assert args.priority == 4
        assert args.wait

    def test_submit_rejects_unknown_design(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "lbm06", "warp_drive"])

    def test_jobs_state_filter(self):
        args = build_parser().parse_args(["jobs", "--state", "queued"])
        assert args.state == "queued"

    def test_wait_and_result_and_cancel(self):
        for verb in ("wait", "result", "cancel"):
            args = build_parser().parse_args([verb, "abc123"])
            assert args.command == verb
            assert args.job_id == "abc123"

    def test_unreachable_service_is_an_error_not_a_crash(self, capsys):
        assert main(["jobs", "--url", "http://127.0.0.1:1"]) == 1
        assert "service error" in capsys.readouterr().out


class TestPolicyCLI:
    def test_policies_verb_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("lru", "fifo", "random", "srrip", "pref_lru"):
            assert name in out
        assert "default" in out

    def test_llc_policy_flag_parsed(self):
        args = build_parser().parse_args(
            ["--llc-policy", "srrip", "run", "lbm06", "ideal"]
        )
        assert args.llc_policy == "srrip"

    def test_llc_policy_defaults_to_none(self):
        args = build_parser().parse_args(["run", "lbm06", "ideal"])
        assert args.llc_policy is None

    def test_unknown_policy_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--llc-policy", "belady", "run", "lbm06", "ideal"])

    def test_run_with_policy_override(self, capsys):
        assert main(
            [
                "--ops", "200", "--warmup", "100",
                "--llc-policy", "fifo",
                "run", "lbm06", "static_ptmc",
            ]
        ) == 0
        assert "weighted speedup" in capsys.readouterr().out

    def test_stats_expose_policy_counters(self, capsys):
        assert main(
            ["--ops", "200", "--warmup", "100", "stats", "lbm06", "prefetch"]
        ) == 0
        out = capsys.readouterr().out
        assert "llc.policy_evictions" in out
        assert "llc.wasted_prefetches" in out
