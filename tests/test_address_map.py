"""Tests for the TMC address mapping (paper Fig. 3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import address_map as am
from repro.types import Level

addrs = st.integers(min_value=0, max_value=2**28 - 1)


class TestBases:
    def test_group_base_alignment(self):
        assert am.group_base(0) == 0
        assert am.group_base(3) == 0
        assert am.group_base(4) == 4
        assert am.group_base(7) == 4

    def test_pair_base(self):
        assert am.pair_base(10) == 10
        assert am.pair_base(11) == 10

    def test_group_lines(self):
        assert am.group_lines(6) == [4, 5, 6, 7]

    def test_pair_lines(self):
        assert am.pair_lines(9) == [8, 9]


class TestLocationFor:
    def test_group_base_never_moves(self):
        for level in Level:
            assert am.location_for(8, level) == 8

    def test_odd_line_locations(self):
        assert am.location_for(9, Level.UNCOMPRESSED) == 9
        assert am.location_for(9, Level.PAIR) == 8
        assert am.location_for(9, Level.QUAD) == 8

    def test_third_line_locations(self):
        assert am.location_for(10, Level.UNCOMPRESSED) == 10
        assert am.location_for(10, Level.PAIR) == 10
        assert am.location_for(10, Level.QUAD) == 8

    def test_fourth_line_locations(self):
        assert am.location_for(11, Level.UNCOMPRESSED) == 11
        assert am.location_for(11, Level.PAIR) == 10
        assert am.location_for(11, Level.QUAD) == 8


class TestSlotMembers:
    def test_quad_members(self):
        assert am.slot_members(4, Level.QUAD) == [4, 5, 6, 7]

    def test_pair_members(self):
        assert am.slot_members(6, Level.PAIR) == [6, 7]

    def test_uncompressed_members(self):
        assert am.slot_members(5, Level.UNCOMPRESSED) == [5]


class TestCandidates:
    def test_group_base_single_candidate(self):
        assert am.candidate_locations(8) == [(8, Level.QUAD)]

    def test_odd_line_two_candidates(self):
        assert am.candidate_locations(9) == [
            (8, Level.QUAD),
            (9, Level.UNCOMPRESSED),
        ]

    def test_pair_base_two_candidates(self):
        assert am.candidate_locations(10) == [(8, Level.QUAD), (10, Level.PAIR)]

    def test_last_line_three_candidates(self):
        assert am.candidate_locations(11) == [
            (8, Level.QUAD),
            (10, Level.PAIR),
            (11, Level.UNCOMPRESSED),
        ]

    def test_needs_prediction(self):
        assert not am.needs_prediction(8)
        assert am.needs_prediction(9)
        assert am.needs_prediction(10)
        assert am.needs_prediction(11)


@given(addrs)
def test_levels_map_into_group(addr):
    """Every candidate location stays within the line's own group."""
    for loc, _ in am.candidate_locations(addr):
        assert am.group_base(loc) == am.group_base(addr)


@given(addrs)
def test_membership_is_consistent(addr):
    """addr is a member of the slot each level maps it to."""
    for level in Level:
        loc = am.location_for(addr, level)
        assert addr in am.slot_members(loc, level)


@given(addrs)
def test_candidates_deduplicated(addr):
    locs = [loc for loc, _ in am.candidate_locations(addr)]
    assert len(locs) == len(set(locs))
