"""Tests for the shared types module."""


from repro.types import (
    COMPRESSION_COST_CATEGORIES,
    Category,
    Level,
    ReadResult,
    WriteResult,
)


class TestLevel:
    def test_values_are_group_sizes(self):
        assert int(Level.UNCOMPRESSED) == 1
        assert int(Level.PAIR) == 2
        assert int(Level.QUAD) == 4

    def test_ordering(self):
        assert Level.UNCOMPRESSED < Level.PAIR < Level.QUAD

    def test_max_works_for_result_levels(self):
        assert max([Level.PAIR, Level.UNCOMPRESSED]) is Level.PAIR


class TestCategory:
    def test_write_categories(self):
        assert Category.DATA_WRITE.is_write
        assert Category.METADATA_WRITE.is_write
        assert Category.CLEAN_WRITEBACK.is_write
        assert Category.INVALIDATE_WRITE.is_write

    def test_read_categories(self):
        assert not Category.DATA_READ.is_write
        assert not Category.METADATA_READ.is_write
        assert not Category.MISPREDICT_READ.is_write
        assert not Category.PREFETCH_READ.is_write
        assert not Category.MAINTENANCE.is_write

    def test_cost_categories_match_dynamic_ptmc(self):
        assert COMPRESSION_COST_CATEGORIES == {
            Category.MISPREDICT_READ,
            Category.CLEAN_WRITEBACK,
            Category.INVALIDATE_WRITE,
        }

    def test_values_unique(self):
        values = [c.value for c in Category]
        assert len(values) == len(set(values))


class TestRecords:
    def test_read_result_defaults(self):
        result = ReadResult(addr=1, data=b"x", level=Level.UNCOMPRESSED, completion=5)
        assert result.accesses == 1
        assert result.extra_lines == {}
        assert not result.mispredicted

    def test_write_result_defaults(self):
        result = WriteResult()
        assert result.writes == 0
        assert result.invalidates == 0
        assert result.clean_writebacks == 0
        assert result.level is Level.UNCOMPRESSED
        assert result.ganged == []

    def test_write_result_ganged_not_shared(self):
        a, b = WriteResult(), WriteResult()
        a.ganged.append(1)
        assert b.ganged == []


class TestReExports:
    def test_core_types_reexports(self):
        import repro.core.types as core_types
        import repro.types as top_types

        assert core_types.Level is top_types.Level
        assert core_types.Category is top_types.Category
