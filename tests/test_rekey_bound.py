"""Regression tests for the bounded rekey retry in ``_encode_uncompressed``.

The old code recursed unconditionally after a rekey sweep; if the fresh
markers still collided (pathological data, or an adversary who can
predict keys) the store never terminated.  The fix retries at most
``PTMCConfig.max_rekeys`` times, then spills the inversion to the
memory-mapped bitmap.

The worst case is modelled by patching ``markers.collides`` to report a
collision for every line, so no rekey can ever help.  That patch breaks
the classify/collides invariant real markers maintain, so these tests
assert on termination, sweep counts and LIT state — read-back fidelity
under *genuine* markers is covered by the unpatched test and the
existing integration/property suites.
"""

from tests.controller_harness import FakeLLC, evicted, make_ptmc

from repro.core.lit import LITPolicy
from repro.core.ptmc import PTMCConfig
from repro.types import Level


def always_colliding_ptmc(max_rekeys=3):
    config = PTMCConfig(
        lit_capacity=1, lit_policy=LITPolicy.REKEY, max_rekeys=max_rekeys
    )
    ptmc = make_ptmc(config=config)
    ptmc.markers.collides = lambda addr, data: True
    return ptmc


class TestRekeyBound:
    def test_store_terminates_after_bounded_rekeys(self):
        ptmc = always_colliding_ptmc(max_rekeys=2)
        # first store fills the 1-entry LIT without overflowing
        ptmc.handle_eviction(evicted(40, bytes(range(64))), 0, 0, FakeLLC())
        assert ptmc.rekeys == 0
        # the second store overflows; rekeying cannot clear the (patched)
        # collision, so the controller must stop at the bound and spill
        # instead of recursing forever
        ptmc.handle_eviction(evicted(41, b"\x11" * 64), 0, 0, FakeLLC())
        assert ptmc.rekeys == 2
        assert ptmc.inversions == 2

    def test_fallback_spill_keeps_inversion_visible(self):
        ptmc = always_colliding_ptmc(max_rekeys=1)
        ptmc.handle_eviction(evicted(40, bytes(range(64))), 0, 0, FakeLLC())
        ptmc.handle_eviction(evicted(41, b"\x11" * 64), 0, 0, FakeLLC())
        assert ptmc.rekeys == 1
        # the inversion that no longer fits on-chip is recorded in the
        # memory-mapped bitmap and stays visible to the read path
        assert ptmc.lit.is_inverted(41)

    def test_zero_max_rekeys_never_sweeps(self):
        ptmc = always_colliding_ptmc(max_rekeys=0)
        ptmc.handle_eviction(evicted(40, bytes(range(64))), 0, 0, FakeLLC())
        ptmc.handle_eviction(evicted(41, b"\x22" * 64), 0, 0, FakeLLC())
        assert ptmc.rekeys == 0
        assert ptmc.lit.is_inverted(41)

    def test_real_markers_still_recover_via_rekey(self):
        """With genuine markers one rekey resolves the collision, so the
        bound must not change the normal overflow path (data intact)."""
        config = PTMCConfig(lit_capacity=2, lit_policy=LITPolicy.REKEY)
        ptmc = make_ptmc(config=config)
        plain = bytes(range(64))
        ptmc.handle_eviction(evicted(20, plain), 0, 0, FakeLLC())
        for addr in (30, 31, 33):
            data = b"\x55" * 60 + ptmc.markers.marker(addr, Level.PAIR)
            ptmc.handle_eviction(evicted(addr, data), 0, 0, FakeLLC())
        assert 1 <= ptmc.rekeys <= config.max_rekeys
        probe = FakeLLC()
        assert ptmc.read_line(20, 0, 0, probe).data == plain
