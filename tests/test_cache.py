"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.types import Level

LINE = b"\x00" * 64


def small_cache(ways=2, sets=4):
    return Cache(size_bytes=ways * sets * 64, ways=ways)


class TestGeometry:
    def test_sets_computed(self):
        cache = Cache(8 * 1024, 8)
        assert cache.num_sets == 16

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cache(100, 3)

    def test_set_index_wraps(self):
        cache = small_cache()
        assert cache.set_index(0) == cache.set_index(4)


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(1) is None
        cache.fill(1, LINE)
        assert cache.lookup(1) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_probe_no_stats(self):
        cache = small_cache()
        cache.probe(1)
        assert cache.misses == 0

    def test_fill_existing_updates_in_place(self):
        cache = small_cache()
        cache.fill(1, LINE)
        victim = cache.fill(1, b"\x01" * 64, dirty=True)
        assert victim is None
        line = cache.probe(1)
        assert line.data == b"\x01" * 64
        assert line.dirty

    def test_lru_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        cache.lookup(0)  # 0 becomes MRU
        victim = cache.fill(2, LINE)
        assert victim.addr == 1

    def test_victim_carries_metadata(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0, LINE, dirty=True, fill_level=Level.QUAD, core_id=3)
        victim = cache.fill(1, LINE)
        assert victim.addr == 0
        assert victim.dirty
        assert victim.fill_level is Level.QUAD
        assert victim.core_id == 3

    def test_prefetched_flag(self):
        cache = small_cache()
        cache.fill(0, LINE, prefetched=True)
        assert cache.probe(0).prefetched


class TestEvictInvalidate:
    def test_evict_returns_line(self):
        cache = small_cache()
        cache.fill(5, LINE, dirty=True)
        evicted = cache.evict(5)
        assert evicted.addr == 5
        assert cache.probe(5) is None

    def test_evict_absent(self):
        assert small_cache().evict(5) is None

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(5, LINE)
        assert cache.invalidate(5)
        assert not cache.invalidate(5)


class TestStatsAndIteration:
    def test_occupancy(self):
        cache = small_cache()
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        assert cache.occupancy() == 2

    def test_resident_iteration(self):
        cache = small_cache()
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        assert {line.addr for line in cache.resident()} == {0, 1}

    def test_hit_rate(self):
        cache = small_cache()
        cache.lookup(0)
        cache.fill(0, LINE)
        cache.lookup(0)
        assert cache.hit_rate == 0.5

    def test_reset_stats(self):
        cache = small_cache()
        cache.lookup(0)
        cache.reset_stats()
        assert cache.hit_rate == 0.0
        assert cache.misses == 0

    def test_drain(self):
        cache = small_cache()
        cache.fill(0, LINE, dirty=True)
        cache.fill(1, LINE)
        drained = []
        cache.drain(drained.append)
        assert {e.addr for e in drained} == {0, 1}
        assert cache.occupancy() == 0


@given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
def test_occupancy_never_exceeds_capacity(addresses):
    cache = small_cache(ways=2, sets=4)
    for addr in addresses:
        cache.fill(addr, LINE)
    assert cache.occupancy() <= 8
    for s in range(cache.num_sets):
        resident = [line for line in cache.resident() if cache.set_index(line.addr) == s]
        assert len(resident) <= 2


class TestPolicySeam:
    """The policy object is the only authority over victim choice."""

    def test_default_cache_uses_lru(self):
        assert type(small_cache().policy).name == "lru"

    def test_policy_string_resolved_per_cache(self):
        a = Cache(1024, 2, name="l3", policy="random", policy_seed=9)
        b = Cache(1024, 2, name="l3", policy="random", policy_seed=9)
        assert a.policy is not b.policy  # own RNG per cache instance

    def test_drain_notifies_policy(self):
        cache = Cache(1024, 2, policy="srrip")
        cache.fill(0, LINE)
        cache.fill(1, LINE)
        drained = []
        cache.drain(drained.append)
        assert len(drained) == 2
        assert cache.occupancy() == 0
        # the policy's side-state was released with the lines: refilling
        # behaves exactly like a cold cache
        cache.fill(0, LINE)
        assert cache.fill(cache.num_sets, LINE) is None  # same set, 2 ways

    @given(
        addresses=st.lists(st.integers(min_value=0, max_value=63), max_size=200),
        policy=st.sampled_from(["lru", "fifo", "random", "srrip", "pref_lru"]),
    )
    def test_occupancy_bounded_for_every_policy(self, addresses, policy):
        cache = Cache(2 * 4 * 64, ways=2, policy=policy, name="prop", policy_seed=2)
        for addr in addresses:
            cache.fill(addr, LINE)
        assert cache.occupancy() <= 8
