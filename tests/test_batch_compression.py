"""Batch-kernel equivalence: vectorized sizes must match the scalar path.

The scalar ``compressed_size`` is the specification; every algorithm's
``batch_sizes`` kernel is checked against it line for line over random,
patterned and adversarial corpora (DESIGN.md §9).  This is the contract
that lets the batch-driven simulator stay bitwise-identical to the scalar
reference while skipping per-access recompression.
"""

import random
import struct

import numpy as np
import pytest

from repro.compression import (
    BDI,
    CPack,
    FPC,
    FVC,
    BatchCompressor,
    HybridCompressor,
    ZeroLine,
    array_to_lines,
    lines_to_array,
)
from repro.compression.base import LINE_SIZE, CompressionAlgorithm
from repro.compression.batch import check_batch, finalize_sizes
from tests.lineutils import (
    line_of_words,
    pointer_line,
    quad_friendly_line,
    random_line,
    small_int_line,
    zero_line,
)


def _pattern_corpus():
    """Structured lines exercising every scalar fast path."""
    lines = [
        zero_line(),
        b"\xff" * LINE_SIZE,
        small_int_line(),
        small_int_line(start=-8, step=3),
        quad_friendly_line(),
        quad_friendly_line(variant=5),
        pointer_line(),
        pointer_line(base=0x10_0000, stride=8),
        line_of_words(0xDEADBEEF),  # one word repeated
        line_of_words(0x41, 0x42, 0x43, 0x44),  # low-byte words (zzzx)
        line_of_words(0xCAFE0001, 0xCAFE0002, 0xCAFE0003),  # C-Pack mm-match
        line_of_words(0x0000_FFFF),  # FVC dictionary value
        line_of_words(0x8000_0000),  # sign-boundary word
    ]
    # narrow-delta families around every BDI (base, delta) width
    for base_bytes, delta in ((2, 100), (4, 100), (4, 30_000), (8, 100)):
        count = LINE_SIZE // base_bytes
        anchor = (1 << (base_bytes * 8 - 2)) + 12345
        lines.append(
            b"".join(
                ((anchor + i * delta) % (1 << (base_bytes * 8))).to_bytes(
                    base_bytes, "little"
                )
                for i in range(count)
            )
        )
    return lines


def _adversarial_corpus():
    """Boundary hunters: values at exactly the encodable/oversize edges."""
    lines = []
    # BDI delta exactly at +/- the representable limit for each width
    for base_bytes, delta_bytes in ((2, 1), (4, 1), (4, 2), (8, 1), (8, 2), (8, 4)):
        high = 1 << (delta_bytes * 8 - 1)
        modulus = 1 << (base_bytes * 8)
        count = LINE_SIZE // base_bytes
        anchor = modulus // 2
        for offset in (high - 1, high, high + 1):
            values = [anchor] * (count - 1) + [(anchor + offset) % modulus]
            lines.append(
                b"".join(v.to_bytes(base_bytes, "little") for v in values)
            )
            values = [anchor] * (count - 1) + [(anchor - offset) % modulus]
            lines.append(
                b"".join(v.to_bytes(base_bytes, "little") for v in values)
            )
    # FPC zero runs at the run-length cap (8) and around it
    for run in (7, 8, 9, 15, 16):
        words = [0] * run + [0x0BAD_CAFE] * (16 - run)
        lines.append(b"".join(struct.pack("<I", w) for w in words))
    # elements straddling uint64 wraparound (base near 2^64)
    top = (1 << 64) - 5
    lines.append(
        b"".join(((top + i) % (1 << 64)).to_bytes(8, "little") for i in range(8))
    )
    # near-incompressible: random with a single zero word
    rng = random.Random(99)
    noisy = bytearray(random_line(rng))
    noisy[0:4] = b"\x00\x00\x00\x00"
    lines.append(bytes(noisy))
    return lines


def _random_corpus(seed, count=200):
    rng = random.Random(seed)
    lines = []
    for _ in range(count):
        kind = rng.randrange(4)
        if kind == 0:
            lines.append(random_line(rng))
        elif kind == 1:  # sparse: mostly zeros, a few random words
            words = [0] * 16
            for _ in range(rng.randrange(1, 6)):
                words[rng.randrange(16)] = rng.getrandbits(32)
            lines.append(b"".join(struct.pack("<I", w) for w in words))
        elif kind == 2:  # clustered values (dictionary friendly)
            pool = [rng.getrandbits(32) for _ in range(rng.randrange(1, 5))]
            lines.append(
                b"".join(struct.pack("<I", rng.choice(pool)) for _ in range(16))
            )
        else:  # narrow numeric ramps
            width = rng.choice((2, 4, 8))
            base = rng.getrandbits(width * 8)
            modulus = 1 << (width * 8)
            lines.append(
                b"".join(
                    ((base + rng.randrange(-300, 300)) % modulus).to_bytes(
                        width, "little"
                    )
                    for _ in range(LINE_SIZE // width)
                )
            )
    return lines


CORPUS = _pattern_corpus() + _adversarial_corpus() + _random_corpus(1) + _random_corpus(2)

ALGORITHMS = [
    FPC(),
    BDI(),
    CPack(),
    FVC(),
    ZeroLine(),
    HybridCompressor(memoize=False),
]


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
def test_batch_sizes_match_scalar(algorithm):
    array = lines_to_array(CORPUS)
    batch = algorithm.batch_sizes(array)
    scalar = [algorithm.compressed_size(line) for line in CORPUS]
    mismatches = [
        (i, CORPUS[i].hex(), int(batch[i]), scalar[i])
        for i in range(len(CORPUS))
        if int(batch[i]) != scalar[i]
    ]
    assert not mismatches, mismatches[:5]


def test_bdi_classify_tags_match_scalar_payloads():
    bdi = BDI()
    sizes, tags = bdi.batch_classify(lines_to_array(CORPUS))
    for i, line in enumerate(CORPUS):
        payload = bdi.compress(line)
        if payload is None:
            assert tags[i] == 255 and sizes[i] == LINE_SIZE
        else:
            assert tags[i] == payload[0]
            assert sizes[i] == len(payload)


def test_scalar_fallback_matches_scalar():
    """An algorithm without a kernel gets the scalar-loop default."""

    class NoKernel(CompressionAlgorithm):
        name = "nokernel"

        def compress(self, line):
            self.check_line(line)
            return b"\x01\x02" if line[0] == 0 else None

        def decompress(self, payload):
            raise NotImplementedError

    algorithm = NoKernel()
    sizes = algorithm.batch_sizes(lines_to_array(CORPUS))
    assert list(sizes) == [algorithm.compressed_size(line) for line in CORPUS]


class TestBatchCompressor:
    def test_sizes_accepts_bytes_and_arrays(self):
        front = BatchCompressor(FPC())
        as_bytes = front.sizes(CORPUS[:10])
        as_array = front.sizes(lines_to_array(CORPUS[:10]))
        assert list(as_bytes) == list(as_array)

    def test_precompute_seeds_hybrid_memo(self):
        hybrid = HybridCompressor()
        hybrid.clear_cache()
        front = BatchCompressor(hybrid)
        front.precompute(CORPUS[:20])
        for line in CORPUS[:20]:
            cached = hybrid.cached_size(line)
            assert cached is not None
            assert cached == HybridCompressor(memoize=False).compressed_size(line)
        hybrid.clear_cache()

    def test_precompute_skips_known_lines(self):
        hybrid = HybridCompressor()
        hybrid.clear_cache()
        front = BatchCompressor(hybrid)
        first = front.precompute([zero_line(), small_int_line()])
        assert first is not None and len(first) == 2
        assert front.precompute([zero_line(), small_int_line()]) is None
        hybrid.clear_cache()

    def test_precompute_empty(self):
        assert BatchCompressor(FPC()).precompute([]) is None


class TestBatchHelpers:
    def test_lines_array_round_trip(self):
        assert array_to_lines(lines_to_array(CORPUS[:7])) == CORPUS[:7]

    def test_lines_to_array_rejects_short_lines(self):
        with pytest.raises(ValueError):
            lines_to_array([b"\x00" * 63])

    def test_check_batch_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            check_batch(np.zeros((4, 32), dtype=np.uint8))

    def test_finalize_sizes_caps_at_line_size(self):
        bits = np.array([0, 1, 8, 511, 512, 4096])
        assert list(finalize_sizes(bits)) == [0, 1, 1, 64, 64, 64]
