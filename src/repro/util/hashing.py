"""Keyed hashing used for per-line marker generation.

The paper generates per-line marker values with a cryptographically secure
keyed hash (it suggests DES, run off the critical path) so that an adversary
cannot craft data that collides with markers and floods the Line Inversion
Table.  The only properties the design relies on are (a) determinism given
the key, and (b) uniform, unpredictable output without the key.  We use a
SplitMix64-style finalizer mixed with a 128-bit key, which preserves those
statistical properties for simulation purposes (this is a stand-in, not a
security claim — see DESIGN.md §4).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """SplitMix64 finalizer: a high-quality 64-bit bijective mixer."""
    value &= _MASK64
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


class KeyedHash:
    """Deterministic keyed 64-bit hash ``H(key, message, tweak)``.

    ``tweak`` separates domains (e.g. the 2:1 marker, the 4:1 marker and
    the invalid-line marker are all derived from the same key but must be
    independent streams).
    """

    def __init__(self, key: int) -> None:
        self._k0 = mix64(key & _MASK64)
        self._k1 = mix64((key >> 64) ^ 0x9E3779B97F4A7C15)

    def hash64(self, message: int, tweak: int = 0) -> int:
        """Return a 64-bit digest of ``message`` under this key."""
        h = mix64(message ^ self._k0)
        h = mix64(h ^ (tweak * 0xD6E8FEB86659FD93 & _MASK64))
        return mix64(h ^ self._k1)

    def digest(self, message: int, nbytes: int, tweak: int = 0) -> bytes:
        """Return ``nbytes`` of keyed output, expanded counter-mode style."""
        out = bytearray()
        counter = 0
        while len(out) < nbytes:
            block = self.hash64(message ^ (counter << 48), tweak)
            out.extend(block.to_bytes(8, "little"))
            counter += 1
        return bytes(out[:nbytes])
