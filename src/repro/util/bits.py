"""Bit-level read/write streams used by the compression encoders.

Hardware compressors (FPC, C-Pack) emit variable-width fields that are not
byte aligned.  ``BitWriter``/``BitReader`` provide a minimal MSB-first bit
stream so the encoders can mirror the hardware layouts exactly and the
encoded size in bits can be charged against the 64-byte line budget.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates an MSB-first bit stream and renders it as bytes."""

    def __init__(self) -> None:
        self._value = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value`` to the stream."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if value < 0 or (nbits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._value = (self._value << nbits) | value
        self._nbits += nbits

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    @property
    def byte_length(self) -> int:
        """Size in bytes when padded up to a whole byte."""
        return (self._nbits + 7) // 8

    def to_bytes(self) -> bytes:
        """Render the stream, zero-padded in the final partial byte."""
        pad = (8 - self._nbits % 8) % 8
        total_bits = self._nbits + pad
        return (self._value << pad).to_bytes(total_bits // 8, "big")


class BitReader:
    """Reads an MSB-first bit stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, nbits: int) -> int:
        """Consume and return the next ``nbits`` bits as an unsigned int."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if self._pos + nbits > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        value = 0
        pos = self._pos
        for _ in range(nbits):
            byte = self._data[pos >> 3]
            bit = (byte >> (7 - (pos & 7))) & 1
            value = (value << 1) | bit
            pos += 1
        self._pos = pos
        return value

    @property
    def bits_remaining(self) -> int:
        """Bits left in the underlying buffer (including padding)."""
        return len(self._data) * 8 - self._pos
