"""Small shared utilities: bit-level streams and keyed hashing."""

from repro.util.bits import BitReader, BitWriter
from repro.util.hashing import KeyedHash, mix64

__all__ = ["BitReader", "BitWriter", "KeyedHash", "mix64"]
