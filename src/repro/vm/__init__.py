"""Virtual-memory substrate: per-core page tables over a shared frame pool."""

from repro.vm.page_table import LINES_PER_PAGE, PageTable

__all__ = ["LINES_PER_PAGE", "PageTable"]
