"""Minimal virtual-memory model (paper §III-A).

The paper models virtual-to-physical translation so that "memory accesses
of different cores do not map to the same physical page" — and explicitly
nothing more; the OS provides no support for compression.  We mirror
that: each core owns a page table, frames are handed out on first touch,
and frame numbers are scattered pseudo-randomly over the physical space
so that DRAM bank/row behaviour is realistic while 4KB pages stay intact
(compression groups of 4 lines never straddle a page).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.util.hashing import mix64

LINES_PER_PAGE = 64  # 4KB pages / 64B lines


class PageTable:
    """Per-core first-touch page allocation over a shared frame pool."""

    def __init__(self, capacity_lines: int, seed: int = 1234) -> None:
        if capacity_lines % LINES_PER_PAGE:
            raise ValueError("capacity must be whole pages")
        self._num_frames = capacity_lines // LINES_PER_PAGE
        self._seed = seed
        self._mappings: Dict[Tuple[int, int], int] = {}
        self._used_frames: Dict[int, Tuple[int, int]] = {}
        self._next_probe = 0

    @property
    def frames_allocated(self) -> int:
        return len(self._used_frames)

    def translate(self, core_id: int, vline: int) -> int:
        """Virtual line address -> physical line address (allocate on demand)."""
        vpage, offset = divmod(vline, LINES_PER_PAGE)
        key = (core_id, vpage)
        frame = self._mappings.get(key)
        if frame is None:
            frame = self._allocate(key)
        return frame * LINES_PER_PAGE + offset

    def _allocate(self, key: Tuple[int, int]) -> int:
        """Pick a pseudo-random free frame (linear probing on collision)."""
        if len(self._used_frames) >= self._num_frames:
            raise MemoryError("physical memory exhausted")
        core_id, vpage = key
        frame = mix64(self._seed ^ (core_id << 48) ^ vpage) % self._num_frames
        while frame in self._used_frames:
            frame = (frame + 1) % self._num_frames
        self._mappings[key] = frame
        self._used_frames[frame] = key
        return frame

    def reverse(self, frame: int) -> Tuple[int, int]:
        """Owner ``(core, vpage)`` of a frame (diagnostics)."""
        return self._used_frames[frame]
