"""Terminal rendering of phase-resolved telemetry time series.

``repro timeline`` shows how a run's headline counters evolve across
its sampled intervals: one unicode sparkline per metric, split at the
warmup/measured boundary, with min/mean/max annotations.  Like the rest
of :mod:`repro.analysis`, this is dependency-free terminal output — the
*shape* of a run (a warmup ramp, a phase change mid-run, a compression
policy kicking in) at a glance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.timeseries import PHASES, TimeSeries

#: Sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """One-line unicode chart of ``values`` scaled between ``lo`` and ``hi``.

    Bounds default to the series' own min/max; pass shared bounds to
    make several sparklines comparable.  A flat series renders as a
    mid-height line rather than dividing by zero.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK[3] * len(values)
    top = len(_SPARK) - 1
    return "".join(
        _SPARK[min(top, max(0, int((value - lo) / span * top)))] for value in values
    )


def _stats_suffix(values: Sequence[float]) -> str:
    return (
        f"min {min(values):g} / mean {sum(values) / len(values):g} "
        f"/ max {max(values):g}"
    )


def format_timeline(
    timeseries: TimeSeries,
    paths: Optional[Sequence[str]] = None,
    show_warmup: bool = True,
) -> str:
    """Multi-metric sparkline view of one run's :class:`TimeSeries`.

    One row per metric path; the warmup and measured segments are
    rendered separately (scaled together, so heights are comparable
    across the boundary) and joined with ``|`` marking the boundary.
    """
    if not timeseries.points:
        return "(no samples)"
    selected: List[str] = list(paths) if paths is not None else timeseries.paths()
    missing = [p for p in selected if not timeseries.series(p)]
    if missing:
        raise KeyError(f"paths not in the time series: {missing}")
    label_width = max(len(p) for p in selected)
    phases = [p for p in PHASES if timeseries.phase_points(p)]
    if not show_warmup:
        phases = [p for p in phases if p != "warmup"]
    lines = []
    for path in selected:
        everything = [float(v) for v in timeseries.series(path) if v is not None]
        lo, hi = (min(everything), max(everything)) if everything else (0.0, 0.0)
        segments = []
        for phase in phases:
            segment = [
                float(v) for v in timeseries.series(path, phase=phase) if v is not None
            ]
            segments.append(sparkline(segment, lo, hi))
        chart = " | ".join(segments)
        lines.append(f"{path:<{label_width}}  {chart}  {_stats_suffix(everything)}")
    header = (
        f"{len(timeseries)} samples @ {timeseries.interval} accesses/interval"
        + (f"  ({' | '.join(phases)})" if len(phases) > 1 else "")
    )
    return "\n".join([header, *lines])


__all__ = ["format_timeline", "sparkline"]
