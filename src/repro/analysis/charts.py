"""Terminal-friendly charts: horizontal bars and stacked bandwidth bars.

The paper's figures are bar charts; these helpers render the same data
as unicode bars so the benchmark harness and examples can show *shape*
at a glance without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

_BLOCKS = " ▏▎▍▌▋▊▉█"
#: glyph per stack segment, cycled in insertion order of the categories
_STACK_GLYPHS = "█▓▒░◆●"


def _bar(value: float, scale: float, width: int) -> str:
    """A solid bar of ``value`` at ``scale`` units per ``width`` chars."""
    if scale <= 0:
        return ""
    cells = value / scale * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * full
    partial_index = int(remainder * (len(_BLOCKS) - 1))
    if partial_index > 0:
        bar += _BLOCKS[partial_index]
    return bar


def hbar_chart(
    values: Mapping[str, float],
    width: int = 40,
    reference: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart with optional reference line (e.g. speedup=1).

    >>> print(hbar_chart({"a": 2.0, "b": 1.0}, width=8))  # doctest: +SKIP
    """
    if not values:
        return "(no data)"
    label_width = max(len(str(k)) for k in values)
    peak = max(max(values.values()), reference or 0.0)
    lines = []
    for label, value in values.items():
        bar = _bar(value, peak, width)
        mark = ""
        if reference is not None and peak > 0:
            ref_pos = int(reference / peak * width)
            bar_cells = list(bar.ljust(width))
            if 0 <= ref_pos < width and bar_cells[ref_pos] == " ":
                bar_cells[ref_pos] = "|"
            bar = "".join(bar_cells).rstrip()
        lines.append(
            f"{str(label):<{label_width}}  {bar.ljust(width)}  " + fmt.format(value) + mark
        )
    return "\n".join(lines)


def stacked_chart(
    stacks: Mapping[str, Mapping[str, float]],
    width: int = 40,
    reference: float = 1.0,
) -> str:
    """Stacked horizontal bars (the Figs. 4/14 bandwidth plots).

    Each row's segments are drawn with distinct glyphs; a legend maps
    glyphs to category names.  ``reference`` (the uncompressed total)
    is marked with ``|`` when it falls beyond the stack.
    """
    if not stacks:
        return "(no data)"
    categories = []
    for row in stacks.values():
        for key in row:
            if key not in categories:
                categories.append(key)
    glyph_of: Dict[str, str] = {
        category: _STACK_GLYPHS[i % len(_STACK_GLYPHS)]
        for i, category in enumerate(categories)
    }
    peak = max(max(sum(row.values()) for row in stacks.values()), reference)
    label_width = max(len(str(k)) for k in stacks)
    lines = []
    for label, row in stacks.items():
        cells = []
        for category in categories:
            span = int(round(row.get(category, 0.0) / peak * width))
            cells.append(glyph_of[category] * span)
        bar = "".join(cells)[:width]
        bar_cells = list(bar.ljust(width))
        ref_pos = min(int(reference / peak * width), width - 1)
        if bar_cells[ref_pos] == " ":
            bar_cells[ref_pos] = "|"
        total = sum(row.values())
        lines.append(f"{str(label):<{label_width}}  {''.join(bar_cells)}  {total:.3f}")
    legend = "   ".join(f"{glyph_of[c]} {c}" for c in categories)
    lines.append(f"{'':<{label_width}}  legend: {legend}   | = baseline")
    return "\n".join(lines)


def sorted_curve(values: Mapping[str, float], width: int = 40, bins: int = 16) -> str:
    """The Fig. 17 'sorted speedups' view, condensed into quantile rows."""
    ordered = sorted(values.values())
    if not ordered:
        return "(no data)"
    rows: Dict[str, float] = {}
    for i in range(bins):
        index = min(int(i / (bins - 1) * (len(ordered) - 1)), len(ordered) - 1)
        rows[f"p{int(i / (bins - 1) * 100):03d}"] = ordered[index]
    return hbar_chart(rows, width=width, reference=1.0)
