"""Plain-text table/series formatting for the benchmark harness.

Every figure/table benchmark prints its rows through these helpers so the
output reads like the paper's plots: a stacked-bandwidth table for
Figs. 4/14, a per-workload speedup table for Figs. 5/12/15/17, and small
key-value tables for Tables IV-VI.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    rendered: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_speedups(title: str, speedups: Mapping[str, Mapping[str, float]]) -> str:
    """Per-workload speedup matrix (Figs. 5/12/15/17 style)."""
    designs = sorted({d for per in speedups.values() for d in per})
    rows = [
        [name] + [per.get(d, float("nan")) for d in designs]
        for name, per in speedups.items()
    ]
    return f"{title}\n" + format_table(["workload"] + designs, rows)


def format_bandwidth(title: str, breakdown: Mapping[str, Mapping[str, float]]) -> str:
    """Normalised bandwidth stacks (Figs. 4/14 style)."""
    categories = sorted({c for per in breakdown.values() for c in per})
    rows = []
    for name, per in breakdown.items():
        rows.append([name] + [per.get(c, 0.0) for c in categories] + [sum(per.values())])
    return f"{title}\n" + format_table(["workload"] + categories + ["total"], rows)


def format_metrics(metrics: Mapping[str, object]) -> str:
    """Telemetry-registry mapping as an aligned path/value table.

    Paths sort lexically, so a namespace's metrics (``dram.*``,
    ``ptmc.llp.*``) read as contiguous blocks.
    """
    return format_table(
        ["metric", "value"], [[path, metrics[path]] for path in sorted(metrics)]
    )


def banner(text: str) -> str:
    rule = "=" * max(len(text), 8)
    return f"\n{rule}\n{text}\n{rule}"
