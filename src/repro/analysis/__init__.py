"""Result formatting helpers used by the benchmark harness."""

from repro.analysis.charts import hbar_chart, sorted_curve, stacked_chart
from repro.analysis.report import (
    banner,
    format_bandwidth,
    format_metrics,
    format_speedups,
    format_table,
)

__all__ = [
    "banner",
    "format_bandwidth",
    "format_metrics",
    "format_speedups",
    "format_table",
    "hbar_chart",
    "sorted_curve",
    "stacked_chart",
]
