"""Result formatting helpers used by the benchmark harness."""

from repro.analysis.charts import hbar_chart, sorted_curve, stacked_chart
from repro.analysis.report import (
    banner,
    format_bandwidth,
    format_metrics,
    format_speedups,
    format_table,
)
from repro.analysis.timeline import format_timeline, sparkline

__all__ = [
    "banner",
    "format_bandwidth",
    "format_metrics",
    "format_speedups",
    "format_table",
    "format_timeline",
    "hbar_chart",
    "sorted_curve",
    "sparkline",
    "stacked_chart",
]
