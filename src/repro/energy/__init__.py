"""DRAM energy/power/EDP model (Fig. 18)."""

from repro.energy.model import (
    EnergyParams,
    EnergyReport,
    RelativeEnergy,
    energy_of,
    relative_energy,
)

__all__ = [
    "EnergyParams",
    "EnergyReport",
    "RelativeEnergy",
    "energy_of",
    "relative_energy",
]
