"""DRAM energy/power model (paper Fig. 18).

A per-operation model with DDR4-datasheet-style constants: each row
activation, read burst and write burst costs fixed energy, and each
channel draws constant background power while the system runs.  The
paper's Fig. 18 effect — fewer requests → lower energy, shorter runtime →
lower background energy and EDP — falls out directly (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SimResult


@dataclass(frozen=True)
class EnergyParams:
    """Per-operation DRAM energy and background power."""

    activate_nj: float = 2.5
    read_nj: float = 4.0
    write_nj: float = 4.2
    background_mw_per_channel: float = 350.0
    cpu_ghz: float = 3.2
    channels: int = 2


@dataclass(frozen=True)
class EnergyReport:
    """Absolute energy/power/EDP for one simulation."""

    dynamic_nj: float
    background_nj: float
    seconds: float

    @property
    def energy_nj(self) -> float:
        return self.dynamic_nj + self.background_nj

    @property
    def power_mw(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.energy_nj / self.seconds * 1e-6  # nJ/s -> mW

    @property
    def edp(self) -> float:
        """Energy-delay product (nJ * s)."""
        return self.energy_nj * self.seconds


def energy_of(result: SimResult, params: EnergyParams = EnergyParams()) -> EnergyReport:
    """Energy accounting for one finished simulation."""
    stats = result.dram
    dynamic = (
        stats.activations * params.activate_nj
        + stats.reads * params.read_nj
        + stats.writes * params.write_nj
    )
    seconds = result.elapsed_cycles / (params.cpu_ghz * 1e9)
    background = params.background_mw_per_channel * params.channels * seconds * 1e6
    return EnergyReport(dynamic_nj=dynamic, background_nj=background, seconds=seconds)


@dataclass(frozen=True)
class RelativeEnergy:
    """Fig. 18's normalised quadruple: speedup, power, energy, EDP."""

    speedup: float
    power: float
    energy: float
    edp: float


def relative_energy(
    result: SimResult,
    baseline: SimResult,
    params: EnergyParams = EnergyParams(),
) -> RelativeEnergy:
    """Normalise a design's energy metrics to the uncompressed baseline."""
    ours = energy_of(result, params)
    base = energy_of(baseline, params)
    speedup = base.seconds / ours.seconds if ours.seconds else 0.0
    return RelativeEnergy(
        speedup=speedup,
        power=ours.power_mw / base.power_mw if base.power_mw else 0.0,
        energy=ours.energy_nj / base.energy_nj if base.energy_nj else 0.0,
        edp=ours.edp / base.edp if base.edp else 0.0,
    )
