"""Baseline uncompressed memory controller.

One DRAM access per demanded line, one writeback per dirty eviction —
the reference every design in the paper is normalised against.
"""

from __future__ import annotations

from repro.cache.cache import EvictedLine
from repro.core.base_controller import LLCView, MemoryController
from repro.core.types import Category, Level, ReadResult, WriteResult


class UncompressedController(MemoryController):
    """Conventional memory: lines live at their home slots, always."""

    name = "uncompressed"

    def read_line(self, addr: int, now: int, core_id: int, llc: LLCView) -> ReadResult:
        completion = self.dram.access(addr, now, Category.DATA_READ)
        return ReadResult(
            addr=addr,
            data=self.memory.read(addr),
            level=Level.UNCOMPRESSED,
            completion=completion,
        )

    def handle_eviction(
        self, evicted: EvictedLine, now: int, core_id: int, llc: LLCView
    ) -> WriteResult:
        if not evicted.dirty:
            return WriteResult()
        self.dram.access(evicted.addr, now, Category.DATA_WRITE)
        self.memory.write(evicted.addr, evicted.data)
        return WriteResult(writes=1)
