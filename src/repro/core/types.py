"""Re-export of the shared enums/records (canonical home: repro.types).

The definitions live in :mod:`repro.types` so that low-level substrates
(e.g. the cache model) can use them without importing the ``repro.core``
package, which would create an import cycle with the controllers.
"""

from repro.types import (
    COMPRESSION_COST_CATEGORIES,
    Category,
    Level,
    ReadResult,
    WriteResult,
)

__all__ = [
    "COMPRESSION_COST_CATEGORIES",
    "Category",
    "Level",
    "ReadResult",
    "WriteResult",
]
