"""TMC address mapping over commodity memory (paper §II-B, Fig. 3).

Physical line addresses are grouped four at a time on naturally aligned
boundaries.  Within a group with base ``G`` (lines ``G..G+3``):

- **uncompressed** — every line lives in its home slot ``G+i``;
- **2:1** — the even-aligned pairs ``(G, G+1)`` and ``(G+2, G+3)`` each
  compress into the pair's first slot (``G`` and ``G+2``);
- **4:1** — all four lines compress into the group base slot ``G``.

A line therefore has at most three candidate locations, and the candidate
for a given compression level is a pure function of the address — this is
what lets the Line Location Predictor work: predicting the *level* is the
same as predicting the *location*.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.types import Level

GROUP_SIZE = 4
"""Lines per compression group (supports up to 4x compression)."""


def group_base(addr: int) -> int:
    """Base line address of the 4-line group containing ``addr``."""
    return addr & ~(GROUP_SIZE - 1)


def pair_base(addr: int) -> int:
    """Base line address of the 2-line pair containing ``addr``."""
    return addr & ~1


def group_lines(addr: int) -> List[int]:
    """All four line addresses in ``addr``'s group, in order."""
    base = group_base(addr)
    return [base + i for i in range(GROUP_SIZE)]


def pair_lines(addr: int) -> List[int]:
    """Both line addresses in ``addr``'s pair, in order."""
    base = pair_base(addr)
    return [base, base + 1]


def location_for(addr: int, level: Level) -> int:
    """Physical slot holding ``addr`` when stored at ``level``."""
    if level is Level.QUAD:
        return group_base(addr)
    if level is Level.PAIR:
        return pair_base(addr)
    return addr


def slot_members(loc: int, level: Level) -> List[int]:
    """The line addresses packed into slot ``loc`` at ``level``.

    Only meaningful when ``loc`` is a legal slot for ``level`` (group base
    for QUAD, pair base for PAIR).
    """
    if level is Level.QUAD:
        return group_lines(loc)
    if level is Level.PAIR:
        return pair_lines(loc)
    return [loc]


def candidate_locations(addr: int) -> List[Tuple[int, Level]]:
    """Distinct ``(slot, level)`` candidates for ``addr``, deduplicated.

    Ordered from the most co-located level downwards.  Lines that share a
    slot across levels (e.g. the group base, whose location never changes)
    report each distinct slot once with the *highest* level that maps there,
    because the marker read from the slot disambiguates the rest.
    """
    seen = {}
    for level in (Level.QUAD, Level.PAIR, Level.UNCOMPRESSED):
        loc = location_for(addr, level)
        if loc not in seen:
            seen[loc] = level
    return [(loc, level) for loc, level in seen.items()]


def needs_prediction(addr: int) -> bool:
    """True when the line's location depends on its compressibility.

    The group base always resides at its own slot (paper: "there is no
    need for location prediction while accessing line A").
    """
    return addr != group_base(addr)
