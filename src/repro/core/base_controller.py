"""Memory-controller interface shared by all designs under study.

A controller sits between the LLC and DRAM.  The simulator calls
:meth:`read_line` on an LLC miss and :meth:`handle_eviction` when the LLC
displaces a line.  Controllers own all interpretation of memory contents
(compression, markers, metadata); the DRAM below them stores opaque
64-byte slots and prices accesses.

``LLCView`` is the narrow window a controller gets into the LLC: PTMC's
eviction path must check whether a victim's group neighbours are resident
(to compact them) and force them out (ganged eviction).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Optional

from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.telemetry import StatScope
from repro.types import ReadResult, WriteResult

if TYPE_CHECKING:  # import kept lazy to avoid a cache <-> core cycle
    from repro.cache.cache import EvictedLine

DECOMPRESSION_LATENCY = 5
"""Cycles added when the demanded line arrives compressed (paper §III-A)."""


class LLCView(ABC):
    """What a memory controller may observe/do in the LLC."""

    @abstractmethod
    def probe(self, addr: int) -> Optional[EvictedLine]:
        """Peek at a resident line (no LRU side effects), or ``None``."""

    @abstractmethod
    def force_evict(self, addr: int) -> Optional[EvictedLine]:
        """Remove a line for ganged eviction, returning its final state."""

    @abstractmethod
    def is_sampled_set(self, addr: int) -> bool:
        """Whether the line maps to a Dynamic-PTMC sampled LLC set."""


class NullLLCView(LLCView):
    """An empty LLC — used by unit tests and by flush-time evictions."""

    def probe(self, addr: int) -> Optional[EvictedLine]:
        return None

    def force_evict(self, addr: int) -> Optional[EvictedLine]:
        return None

    def is_sampled_set(self, addr: int) -> bool:
        return False


class MemoryController(ABC):
    """Base class wiring a controller to its DRAM timing and storage."""

    name: str = "base"

    def __init__(self, memory: PhysicalMemory, dram: DRAMSystem) -> None:
        self.memory = memory
        self.dram = dram

    @abstractmethod
    def read_line(self, addr: int, now: int, core_id: int, llc: LLCView) -> ReadResult:
        """Service an LLC read miss for ``addr``."""

    @abstractmethod
    def handle_eviction(
        self, evicted: EvictedLine, now: int, core_id: int, llc: LLCView
    ) -> WriteResult:
        """Service an LLC eviction (clean or dirty)."""

    def register_stats(self, scope: StatScope) -> None:
        """Register this design's counters under its registry namespace.

        The base controller has none; designs with statistics override
        this and add theirs (one line per counter).
        """

    def storage_bits(self) -> Dict[str, int]:
        """Per-structure on-chip storage budget (Table III)."""
        return {}

    def total_storage_bytes(self) -> float:
        return sum(self.storage_bits().values()) / 8.0
