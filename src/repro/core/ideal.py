"""Idealised TMC: compression benefits with zero bandwidth overheads.

The paper's upper bound (§II-E, Figs. 5 and 15): a compressed memory that
"does not maintain any metadata and simply streams out lines in the same
location that are compressed together", and that incurs *no* bandwidth
overhead of any kind — no metadata lookups, no mispredicted accesses, no
compressed writebacks of clean data, no invalidates.  A read of a line
whose neighbour group is currently compressible streams out the whole
group in one access; everything else behaves like uncompressed memory.

Functionally, lines always live at their home slots (the co-location is
"oracular"), which is what makes the design overhead-free and also why it
is unimplementable in real hardware.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.cache import EvictedLine
from repro.compression.base import CompressionAlgorithm
from repro.compression.hybrid import HybridCompressor
from repro.core import address_map
from repro.core.base_controller import DECOMPRESSION_LATENCY, LLCView, MemoryController
from repro.core.packing import payload_budget
from repro.core.types import Category, Level, ReadResult, WriteResult
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem


class IdealTMCController(MemoryController):
    """Oracle TMC: maximum co-fetch, zero overhead (paper's "Ideal TMC")."""

    name = "ideal_tmc"

    def __init__(
        self,
        memory: PhysicalMemory,
        dram: DRAMSystem,
        compressor: Optional[CompressionAlgorithm] = None,
        marker_size: int = 4,
        decompression_latency: int = DECOMPRESSION_LATENCY,
    ) -> None:
        super().__init__(memory, dram)
        self.compressor = compressor if compressor is not None else HybridCompressor()
        self.marker_size = marker_size
        self.decompression_latency = decompression_latency
        self._write_credit: dict = {}

    def _fits(self, addrs, level: Level) -> bool:
        """Oracle check: would these lines compress into one slot?

        Uses the same size budget as the real designs (payloads + length
        bytes + marker reserve) so the co-fetch opportunity matches what
        PTMC could achieve with perfect knowledge.
        """
        budget = payload_budget(level, self.marker_size)
        total = 0
        for addr in addrs:
            size = self.compressor.compressed_size(self.memory.read(addr))
            if size >= 64:
                return False
            total += size
            if total > budget:
                return False
        return True

    def read_line(self, addr: int, now: int, core_id: int, llc: LLCView) -> ReadResult:
        completion = self.dram.access(addr, now, Category.DATA_READ)
        group = address_map.group_lines(addr)
        if self._fits(group, Level.QUAD):
            co_fetched, level = group, Level.QUAD
        else:
            pair = address_map.pair_lines(addr)
            if self._fits(pair, Level.PAIR):
                co_fetched, level = pair, Level.PAIR
            else:
                co_fetched, level = [addr], Level.UNCOMPRESSED
        extras = {m: self.memory.read(m) for m in co_fetched if m != addr}
        if level is not Level.UNCOMPRESSED:
            completion += self.decompression_latency
        return ReadResult(
            addr=addr,
            data=self.memory.read(addr),
            level=level,
            completion=completion,
            extra_lines=extras,
        )

    def handle_eviction(
        self, evicted: EvictedLine, now: int, core_id: int, llc: LLCView
    ) -> WriteResult:
        """Dirty writebacks only; compressible groups combine their writes.

        The oracle also gets compression's *write*-bandwidth benefit: when
        a dirty line's group is currently co-compressible, one 64-byte
        write covers the whole group, so subsequent dirty evictions of its
        members are absorbed (a per-slot write credit models this without
        tracking timing).
        """
        if not evicted.dirty:
            return WriteResult()  # clean evictions are free, as in the baseline
        self.memory.write(evicted.addr, evicted.data)
        group = address_map.group_lines(evicted.addr)
        if self._fits(group, Level.QUAD):
            slot, credit = address_map.group_base(evicted.addr), 3
        else:
            pair = address_map.pair_lines(evicted.addr)
            if self._fits(pair, Level.PAIR):
                slot, credit = address_map.pair_base(evicted.addr), 1
            else:
                slot, credit = evicted.addr, 0
        remaining = self._write_credit.get(slot, 0)
        if remaining > 0:
            self._write_credit[slot] = remaining - 1
            return WriteResult()  # absorbed by the group's combined write
        self.dram.access(evicted.addr, now, Category.DATA_WRITE)
        if credit:
            self._write_credit[slot] = credit
        return WriteResult(writes=1)
