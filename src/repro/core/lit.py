"""Line Inversion Table (paper §IV-C, Fig. 11).

The LIT records the physical slots whose uncompressed data collided with
a marker value and was therefore stored bit-inverted.  The on-chip table
holds 16 entries (valid bit + 30-bit line address = 64 bytes total) —
enough because concurrent collisions are astronomically rare with keyed
per-line markers.

Two overflow-handling options from the paper are modelled:

- ``LITPolicy.REKEY`` (Option 2): regenerate the marker key and re-encode
  memory; the controller performs the sweep and the LIT is cleared.
- ``LITPolicy.MEMORY_MAPPED`` (Option 1): fall back to an inversion bit
  per line kept in memory, at the cost of one extra memory access whenever
  a possibly-inverted line must be disambiguated and the on-chip entries
  cannot answer.
"""

from __future__ import annotations

from enum import Enum
from typing import Set


class LITPolicy(Enum):
    """What to do when the on-chip LIT fills up."""

    REKEY = "rekey"
    MEMORY_MAPPED = "memory_mapped"


class LITOverflow(Exception):
    """Raised on insertion into a full LIT under the REKEY policy.

    The controller catches this and performs the rekey + re-encode sweep.
    """


class LineInversionTable:
    """On-chip table of line addresses stored in inverted form."""

    def __init__(self, capacity: int = 16, policy: LITPolicy = LITPolicy.REKEY) -> None:
        if capacity < 1:
            raise ValueError("LIT needs at least one entry")
        self.capacity = capacity
        self.policy = policy
        self._entries: Set[int] = set()
        #: memory-mapped inversion bits (Option 1 spill); conceptually these
        #: live in DRAM — the controller charges an access when it reads them.
        self._spilled: Set[int] = set()
        self.overflows = 0
        self.spill_lookups = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, loc: int) -> bool:
        return loc in self._entries

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, loc: int) -> bool:
        """Record slot ``loc`` as inverted.

        Returns ``True`` if the entry spilled to the memory-mapped table
        (the caller must charge a DRAM write).  Raises :class:`LITOverflow`
        under the REKEY policy when the table is full.
        """
        if loc in self._entries:
            return False
        if self.full:
            self.overflows += 1
            if self.policy is LITPolicy.REKEY:
                raise LITOverflow(loc)
            self._spilled.add(loc)
            return True
        self._entries.add(loc)
        return False

    def force_spill(self, loc: int) -> bool:
        """Last-resort spill to the memory-mapped bitmap, regardless of policy.

        Used by the controller when bounded rekeying gives up (fresh
        markers kept colliding): correctness demands the inversion be
        recorded *somewhere*, so the entry goes to the in-memory bitmap
        even under ``REKEY``.  Returns ``True`` if a spill entry was
        written (the caller charges the DRAM access).
        """
        if loc in self._entries:
            return False
        self._spilled.add(loc)
        return True

    def remove(self, loc: int) -> bool:
        """Forget ``loc`` (its data no longer collides).

        Returns ``True`` if a memory-mapped entry was touched (DRAM write).
        """
        self._entries.discard(loc)
        if loc in self._spilled:
            self._spilled.discard(loc)
            return True
        return False

    def is_inverted(self, loc: int) -> bool:
        """Whether slot ``loc`` currently holds inverted data.

        Under ``MEMORY_MAPPED``, a miss in the on-chip entries requires
        consulting the in-memory bitmap; the lookup is counted so the
        controller can charge the extra access (paper: "the worst-case
        effect would simply be twice the bandwidth consumption").
        """
        if loc in self._entries:
            return True
        if self.policy is LITPolicy.MEMORY_MAPPED or self._spilled:
            # under REKEY the bitmap is only populated by force_spill's
            # bounded-rekey fallback; consult it (and charge the lookup)
            # whenever it could hold entries
            self.spill_lookups += 1
            return loc in self._spilled
        return False

    def clear(self) -> None:
        """Drop all entries (after a rekey re-encoded every line)."""
        self._entries.clear()
        self._spilled.clear()

    def entries(self) -> Set[int]:
        """Snapshot of the on-chip entries (for re-encoding sweeps)."""
        return set(self._entries)

    def storage_bits(self) -> int:
        """On-chip cost per Table III: 16 entries x 32 bits = 64 bytes.

        Each entry is a valid bit plus a 30-bit line address, padded to a
        32-bit word as the paper's 64-byte total implies.
        """
        return self.capacity * 32
