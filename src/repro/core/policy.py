"""Compression enable/disable policies (paper §V, Fig. 16).

Static-PTMC always compresses.  Dynamic-PTMC samples 1% of LLC sets that
*always* compress, tracks the bandwidth cost and benefit of compression on
those sets with a 12-bit saturating utility counter, and lets the counter's
MSB decide the policy for the remaining 99% of sets:

- benefit: a demand hit on a line that was installed as a bandwidth-free
  co-fetch (useful prefetch) → increment;
- cost: a compressed writeback of clean data, an invalidate write, or an
  LLP-misprediction extra access → decrement.

The per-core variant keeps one counter per core (the paper provisions a
3-bit requesting-core id per line in sampled sets for this).
"""

from __future__ import annotations

from typing import List

from repro.telemetry import StatScope


class CompressionPolicy:
    """Interface consulted by the PTMC controller and the cache hierarchy."""

    def enabled_for(self, core_id: int) -> bool:
        """Should non-sampled sets compress on behalf of this core?"""
        return True

    def is_sampled_set(self, set_index: int) -> bool:
        """Is this LLC set one of the always-compress sampled sets?"""
        return False

    def on_benefit(self, core_id: int) -> None:
        """A sampled-set useful prefetch was observed."""

    def on_cost(self, core_id: int) -> None:
        """A sampled-set compression overhead access was observed."""

    def register_stats(self, scope: StatScope) -> None:
        """Register policy counters (``policy.*``); stateless policies: none."""


class AlwaysOnPolicy(CompressionPolicy):
    """Static-PTMC: compression unconditionally enabled."""


class AlwaysOffPolicy(CompressionPolicy):
    """Compression never enabled (useful for ablations and tests)."""

    def enabled_for(self, core_id: int) -> bool:
        return False


class SamplingPolicy(CompressionPolicy):
    """Dynamic-PTMC set-sampling cost/benefit policy.

    ``sample_period`` is the reciprocal of the sampled fraction: with the
    paper's 1% sampling of an 8192-set LLC, one set in every 128 samples
    (wired so set index ``s`` is sampled iff ``s % period == offset``).
    """

    def __init__(
        self,
        counter_bits: int = 12,
        sample_period: int = 128,
        num_cores: int = 8,
        per_core: bool = True,
        sample_offset: int = 7,
        benefit_weight: int = 1,
    ) -> None:
        if counter_bits < 2:
            raise ValueError("counter needs at least 2 bits")
        if sample_period < 1:
            raise ValueError("sample period must be positive")
        self.counter_bits = counter_bits
        self.sample_period = sample_period
        #: increment applied per useful prefetch.  The paper uses +-1; in
        #: this simulator writes are drained at low priority so a cost
        #: event (one buffered write) interferes far less than the full
        #: read a useful prefetch saves -- the weight rebalances the
        #: comparison to match the timing model (see DESIGN.md).
        self.benefit_weight = benefit_weight
        self.sample_offset = sample_offset % sample_period
        self.per_core = per_core
        self.num_cores = num_cores
        self._max = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)  # MSB weight
        count = num_cores if per_core else 1
        # start optimistic (3/4 of range): compression stays enabled through
        # the initial compaction of the resident set, whose one-time cost
        # would otherwise turn it off before any benefit can be observed
        initial = self._threshold + self._threshold // 2
        self._counters: List[int] = [initial] * count
        self.benefits = 0
        self.costs = 0

    def _slot(self, core_id: int) -> int:
        return core_id % len(self._counters) if self.per_core else 0

    def counter(self, core_id: int = 0) -> int:
        return self._counters[self._slot(core_id)]

    def enabled_for(self, core_id: int) -> bool:
        """Compression is on while the counter's MSB is set."""
        return self._counters[self._slot(core_id)] >= self._threshold

    def is_sampled_set(self, set_index: int) -> bool:
        return set_index % self.sample_period == self.sample_offset

    def on_benefit(self, core_id: int) -> None:
        self.benefits += 1
        slot = self._slot(core_id)
        self._counters[slot] = min(
            self._max, self._counters[slot] + self.benefit_weight
        )

    def on_cost(self, core_id: int) -> None:
        self.costs += 1
        slot = self._slot(core_id)
        if self._counters[slot] > 0:
            self._counters[slot] -= 1

    def register_stats(self, scope: StatScope) -> None:
        """Expose cost/benefit totals and the live enabled fraction.

        Whole-run window: the utility counters integrate history from the
        start of the run (warmup included) — windowing the totals would
        misstate what actually drove the policy's decisions.
        """
        scope.counter("benefits", lambda: self.benefits, windowed=False)
        scope.counter("costs", lambda: self.costs, windowed=False)
        scope.gauge(
            "compression_enabled",
            lambda: float(
                sum(self.enabled_for(c) for c in range(self.num_cores))
            )
            / self.num_cores,
        )

    def storage_bits(self) -> int:
        """Counter storage (Table III lists 12 bytes for the counters)."""
        return len(self._counters) * self.counter_bits
