"""The paper's contribution: PTMC and the designs it is evaluated against.

Public surface:

- :class:`PTMCController` / :class:`PTMCConfig` — the proposed design
  (inline markers + LLP + LIT); pair with :class:`SamplingPolicy` for
  Dynamic-PTMC or :class:`AlwaysOnPolicy` for Static-PTMC.
- :class:`MetadataTableController` — prior table-based TMC baseline.
- :class:`IdealTMCController` — zero-overhead oracle upper bound.
- :class:`UncompressedController` — the normalisation baseline.
- :class:`NextLinePrefetchController` — Table VI's prefetch comparison.
"""

from repro.core import address_map
from repro.core.base_controller import (
    DECOMPRESSION_LATENCY,
    LLCView,
    MemoryController,
    NullLLCView,
)
from repro.core.ideal import IdealTMCController
from repro.core.lit import LineInversionTable, LITOverflow, LITPolicy
from repro.core.llp import LineLocationPredictor
from repro.core.markers import MarkerScheme, SlotClass, SlotKind, invert
from repro.core.memzip import MemZipConfig, MemZipController
from repro.core.metadata_table import MetadataTableConfig, MetadataTableController
from repro.core.packing import (
    compress_group,
    decompress_group,
    pack_slot,
    payload_budget,
    unpack_slot,
)
from repro.core.policy import (
    AlwaysOffPolicy,
    AlwaysOnPolicy,
    CompressionPolicy,
    SamplingPolicy,
)
from repro.core.prefetch import NextLinePrefetchController
from repro.core.ptmc import PTMCConfig, PTMCController
from repro.core.types import (
    COMPRESSION_COST_CATEGORIES,
    Category,
    Level,
    ReadResult,
    WriteResult,
)
from repro.core.uncompressed import UncompressedController

__all__ = [
    "address_map",
    "DECOMPRESSION_LATENCY",
    "LLCView",
    "MemoryController",
    "NullLLCView",
    "IdealTMCController",
    "LineInversionTable",
    "LITOverflow",
    "LITPolicy",
    "LineLocationPredictor",
    "MarkerScheme",
    "SlotClass",
    "SlotKind",
    "invert",
    "MemZipConfig",
    "MemZipController",
    "MetadataTableConfig",
    "MetadataTableController",
    "compress_group",
    "decompress_group",
    "pack_slot",
    "payload_budget",
    "unpack_slot",
    "AlwaysOffPolicy",
    "AlwaysOnPolicy",
    "CompressionPolicy",
    "SamplingPolicy",
    "NextLinePrefetchController",
    "PTMCConfig",
    "PTMCController",
    "COMPRESSION_COST_CATEGORIES",
    "Category",
    "Level",
    "ReadResult",
    "WriteResult",
    "UncompressedController",
]
