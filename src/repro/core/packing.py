"""Packing compressed neighbour lines into a single 64-byte slot.

A compressed slot holds 2 or 4 lines' payloads plus the inline marker
(paper Fig. 10).  The layout is self-describing given the count implied
by the marker:

``[len_0 .. len_{n-1}] [payload_0 .. payload_{n-1}] [zero pad] [marker]``

One length byte per member is charged against the 64-byte budget, so a
pair must compress to ``64 - 4 - 2 = 58`` payload bytes and a quad to
``64 - 4 - 4 = 56`` — the spirit of the paper's "60 bytes of usable
space once the 4-byte marker is reserved".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError
from repro.core.types import Level


def payload_budget(level: Level, marker_size: int = 4) -> int:
    """Usable payload bytes in one slot at ``level``."""
    return LINE_SIZE - marker_size - int(level)


def pack_slot(
    payloads: Sequence[bytes], marker: bytes
) -> Optional[bytes]:
    """Assemble a compressed slot, or ``None`` if the payloads don't fit."""
    count = len(payloads)
    if count not in (2, 4):
        raise ValueError("slots hold 2 or 4 compressed lines")
    total = count + sum(len(p) for p in payloads) + len(marker)
    if total > LINE_SIZE:
        return None
    if any(len(p) == 0 or len(p) > 255 for p in payloads):
        raise ValueError("payloads must be 1..255 bytes")
    parts = [bytes(len(p) for p in payloads)]
    parts.extend(payloads)
    parts.append(b"\x00" * (LINE_SIZE - total))
    parts.append(marker)
    return b"".join(parts)


def unpack_slot(slot: bytes, level: Level) -> List[bytes]:
    """Split a compressed slot back into its member payloads."""
    if len(slot) != LINE_SIZE:
        raise ValueError("slots are exactly 64 bytes")
    count = int(level)
    if count not in (2, 4):
        raise CompressionError("only pair/quad slots can be unpacked")
    lengths = slot[:count]
    payloads = []
    pos = count
    for length in lengths:
        if length == 0 or pos + length > LINE_SIZE:
            raise CompressionError("corrupt slot header")
        payloads.append(slot[pos : pos + length])
        pos += length
    return payloads


def compress_group(
    algorithm: CompressionAlgorithm,
    lines: Sequence[bytes],
    marker: bytes,
) -> Optional[bytes]:
    """Compress 2 or 4 neighbour lines into one slot, or ``None``.

    This is the check the memory controller performs at LLC eviction:
    can this group fit one 64-byte slot including the marker?

    When the algorithm keeps a size memo (``cached_size``), known sizes
    answer the fit question without materialising any payload.  The
    reject conditions replicate the slow path exactly: a member of size
    ``LINE_SIZE`` is one ``compress`` would refuse (every algorithm
    returns ``None`` rather than a >= 64-byte payload), and the budget
    test is the same inequality :func:`pack_slot` applies — so the fast
    path can only skip work, never change the answer.
    """
    sizer = getattr(algorithm, "cached_size", None)
    if sizer is not None:
        total = len(marker) + len(lines)
        for line in lines:
            size = sizer(line)
            if size is None:
                break  # unknown member: fall through to the slow path
            if size >= LINE_SIZE:
                return None  # incompressible member
            total += size
        else:
            if total > LINE_SIZE:
                return None
    payloads = []
    for line in lines:
        payload = algorithm.compress(line)
        if payload is None:
            return None
        payloads.append(payload)
    return pack_slot(payloads, marker)


def decompress_group(
    algorithm: CompressionAlgorithm, slot: bytes, level: Level
) -> List[bytes]:
    """Recover all member lines of a compressed slot, in group order."""
    return [algorithm.decompress(p) for p in unpack_slot(slot, level)]
