"""Inline-metadata markers (paper §IV-C, Figs. 10, 11, 13).

Compressed slots are required to end with a 4-byte *marker* whose value
identifies the compression level (2:1 or 4:1).  Slots whose previous
contents became stale after a relocation are overwritten with a 64-byte
*Invalid-Line marker* (Marker-IL).  All marker values are generated
per-line from a keyed hash so an adversary cannot force collisions
(paper: "Attack-Resilient Marker Codes").

An uncompressed line whose data coincidentally ends with a marker (or
equals Marker-IL) would be misinterpreted, so it is stored bit-inverted
and recorded in the Line Inversion Table; an inverted line's tail matches
the *complement* of a marker, which classification reports separately so
the controller can consult the LIT.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from repro.compression.base import LINE_SIZE
from repro.core.types import Level
from repro.util.hashing import KeyedHash, mix64

MARKER_SIZE_DEFAULT = 4
"""4-byte markers suit a 16GB memory (2^28 lines => <1 expected collision);
the paper recommends 5 bytes for systems with hundreds of gigabytes."""

_TWEAK_PAIR = 1
_TWEAK_QUAD = 2
_TWEAK_INVALID = 3


class SlotKind(Enum):
    """Interpretation of a 64-byte slot read from memory."""

    UNCOMPRESSED = "uncompressed"
    PAIR = "pair"
    QUAD = "quad"
    INVALID = "invalid"
    #: tail matches the complement of a marker — line is uncompressed but
    #: may have been stored inverted; the LIT disambiguates.
    MAYBE_INVERTED = "maybe_inverted"


@dataclass(frozen=True)
class SlotClass:
    """Classification of one slot: its kind and the matched level, if any."""

    kind: SlotKind
    level: Optional[Level] = None


_INVERT_TABLE = bytes(i ^ 0xFF for i in range(256))


def invert(data: bytes) -> bytes:
    """Bitwise complement of a byte string (line inversion)."""
    return data.translate(_INVERT_TABLE)


@dataclass(frozen=True)
class _SlotMarkers:
    """All marker values relevant to one slot, precomputed for the hot path."""

    pair: bytes
    quad: bytes
    invalid: bytes
    inv_pair: bytes
    inv_quad: bytes
    inv_invalid: bytes


class MarkerScheme:
    """Per-line marker generation and slot classification.

    ``key`` plays the role of the machine's secret marker key; calling
    :meth:`rekey` models the paper's LIT-overflow recovery that regenerates
    all marker values (§IV-C Option 2).  Marker values are memoized per
    slot because slot classification runs on every memory read.
    """

    def __init__(self, key: int = 0x5EED, marker_size: int = MARKER_SIZE_DEFAULT) -> None:
        if not 1 <= marker_size <= 8:
            raise ValueError("marker size must be 1..8 bytes")
        self.marker_size = marker_size
        self._generation = 0
        self._set_key(key)

    @property
    def generation(self) -> int:
        """Number of rekey events so far (0 initially)."""
        return self._generation

    def rekey(self) -> None:
        """Regenerate the secret key; all markers change (LIT overflow path)."""
        self._generation += 1
        self._set_key(self._hash.hash64(self._generation, tweak=0xDEAD))

    def _set_key(self, key: int) -> None:
        self._hash = KeyedHash(key)
        self._cache: Dict[int, _SlotMarkers] = {}

    # Marker values ------------------------------------------------------

    def _derive(self, loc: int) -> _SlotMarkers:
        """Compute the collision-free marker set for one slot.

        The pair marker, quad marker, their complements and the tail of
        Marker-IL must be pairwise distinct or classification would be
        ambiguous; the (1-in-2^32) pathological clash is resolved by
        bumping a deterministic retry counter.
        """
        size = self.marker_size
        # one keyed digest per slot seeds all three markers (cheap: marker
        # derivation runs once per slot touched); unpredictability still
        # rests on the key.  Marker-IL repeats one 8-byte block.
        seed = self._hash.hash64(loc, _TWEAK_INVALID)
        invalid_block = seed.to_bytes(8, "little")
        invalid = (invalid_block * ((LINE_SIZE + 7) // 8))[:LINE_SIZE]
        taken = {invalid[-size:], invert(invalid[-size:])}

        def fresh(tweak: int) -> bytes:
            attempt = tweak
            while True:
                value = mix64(seed ^ attempt).to_bytes(8, "little")[:size]
                if value not in taken and invert(value) not in taken:
                    taken.add(value)
                    taken.add(invert(value))
                    return value
                attempt += 0x100

        pair = fresh(_TWEAK_PAIR)
        quad = fresh(_TWEAK_QUAD)
        return _SlotMarkers(
            pair=pair,
            quad=quad,
            invalid=invalid,
            inv_pair=invert(pair),
            inv_quad=invert(quad),
            inv_invalid=invert(invalid),
        )

    def _slot_markers(self, loc: int) -> _SlotMarkers:
        cached = self._cache.get(loc)
        if cached is None:
            cached = self._derive(loc)
            self._cache[loc] = cached
        return cached

    def marker(self, loc: int, level: Level) -> bytes:
        """The marker a compressed slot at ``loc`` must end with."""
        markers = self._slot_markers(loc)
        if level is Level.PAIR:
            return markers.pair
        if level is Level.QUAD:
            return markers.quad
        raise ValueError("uncompressed slots carry no marker")

    def invalid_marker(self, loc: int) -> bytes:
        """The 64-byte Invalid-Line marker (Marker-IL) for slot ``loc``."""
        return self._slot_markers(loc).invalid

    # Classification -----------------------------------------------------

    def classify(self, loc: int, slot: bytes) -> SlotClass:
        """Interpret the 64 bytes read from slot ``loc``.

        Order of checks mirrors the hardware: full-line Marker-IL first,
        then the compressed markers on the tail, then their complements
        (possible inversion), else plain uncompressed data.
        """
        if len(slot) != LINE_SIZE:
            raise ValueError("slots are exactly 64 bytes")
        markers = self._slot_markers(loc)
        tail = slot[-self.marker_size :]
        if tail == markers.quad:
            return SlotClass(SlotKind.QUAD, Level.QUAD)
        if tail == markers.pair:
            return SlotClass(SlotKind.PAIR, Level.PAIR)
        if slot == markers.invalid:
            return SlotClass(SlotKind.INVALID)
        if tail == markers.inv_quad or tail == markers.inv_pair or slot == markers.inv_invalid:
            return SlotClass(SlotKind.MAYBE_INVERTED)
        return SlotClass(SlotKind.UNCOMPRESSED)

    def collides(self, loc: int, line: bytes) -> bool:
        """True when uncompressed ``line`` would be misread at ``loc``.

        Only genuine marker matches (2:1, 4:1, Marker-IL) force inversion.
        A tail that happens to equal a marker's *complement* is stored
        as-is: reads classify it as possibly-inverted and the LIT (which
        will miss) resolves it to plain data — inverting it instead would
        manufacture a real marker and corrupt the line.
        """
        kind = self.classify(loc, line).kind
        return kind in (SlotKind.PAIR, SlotKind.QUAD, SlotKind.INVALID)

    def storage_bits(self) -> int:
        """On-chip storage for the global marker seeds (Table III).

        Two 4-byte compressed-line markers plus the 64-byte invalid marker,
        as provisioned in the paper's overhead table.
        """
        return (2 * self.marker_size + LINE_SIZE) * 8
