"""Next-line prefetching on uncompressed memory (paper Table VI).

The paper contrasts PTMC's *bandwidth-free* adjacent-line installs with a
conventional next-line prefetcher, which obtains the adjacent line at the
cost of an extra DRAM access.  On bandwidth-bound workloads that extra
traffic backfires — the comparison shows why getting neighbours "for
free" out of a compressed slot matters.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.base_controller import LLCView, MemoryController
from repro.core.types import Category, Level, ReadResult, WriteResult
from repro.cache.cache import EvictedLine
from repro.telemetry import StatScope


class NextLinePrefetchController(MemoryController):
    """Uncompressed memory + always-on next-line prefetch into the LLC."""

    name = "nextline_prefetch"

    def __init__(self, memory, dram, resident_filter: Optional[Callable[[int], bool]] = None):
        super().__init__(memory, dram)
        #: callable answering "is this line already in the LLC?" so the
        #: prefetcher does not waste bandwidth on resident lines; wired up
        #: by the hierarchy at construction time.
        self.resident_filter = resident_filter
        self.prefetches_issued = 0

    #: lines per 4KB page; next-line prefetchers do not cross page
    #: boundaries (the next physical page belongs to an unrelated frame)
    LINES_PER_PAGE = 64

    def register_stats(self, scope: StatScope) -> None:
        """Expose the prefetch counter (``nextline_prefetch.*``)."""
        scope.counter("prefetches_issued", lambda: self.prefetches_issued)

    def read_line(self, addr: int, now: int, core_id: int, llc: LLCView) -> ReadResult:
        completion = self.dram.access(addr, now, Category.DATA_READ)
        extras = {}
        next_addr = addr + 1
        already_resident = (
            self.resident_filter is not None and self.resident_filter(next_addr)
        )
        crosses_page = next_addr % self.LINES_PER_PAGE == 0
        if (
            next_addr < self.memory.capacity_lines
            and not already_resident
            and not crosses_page
        ):
            self.dram.access(next_addr, now, Category.PREFETCH_READ)
            extras[next_addr] = self.memory.read(next_addr)
            self.prefetches_issued += 1
        return ReadResult(
            addr=addr,
            data=self.memory.read(addr),
            level=Level.UNCOMPRESSED,
            completion=completion,
            extra_lines=extras,
        )

    def handle_eviction(
        self, evicted: EvictedLine, now: int, core_id: int, llc: LLCView
    ) -> WriteResult:
        if not evicted.dirty:
            return WriteResult()
        self.dram.access(evicted.addr, now, Category.DATA_WRITE)
        self.memory.write(evicted.addr, evicted.data)
        return WriteResult(writes=1)
