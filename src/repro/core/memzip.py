"""MemZip-style TMC on non-commodity memory (paper §I, §II-B).

MemZip (Shafiee et al., HPCA 2014) is the prior Transparent
Memory-Compression design the paper positions itself against.  It keeps
every line at its home location but stores it *compressed*, streaming out
only as many bursts as the compressed size needs — which requires
non-commodity DIMMs (the whole line in one chip, variable burst lengths)
and still needs a metadata table to know each line's burst count before
issuing the read.

This controller models that organisation: per-line size classes in a
memory-mapped table with an on-chip metadata cache, and data accesses
whose bus occupancy scales with the compressed size (in 8-byte beats).
It gets *latency/bandwidth* benefits per access but no neighbour
co-fetch, and it pays the same metadata traffic that motivates PTMC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.cache import Cache, EvictedLine
from repro.compression.base import LINE_SIZE, CompressionAlgorithm
from repro.compression.hybrid import HybridCompressor
from repro.core.base_controller import DECOMPRESSION_LATENCY, LLCView, MemoryController
from repro.types import Category, Level, ReadResult, WriteResult
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.telemetry import StatScope

_PLACEHOLDER = b"\x00" * 64


@dataclass(frozen=True)
class MemZipConfig:
    """Metadata organisation and burst quantisation."""

    cache_bytes: int = 32 * 1024
    cache_ways: int = 8
    lines_per_metadata_slot: int = 128  # 4-bit burst count x 128 lines = 64B
    decompression_latency: int = DECOMPRESSION_LATENCY


class MemZipController(MemoryController):
    """Per-line compressed storage with variable burst lengths."""

    name = "memzip"

    def __init__(
        self,
        memory: PhysicalMemory,
        dram: DRAMSystem,
        compressor: Optional[CompressionAlgorithm] = None,
        config: MemZipConfig = MemZipConfig(),
    ) -> None:
        super().__init__(memory, dram)
        self.config = config
        self.compressor = compressor if compressor is not None else HybridCompressor()
        #: burst count (8-byte beats, 1..8) per line; authoritative table
        self._bursts: Dict[int, int] = {}
        self.metadata_cache = Cache(
            config.cache_bytes, config.cache_ways, name="memzip_metadata"
        )

    # Metadata plumbing ----------------------------------------------------

    def _metadata_addr(self, line_addr: int) -> int:
        index = line_addr // self.config.lines_per_metadata_slot
        return self.memory.capacity_lines - 1 - index

    def _touch_metadata(self, line_addr: int, now: int, dirty: bool) -> None:
        meta_addr = self._metadata_addr(line_addr)
        hit = self.metadata_cache.lookup(meta_addr)
        if hit is not None:
            hit.dirty = hit.dirty or dirty
            return
        self.dram.access(meta_addr, now, Category.METADATA_READ)
        victim = self.metadata_cache.fill(meta_addr, _PLACEHOLDER, dirty=dirty)
        if victim is not None and victim.dirty:
            self.dram.access(victim.addr, now, Category.METADATA_WRITE)

    @property
    def metadata_hit_rate(self) -> float:
        return self.metadata_cache.hit_rate

    def register_stats(self, scope: StatScope) -> None:
        """Expose the metadata cache (``memzip.metadata_cache.*``).

        Whole-run window: MemZip has always reported its metadata hit
        rate over the entire run, warmup included, so the counters stay
        un-windowed to preserve that accounting.
        """
        self.metadata_cache.register_stats(
            scope.scope("metadata_cache"), windowed=False
        )

    def _burst_count(self, addr: int) -> int:
        return self._bursts.get(addr, 8)

    # Read path ------------------------------------------------------------

    def read_line(self, addr: int, now: int, core_id: int, llc: LLCView) -> ReadResult:
        self._touch_metadata(addr, now, dirty=False)
        bursts = self._burst_count(addr)
        completion = self.dram.access(
            addr, now, Category.DATA_READ, burst_bytes=bursts * 8
        )
        raw = self.memory.read(addr)
        if bursts == 8:
            data = raw
        else:
            # compressed slot layout: [payload length][payload][padding]
            payload = raw[1 : 1 + raw[0]]
            data = self.compressor.decompress(payload)
            completion += self.config.decompression_latency
        return ReadResult(
            addr=addr, data=data, level=Level.UNCOMPRESSED, completion=completion
        )

    # Eviction path ----------------------------------------------------------

    def handle_eviction(
        self, evicted: EvictedLine, now: int, core_id: int, llc: LLCView
    ) -> WriteResult:
        if not evicted.dirty:
            return WriteResult()  # compressed image in memory is still valid
        payload, size = self.compressor.compress_and_size(evicted.data)
        if payload is not None and size + 1 <= 56:
            stored = bytes([len(payload)]) + payload
            bursts = max(1, (len(stored) + 7) // 8)
            slot = stored.ljust(LINE_SIZE, b"\x00")
        else:
            bursts = 8
            slot = evicted.data
        previous = self._burst_count(evicted.addr)
        self._bursts[evicted.addr] = bursts
        self.dram.access(
            evicted.addr, now, Category.DATA_WRITE, burst_bytes=bursts * 8
        )
        self.memory.write(evicted.addr, slot)
        self._touch_metadata(evicted.addr, now, dirty=bursts != previous)
        return WriteResult(writes=1)

    def storage_bits(self) -> Dict[str, int]:
        return {"metadata_cache": self.config.cache_bytes * 8}
