"""Prior-art TMC with a memory-mapped metadata table (paper §II-C/D).

This is the conventional compressed-memory organisation PTMC is compared
against throughout the paper (Figs. 4, 5, 12): per-line Compression
Status Information (CSI, 2 bits) lives in a dedicated region of memory
and is cached on-chip in a 32KB metadata cache.  Every read must consult
the CSI to learn the line's location and interpretation; a metadata-cache
miss costs a DRAM access — the bandwidth bloat the paper eliminates.

Because the CSI is authoritative there are no markers, no invalidates and
no mispredictions; stale copies left behind by relocation are harmless.
One 64-byte metadata line covers 256 data lines (four consecutive pages),
capturing the spatial locality the paper grants prior designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.cache import Cache, EvictedLine
from repro.compression.base import CompressionAlgorithm
from repro.compression.hybrid import HybridCompressor
from repro.core import address_map
from repro.core.base_controller import DECOMPRESSION_LATENCY, LLCView, MemoryController
from repro.core.packing import compress_group, decompress_group
from repro.core.types import Category, Level, ReadResult, WriteResult
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.telemetry import StatScope

_EMPTY_MARKER = b""


@dataclass(frozen=True)
class MetadataTableConfig:
    """Metadata-cache and table organisation."""

    cache_bytes: int = 32 * 1024
    cache_ways: int = 8
    lines_per_metadata_slot: int = 256  # 2 bits x 256 lines = 64 bytes
    decompression_latency: int = DECOMPRESSION_LATENCY


@dataclass
class _LineState:
    addr: int
    data: bytes
    dirty: bool
    fill_level: Level


class MetadataTableController(MemoryController):
    """Table-based TMC: CSI in memory + on-chip metadata cache."""

    name = "tmc_table"

    def __init__(
        self,
        memory: PhysicalMemory,
        dram: DRAMSystem,
        compressor: Optional[CompressionAlgorithm] = None,
        config: MetadataTableConfig = MetadataTableConfig(),
    ) -> None:
        super().__init__(memory, dram)
        self.config = config
        self.compressor = compressor if compressor is not None else HybridCompressor()
        self._csi: Dict[int, Level] = {}
        self.metadata_cache = Cache(
            config.cache_bytes, config.cache_ways, name="metadata_cache"
        )
        self.clean_writebacks = 0

    # Metadata plumbing ----------------------------------------------------

    def _metadata_addr(self, line_addr: int) -> int:
        """Physical slot of the metadata line covering ``line_addr``."""
        index = line_addr // self.config.lines_per_metadata_slot
        return self.memory.capacity_lines - 1 - index

    def _touch_metadata(self, line_addr: int, now: int, dirty: bool) -> None:
        """Access the CSI through the metadata cache, charging DRAM on miss."""
        meta_addr = self._metadata_addr(line_addr)
        hit = self.metadata_cache.lookup(meta_addr)
        if hit is not None:
            hit.dirty = hit.dirty or dirty
            return
        self.dram.access(meta_addr, now, Category.METADATA_READ)
        victim = self.metadata_cache.fill(meta_addr, _placeholder, dirty=dirty)
        if victim is not None and victim.dirty:
            self.dram.access(victim.addr, now, Category.METADATA_WRITE)

    def _csi_level(self, addr: int) -> Level:
        return self._csi.get(addr, Level.UNCOMPRESSED)

    def _csi_set(self, addr: int, level: Level) -> bool:
        """Update the table; returns whether the stored value changed."""
        if self._csi_level(addr) == level:
            return False
        if level is Level.UNCOMPRESSED:
            self._csi.pop(addr, None)
        else:
            self._csi[addr] = level
        return True

    @property
    def metadata_hit_rate(self) -> float:
        return self.metadata_cache.hit_rate

    def register_stats(self, scope: StatScope) -> None:
        """Expose the metadata cache (``tmc_table.metadata_cache.*``)."""
        scope.counter("clean_writebacks", lambda: self.clean_writebacks)
        self.metadata_cache.register_stats(scope.scope("metadata_cache"))

    # Read path ------------------------------------------------------------

    def read_line(self, addr: int, now: int, core_id: int, llc: LLCView) -> ReadResult:
        self._touch_metadata(addr, now, dirty=False)
        level = self._csi_level(addr)
        loc = address_map.location_for(addr, level)
        completion = self.dram.access(loc, now, Category.DATA_READ)
        slot = self.memory.read(loc)
        if level is Level.UNCOMPRESSED:
            return ReadResult(addr=addr, data=slot, level=level, completion=completion)
        members = address_map.slot_members(loc, level)
        lines = decompress_group(self.compressor, slot, level)
        extras = {m: line for m, line in zip(members, lines) if m != addr}
        return ReadResult(
            addr=addr,
            data=lines[members.index(addr)],
            level=level,
            completion=completion + self.config.decompression_latency,
            extra_lines=extras,
        )

    # Eviction path ----------------------------------------------------------

    def handle_eviction(
        self, evicted: EvictedLine, now: int, core_id: int, llc: LLCView
    ) -> WriteResult:
        result = WriteResult()
        gang = self._collect_gang(evicted, llc, result, now)
        candidates: Dict[int, _LineState] = dict(gang)
        for neighbour in address_map.group_lines(evicted.addr):
            if neighbour in candidates:
                continue
            resident = llc.probe(neighbour)
            if resident is not None:
                # previous residency comes from the authoritative CSI, not
                # the LLC tag, so skip-write decisions can never desync
                candidates[neighbour] = _LineState(
                    neighbour, resident.data, resident.dirty, self._csi_level(neighbour)
                )

        units = []
        for unit in self._plan_placement(evicted.addr, candidates):
            level, slot, members, packed = unit
            if level is Level.UNCOMPRESSED and members[0] not in gang:
                continue
            if level is not Level.UNCOMPRESSED and not any(m in gang for m in members):
                continue
            units.append(unit)
            if level is not Level.UNCOMPRESSED:
                for member in members:
                    if member not in gang:
                        llc.force_evict(member)
                        gang[member] = candidates[member]
                        result.ganged.append(member)
        result.level = max(
            (level for level, _, _, _ in units), default=Level.UNCOMPRESSED
        )

        csi_dirty = False
        for level, slot, members, packed in units:
            csi_dirty |= self._write_unit(level, slot, members, packed, gang, now, result)
        if csi_dirty:
            self._touch_metadata(evicted.addr, now, dirty=True)
        return result

    def _collect_gang(
        self, evicted: EvictedLine, llc: LLCView, result: WriteResult, now: int
    ) -> Dict[int, _LineState]:
        """Ganged eviction driven by the authoritative CSI."""
        gang: Dict[int, _LineState] = {
            evicted.addr: _LineState(
                evicted.addr, evicted.data, evicted.dirty, self._csi_level(evicted.addr)
            )
        }
        frontier = [evicted.addr]
        while frontier:
            addr = frontier.pop()
            level = gang[addr].fill_level
            if level is Level.UNCOMPRESSED:
                continue
            slot = address_map.location_for(addr, level)
            for member in address_map.slot_members(slot, level):
                if member in gang:
                    continue
                line = llc.force_evict(member)
                if line is not None:
                    gang[member] = _LineState(
                        member, line.data, line.dirty, self._csi_level(member)
                    )
                    result.ganged.append(member)
                    frontier.append(member)
                else:
                    # partner uncached: recover from the compressed slot (RMW)
                    self.dram.access(slot, now, Category.MAINTENANCE)
                    lines = decompress_group(
                        self.compressor, self.memory.read(slot), level
                    )
                    members_all = address_map.slot_members(slot, level)
                    gang[member] = _LineState(
                        member, lines[members_all.index(member)], False, level
                    )
                    frontier.append(member)
        return gang

    def _plan_placement(
        self, addr: int, candidates: Dict[int, _LineState]
    ) -> List[Tuple[Level, int, List[int], Optional[bytes]]]:
        base = address_map.group_base(addr)
        group = address_map.group_lines(addr)
        if all(a in candidates for a in group):
            packed = compress_group(
                self.compressor, [candidates[a].data for a in group], _EMPTY_MARKER
            )
            if packed is not None:
                return [(Level.QUAD, base, group, packed)]
        units: List[Tuple[Level, int, List[int], Optional[bytes]]] = []
        for pair_start in (base, base + 2):
            pair = [pair_start, pair_start + 1]
            present = [a for a in pair if a in candidates]
            if len(present) == 2:
                packed = compress_group(
                    self.compressor, [candidates[a].data for a in pair], _EMPTY_MARKER
                )
                if packed is not None:
                    units.append((Level.PAIR, pair_start, pair, packed))
                    continue
            for a in present:
                units.append((Level.UNCOMPRESSED, a, [a], None))
        return units

    def _write_unit(
        self,
        level: Level,
        slot: int,
        members: List[int],
        packed: Optional[bytes],
        gang: Dict[int, _LineState],
        now: int,
        result: WriteResult,
    ) -> bool:
        """Write one unit and update the CSI; returns whether CSI changed."""
        states = [gang[a] for a in members]
        any_dirty = any(s.dirty for s in states)
        updates = [self._csi_set(a, level) for a in members]  # no short-circuit
        changed = any(updates)
        if level is Level.UNCOMPRESSED:
            state = states[0]
            relocated = state.fill_level is not Level.UNCOMPRESSED
            if not state.dirty and not relocated:
                return changed
            category = Category.DATA_WRITE if state.dirty else Category.CLEAN_WRITEBACK
            self.dram.access(slot, now, category)
            self.memory.write(slot, state.data)
        else:
            unchanged = all(s.fill_level == level for s in states)
            if unchanged and not any_dirty:
                return changed
            category = Category.DATA_WRITE if any_dirty else Category.CLEAN_WRITEBACK
            self.dram.access(slot, now, category)
            self.memory.write(slot, packed)
        result.writes += 1
        if category is Category.CLEAN_WRITEBACK:
            result.clean_writebacks += 1
            self.clean_writebacks += 1
        return changed

    def storage_bits(self) -> Dict[str, int]:
        """On-chip cost: the 32KB metadata cache dominates."""
        return {"metadata_cache": self.config.cache_bytes * 8}


_placeholder = b"\x00" * 64
"""Metadata-cache lines model presence only; contents live in ``_csi``."""
