"""Line Location Predictor (paper §IV-B, Figs. 7, 8, 9).

The LLP predicts a line's compression status — and therefore, through the
TMC address mapping, its location — before the memory access is issued.
It exploits the observation that lines within a page tend to have similar
compressibility: a small direct-mapped *Last Compressibility Table* (LCT),
indexed by a hash of the page address, remembers the last compression
status observed for that index.  The prediction is verified for free by
the inline marker on the retrieved line; a misprediction triggers a
re-issue to the line's other candidate location(s) and an LCT update.

512 entries x 2 bits = 128 bytes of storage (Table III).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.types import Level
from repro.telemetry import StatScope
from repro.util.hashing import mix64

LINES_PER_PAGE = 64
"""4KB pages of 64-byte lines; compressibility locality is per page."""


class LineLocationPredictor:
    """History-based compressibility (hence location) predictor."""

    def __init__(self, entries: int = 512, lines_per_page: int = LINES_PER_PAGE) -> None:
        if entries < 1:
            raise ValueError("LCT needs at least one entry")
        self._entries = entries
        self._lines_per_page = lines_per_page
        self._lct: List[Level] = [Level.UNCOMPRESSED] * entries
        self.predictions = 0
        self.mispredictions = 0
        #: extra re-issued accesses beyond the first correction (a quad
        #: group can need up to 3 probes); bandwidth accounting, not
        #: accuracy — a prediction is wrong at most once.
        self.extra_reissues = 0

    @property
    def entries(self) -> int:
        return self._entries

    def _index(self, addr: int) -> int:
        page = addr // self._lines_per_page
        return mix64(page) % self._entries

    def predict(self, addr: int) -> Level:
        """Predicted compression status for ``addr`` (its page's last status)."""
        self.predictions += 1
        return self._lct[self._index(addr)]

    def update(self, addr: int, actual: Level, predicted: Optional[Level] = None) -> None:
        """Record the observed compression status after a resolved access.

        ``predicted`` (when given) updates the accuracy statistics: the
        prediction counts as correct only if it located the line on the
        first access.
        """
        if predicted is not None and predicted != actual:
            self.mispredictions += 1
        self._lct[self._index(addr)] = actual

    def record_mispredict(self, extra_accesses: int = 1) -> None:
        """Charge one misprediction resolved after ``extra_accesses`` probes.

        A single prediction is wrong at most once, however many candidate
        locations had to be re-probed before the line was found; the
        re-issues beyond the first are tracked separately so bandwidth
        accounting keeps them without corrupting the accuracy statistic.
        """
        if extra_accesses < 1:
            return
        self.mispredictions += 1
        self.extra_reissues += extra_accesses - 1

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that found the line in one access."""
        if self.predictions == 0:
            return 1.0
        value = 1.0 - self.mispredictions / self.predictions
        assert 0.0 <= value <= 1.0, (
            f"LLP accuracy out of range: {self.mispredictions} mispredictions "
            f"over {self.predictions} predictions"
        )
        return value

    def register_stats(self, scope: StatScope) -> None:
        """Expose prediction counters and windowed accuracy (``*.llp.*``)."""
        predictions = scope.counter("predictions", lambda: self.predictions)
        mispredictions = scope.counter("mispredictions", lambda: self.mispredictions)
        scope.counter("extra_reissues", lambda: self.extra_reissues)
        scope.ratio(
            "accuracy", mispredictions, [predictions], default=1.0, one_minus=True
        )

    def storage_bits(self) -> int:
        """2 bits of last-compressibility state per LCT entry (Table III)."""
        return self._entries * 2

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
        self.extra_reissues = 0
