"""PTMC: Practical and Transparent Memory-Compression controller (§IV).

This is the paper's primary contribution.  Reads use the Line Location
Predictor to pick a candidate slot, verify the guess with the inline
marker, and fall back to the remaining candidate locations on a
misprediction.  Evictions compact compressible neighbour groups into one
slot (with ganged eviction keeping compressed groups resident together),
write Marker-IL over slots whose contents became stale, and handle
marker collisions on uncompressed data with line inversion + the LIT.

A :class:`~repro.core.policy.CompressionPolicy` decides whether new
compactions happen; plugging in ``SamplingPolicy`` yields Dynamic-PTMC.
Reads always honour markers regardless of policy — that is what makes
dynamically disabling compression safe without decompressing memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.cache import EvictedLine
from repro.compression.base import LINE_SIZE, CompressionAlgorithm
from repro.compression.hybrid import HybridCompressor
from repro.core import address_map
from repro.core.base_controller import DECOMPRESSION_LATENCY, LLCView, MemoryController
from repro.core.lit import LineInversionTable, LITOverflow, LITPolicy
from repro.core.llp import LineLocationPredictor
from repro.core.markers import MarkerScheme, SlotKind, invert
from repro.core.packing import compress_group, decompress_group
from repro.core.policy import AlwaysOnPolicy, CompressionPolicy
from repro.core.types import Category, Level, ReadResult, WriteResult
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.telemetry import StatScope


@dataclass(frozen=True)
class PTMCConfig:
    """Tunable parameters of the PTMC design (paper defaults)."""

    marker_size: int = 4
    lct_entries: int = 512
    lit_capacity: int = 16
    lit_policy: LITPolicy = LITPolicy.REKEY
    ganged_eviction: bool = True
    decompression_latency: int = DECOMPRESSION_LATENCY
    marker_key: int = 0x5EED
    #: how many rekey sweeps one store may trigger before falling back to
    #: a memory-mapped LIT spill (prevents unbounded rekey recursion when
    #: fresh markers keep colliding)
    max_rekeys: int = 3


@dataclass
class _LineState:
    """A group member's state at eviction-handling time."""

    addr: int
    data: bytes
    dirty: bool
    fill_level: Level


#: A placement decision: (level, slot, member addrs, packed slot bytes).
_Unit = Tuple[Level, int, List[int], Optional[bytes]]


class PTMCController(MemoryController):
    """The PTMC memory controller (inline metadata + LLP + LIT)."""

    name = "ptmc"

    def __init__(
        self,
        memory: PhysicalMemory,
        dram: DRAMSystem,
        compressor: Optional[CompressionAlgorithm] = None,
        config: PTMCConfig = PTMCConfig(),
        policy: Optional[CompressionPolicy] = None,
    ) -> None:
        super().__init__(memory, dram)
        self.config = config
        self.compressor = compressor if compressor is not None else HybridCompressor()
        self.policy = policy if policy is not None else AlwaysOnPolicy()
        self.markers = MarkerScheme(config.marker_key, config.marker_size)
        self.llp = LineLocationPredictor(config.lct_entries)
        self.lit = LineInversionTable(config.lit_capacity, config.lit_policy)
        # statistics
        self.reads_by_level: Dict[Level, int] = {level: 0 for level in Level}
        self.inversions = 0
        self.rekeys = 0
        self.invalidate_writes = 0
        self.clean_writebacks = 0

    def register_stats(self, scope: StatScope) -> None:
        """Expose PTMC's counters (``ptmc.*``) and the LLP's (``ptmc.llp.*``)."""
        scope.counter("inversions", lambda: self.inversions)
        scope.counter("rekeys", lambda: self.rekeys)
        scope.counter("invalidate_writes", lambda: self.invalidate_writes)
        scope.counter("clean_writebacks", lambda: self.clean_writebacks)
        scope.gauge("lit_occupancy", lambda: len(self.lit))
        reads = scope.scope("reads")
        for level in Level:
            reads.counter(
                level.name.lower(), lambda lv=level: self.reads_by_level[lv]
            )
        self.llp.register_stats(scope.scope("llp"))

    # ------------------------------------------------------------------
    # Read path (paper Fig. 7)
    # ------------------------------------------------------------------

    def read_line(self, addr: int, now: int, core_id: int, llc: LLCView) -> ReadResult:
        predicted = address_map.needs_prediction(addr)
        search_order = self._search_order(addr)
        accesses = 0
        completion = now
        for loc in search_order:
            category = Category.DATA_READ if accesses == 0 else Category.MISPREDICT_READ
            completion = self.dram.access(loc, now, category)
            accesses += 1
            slot = self.memory.read(loc)
            resolved = self._interpret(loc, slot, addr, now)
            if resolved is None:
                continue
            data, extras, actual_level, compressed = resolved
            mispredicted = accesses > 1
            if mispredicted:
                # One wrong prediction, however many candidate slots the
                # re-issue walked — and only when a prediction was made at
                # all (group bases have a single fixed location).
                if predicted:
                    self.llp.record_mispredict(accesses - 1)
                if llc.is_sampled_set(addr):
                    for _ in range(accesses - 1):
                        self.policy.on_cost(core_id)
            if predicted:
                self.llp.update(addr, actual_level)
            if compressed:
                completion += self.config.decompression_latency
            self.reads_by_level[actual_level] += 1
            return ReadResult(
                addr=addr,
                data=data,
                level=actual_level,
                completion=completion,
                accesses=accesses,
                extra_lines=extras,
                mispredicted=mispredicted,
            )
        raise RuntimeError(f"line {addr:#x} unlocatable — memory invariant broken")

    def _search_order(self, addr: int) -> List[int]:
        """Candidate slots, starting from the LLP's prediction."""
        candidates = [loc for loc, _ in address_map.candidate_locations(addr)]
        if not address_map.needs_prediction(addr):
            return candidates  # group base: single fixed location
        predicted = self.llp.predict(addr)
        first = address_map.location_for(addr, predicted)
        return [first] + [loc for loc in candidates if loc != first]

    def _interpret(
        self, loc: int, slot: bytes, addr: int, now: int
    ) -> Optional[Tuple[bytes, Dict[int, bytes], Level, bool]]:
        """Decode one slot; ``None`` means "the line is not here"."""
        cls = self.markers.classify(loc, slot)
        if cls.kind is SlotKind.INVALID:
            return None
        if cls.kind in (SlotKind.QUAD, SlotKind.PAIR):
            if address_map.location_for(addr, cls.level) != loc:
                return None  # slot holds a different (pair) group
            members = address_map.slot_members(loc, cls.level)
            lines = decompress_group(self.compressor, slot, cls.level)
            extras = {m: line for m, line in zip(members, lines) if m != addr}
            data = lines[members.index(addr)]
            return data, extras, cls.level, True
        # Uncompressed (possibly inverted) data is only valid at the home slot.
        if loc != addr:
            return None
        if cls.kind is SlotKind.MAYBE_INVERTED:
            data = invert(slot) if self._lit_lookup(loc, now) else slot
        else:
            data = slot
        return data, {}, Level.UNCOMPRESSED, False

    def _lit_lookup(self, loc: int, now: int) -> bool:
        """Consult the LIT; memory-mapped spills cost a DRAM access."""
        before = self.lit.spill_lookups
        inverted = self.lit.is_inverted(loc)
        if self.lit.spill_lookups > before:
            self.dram.access(self._lit_spill_addr(loc), now, Category.MAINTENANCE)
        return inverted

    def _lit_spill_addr(self, loc: int) -> int:
        """Slot of the memory-mapped inversion bitmap covering ``loc``."""
        return self.memory.capacity_lines - 1 - (loc // (LINE_SIZE * 8))

    # ------------------------------------------------------------------
    # Eviction path (§IV-C "Handling Updates", "Ganged Eviction")
    # ------------------------------------------------------------------

    def handle_eviction(
        self, evicted: EvictedLine, now: int, core_id: int, llc: LLCView
    ) -> WriteResult:
        sampled = llc.is_sampled_set(evicted.addr)
        enabled = sampled or self.policy.enabled_for(core_id)
        result = WriteResult()

        # 1. Lines that must leave the LLC: the victim plus, by ganged
        #    eviction, every slot-mate of any previously compressed member.
        #    With ganged eviction the LLC tags are always accurate; the
        #    retain-lines ablation can leave them stale (memory-side
        #    repacks change a cached line's residency behind its back), so
        #    its read-modify-write probe re-verifies the level first.
        if not self.config.ganged_eviction:
            verified = self._verified_level(evicted.addr)
            if verified != evicted.fill_level:
                self.dram.access(evicted.addr, now, Category.MAINTENANCE)
                evicted = EvictedLine(
                    evicted.addr, evicted.data, evicted.dirty, verified, evicted.core_id
                )
        gang = self._collect_gang(evicted, now, llc, result)

        # 2. Compaction candidates: the gang plus still-resident group
        #    neighbours ("checks if the neighboring cachelines are present
        #    in the LLC").
        candidates: Dict[int, _LineState] = dict(gang)
        if enabled:
            for neighbour in address_map.group_lines(evicted.addr):
                if neighbour in candidates:
                    continue
                resident = llc.probe(neighbour)
                if resident is not None:
                    level = (
                        resident.fill_level
                        if self.config.ganged_eviction
                        else self._verified_level(neighbour)
                    )
                    candidates[neighbour] = _LineState(
                        neighbour, resident.data, resident.dirty, level
                    )

        # 3. Placement: 4:1, else 2:1 per pair, else home slots.  Compressed
        #    units must involve at least one line that is actually leaving;
        #    untouched residents keep their LLC lines.
        units = []
        for unit in self._plan_placement(evicted.addr, candidates, enabled):
            level, slot, members, packed = unit
            if level is Level.UNCOMPRESSED and members[0] not in gang:
                continue  # resident neighbour not compacted: leave it be
            if level is not Level.UNCOMPRESSED and not any(m in gang for m in members):
                continue  # don't compact groups unrelated to the victim
            units.append(unit)
            if level is not Level.UNCOMPRESSED:
                for member in members:
                    if member not in gang:
                        llc.force_evict(member)  # ganged eviction of partner
                        gang[member] = candidates[member]
                        result.ganged.append(member)
        result.level = max(
            (level for level, _, _, _ in units), default=Level.UNCOMPRESSED
        )

        # 4. Stale-slot analysis: previous residencies of every placed line
        #    that are not rewritten must be marked invalid (Fig. 13).
        placed = [a for _, _, members, _ in units for a in members]
        new_slots = {slot for _, slot, _, _ in units}
        prev_slots = {
            address_map.location_for(a, gang[a].fill_level) for a in placed
        }

        for level, slot, members, packed in units:
            self._write_unit(level, slot, members, packed, gang, now, sampled, core_id, result)

        for stale in sorted(prev_slots - new_slots):
            if not self._stale_slot_confirmed(stale, gang):
                continue
            self._write_invalid(stale, now, result)
            if sampled:
                self.policy.on_cost(core_id)
        return result

    def _collect_gang(
        self, evicted: EvictedLine, now: int, llc: LLCView, result: WriteResult
    ) -> Dict[int, _LineState]:
        """Ganged eviction: pull out every slot-mate of the victim's group.

        A slot-mate missing from the LLC — possible only when ganged
        eviction is disabled (ablation, paper footnote 7) — is recovered
        from memory with a read-modify-write access.
        """
        gang: Dict[int, _LineState] = {
            evicted.addr: _LineState(
                evicted.addr, evicted.data, evicted.dirty, evicted.fill_level
            )
        }
        charged_slots = set()  # one RMW read per slot, however many mates
        frontier = [evicted.addr]
        while frontier:
            addr = frontier.pop()
            state = gang[addr]
            if state.fill_level is Level.UNCOMPRESSED:
                continue
            slot = address_map.location_for(addr, state.fill_level)
            for member in address_map.slot_members(slot, state.fill_level):
                if member in gang:
                    continue
                if self.config.ganged_eviction:
                    line = llc.force_evict(member)
                    if line is not None:
                        gang[member] = _LineState(
                            member, line.data, line.dirty, line.fill_level
                        )
                        result.ganged.append(member)
                        frontier.append(member)
                        continue
                else:
                    # retain-lines: a resident slot-mate's cached copy is
                    # fresher than the memory slot; use it, leave it cached
                    resident = llc.probe(member)
                    if resident is not None:
                        gang[member] = _LineState(
                            member, resident.data, resident.dirty, state.fill_level
                        )
                        frontier.append(member)
                        continue
                charge = slot not in charged_slots
                charged_slots.add(slot)
                recovered = self._recover_from_memory(
                    slot, state.fill_level, member, now, charge=charge
                )
                if recovered is not None:
                    gang[member] = recovered
                    frontier.append(member)
        return gang

    def _verified_level(self, addr: int) -> Level:
        """The line's true residency level, from the markers themselves.

        Used by the retain-lines ablation, whose LLC tags can go stale; in
        hardware the information comes from the read-modify-write access
        that design performs anyway (the sim charges it at the call site).
        """
        for loc, _ in address_map.candidate_locations(addr):
            cls = self.markers.classify(loc, self.memory.read(loc))
            if cls.kind in (SlotKind.PAIR, SlotKind.QUAD):
                if address_map.location_for(addr, cls.level) == loc:
                    return cls.level
        return Level.UNCOMPRESSED

    def _recover_from_memory(
        self, slot: int, level: Level, member: int, now: int, charge: bool = True
    ) -> Optional[_LineState]:
        """Read-modify-write support: pull an uncached slot-mate from DRAM."""
        if charge:
            self.dram.access(slot, now, Category.MAINTENANCE)
        raw = self.memory.read(slot)
        cls = self.markers.classify(slot, raw)
        if cls.kind not in (SlotKind.PAIR, SlotKind.QUAD) or cls.level != level:
            return None  # slot moved on since this line was filled; tag is stale
        members = address_map.slot_members(slot, level)
        lines = decompress_group(self.compressor, raw, level)
        return _LineState(member, lines[members.index(member)], False, level)

    def _plan_placement(
        self, addr: int, candidates: Dict[int, _LineState], enabled: bool
    ) -> List[_Unit]:
        """Choose the new residency for the candidate lines (Fig. 3).

        With compression disabled (Dynamic-PTMC), existing compressed
        groups are *preserved* where their data still fits — the paper's
        point is that inline metadata lets compression be switched off
        without globally decompressing memory — but no new groups form.
        """
        if not enabled:
            return self._plan_preserving(candidates)
        base = address_map.group_base(addr)
        group = address_map.group_lines(addr)
        if all(a in candidates for a in group):
            packed = compress_group(
                self.compressor,
                [candidates[a].data for a in group],
                self.markers.marker(base, Level.QUAD),
            )
            if packed is not None:
                return [(Level.QUAD, base, group, packed)]
        units: List[_Unit] = []
        for pair_start in (base, base + 2):
            pair = [pair_start, pair_start + 1]
            present = [a for a in pair if a in candidates]
            if len(present) == 2:
                packed = compress_group(
                    self.compressor,
                    [candidates[a].data for a in pair],
                    self.markers.marker(pair_start, Level.PAIR),
                )
                if packed is not None:
                    units.append((Level.PAIR, pair_start, pair, packed))
                    continue
            for a in present:
                units.append((Level.UNCOMPRESSED, a, [a], None))
        return units

    def _plan_preserving(self, candidates: Dict[int, _LineState]) -> List[_Unit]:
        """Disabled-compression placement: keep existing groups, form none.

        Members that were filled from a compressed slot stay together at
        that slot as long as their (possibly updated) data still fits;
        only genuinely incompressible updates force a relocation home.
        """
        units: List[_Unit] = []
        grouped: Dict[Tuple[int, Level], List[int]] = {}
        for a, state in candidates.items():
            if state.fill_level is Level.UNCOMPRESSED:
                units.append((Level.UNCOMPRESSED, a, [a], None))
            else:
                slot = address_map.location_for(a, state.fill_level)
                grouped.setdefault((slot, state.fill_level), []).append(a)
        for (slot, level), members in grouped.items():
            expected = address_map.slot_members(slot, level)
            packed = None
            if sorted(members) == expected:
                packed = compress_group(
                    self.compressor,
                    [candidates[a].data for a in expected],
                    self.markers.marker(slot, level),
                )
            if packed is not None:
                units.append((level, slot, expected, packed))
            else:
                units.extend(
                    (Level.UNCOMPRESSED, a, [a], None) for a in sorted(members)
                )
        return units

    def _write_unit(
        self,
        level: Level,
        slot: int,
        members: List[int],
        packed: Optional[bytes],
        gang: Dict[int, _LineState],
        now: int,
        sampled: bool,
        core_id: int,
        result: WriteResult,
    ) -> None:
        """Write one placement unit unless memory already holds it."""
        states = [gang[a] for a in members]
        any_dirty = any(s.dirty for s in states)
        if level is Level.UNCOMPRESSED:
            state = states[0]
            relocated = state.fill_level is not Level.UNCOMPRESSED
            if not state.dirty and not relocated:
                return  # clean line already correct at home — free eviction
            category = Category.DATA_WRITE if state.dirty else Category.CLEAN_WRITEBACK
            self._write_uncompressed(slot, state.data, now, category, result)
            if category is Category.CLEAN_WRITEBACK and sampled:
                self.policy.on_cost(core_id)
            return
        unchanged = all(s.fill_level == level for s in states)
        if unchanged and not any_dirty:
            return  # identical compressed slot already resident
        category = Category.DATA_WRITE if any_dirty else Category.CLEAN_WRITEBACK
        self.dram.access(slot, now, category)
        self.memory.write(slot, packed)
        if self.lit.remove(slot):
            self.dram.access(self._lit_spill_addr(slot), now, Category.MAINTENANCE)
        result.writes += 1
        if category is Category.CLEAN_WRITEBACK:
            result.clean_writebacks += 1
            self.clean_writebacks += 1
            if sampled:
                self.policy.on_cost(core_id)

    def _write_uncompressed(
        self, addr: int, data: bytes, now: int, category: Category, result: WriteResult
    ) -> None:
        """Store a plain line, inverting it on marker collision (Fig. 11)."""
        stored = self._encode_uncompressed(addr, data, now)
        self.dram.access(addr, now, category)
        self.memory.write(addr, stored)
        result.writes += 1
        if category is Category.CLEAN_WRITEBACK:
            result.clean_writebacks += 1
            self.clean_writebacks += 1

    def _encode_uncompressed(self, addr: int, data: bytes, now: int) -> bytes:
        """Resolve marker collisions; returns the bytes to store at ``addr``.

        A colliding line is inverted and tracked in the LIT.  On LIT
        overflow under the REKEY policy, memory is re-encoded with fresh
        markers and the collision is re-evaluated — the new markers almost
        certainly no longer collide with this data.  The retry is bounded:
        after ``config.max_rekeys`` sweeps for a single store (pathological
        adversarial data), the entry spills to the memory-mapped bitmap
        instead of rekeying forever.
        """
        rekeys_left = self.config.max_rekeys
        while True:
            if not self.markers.collides(addr, data):
                if self.lit.remove(addr):
                    self.dram.access(
                        self._lit_spill_addr(addr), now, Category.MAINTENANCE
                    )
                return data
            try:
                spilled = self.lit.insert(addr)
            except LITOverflow:
                if rekeys_left <= 0:
                    spilled = self.lit.force_spill(addr)
                else:
                    rekeys_left -= 1
                    self._rekey_sweep(now)
                    continue
            if spilled:
                self.dram.access(self._lit_spill_addr(addr), now, Category.MAINTENANCE)
            self.inversions += 1
            return invert(data)

    def _stale_slot_confirmed(self, slot: int, gang: Dict[int, _LineState]) -> bool:
        """Safety net: only invalidate slots that really hold stale copies.

        With ganged eviction and accurate LLC tags this always holds; the
        check (a free peek in the simulator) protects the functional model
        when the retain-lines ablation leaves tags stale.
        """
        raw = self.memory.read(slot)
        cls = self.markers.classify(slot, raw)
        if cls.kind in (SlotKind.PAIR, SlotKind.QUAD):
            return any(
                m in gang and gang[m].fill_level == cls.level
                for m in address_map.slot_members(slot, cls.level)
            )
        if cls.kind is SlotKind.INVALID:
            return False  # already invalid; skip the redundant write
        return slot in gang and gang[slot].fill_level is Level.UNCOMPRESSED

    def _write_invalid(self, slot: int, now: int, result: WriteResult) -> None:
        """Overwrite a stale slot with Marker-IL (Fig. 13)."""
        self.dram.access(slot, now, Category.INVALIDATE_WRITE)
        self.memory.write(slot, self.markers.invalid_marker(slot))
        if self.lit.remove(slot):
            self.dram.access(self._lit_spill_addr(slot), now, Category.MAINTENANCE)
        result.invalidates += 1
        self.invalidate_writes += 1

    # ------------------------------------------------------------------
    # LIT overflow: rekey and re-encode memory (§IV-C Option 2)
    # ------------------------------------------------------------------

    def _rekey_sweep(self, now: int) -> None:
        """Regenerate markers and re-encode every resident slot.

        The paper expects this less than once per 10 million years; it is
        implemented for completeness and to keep the functional model
        consistent.  Every resident slot is decoded under the old markers
        and re-written under the new ones (charged as maintenance traffic).
        """
        self.rekeys += 1
        resident = self.memory.resident_lines()
        decoded: List[Tuple[int, str, object]] = []
        for loc, raw in resident.items():
            cls = self.markers.classify(loc, raw)
            if cls.kind is SlotKind.INVALID:
                decoded.append((loc, "invalid", None))
            elif cls.kind in (SlotKind.PAIR, SlotKind.QUAD):
                lines = decompress_group(self.compressor, raw, cls.level)
                decoded.append((loc, "packed", (cls.level, lines)))
            else:
                data = invert(raw) if self.lit.is_inverted(loc) else raw
                decoded.append((loc, "plain", data))
            self.dram.access(loc, now, Category.MAINTENANCE)
        self.markers.rekey()
        self.lit.clear()
        for loc, kind, info in decoded:
            if kind == "invalid":
                self.memory.write(loc, self.markers.invalid_marker(loc))
            elif kind == "packed":
                level, lines = info
                packed = compress_group(
                    self.compressor, lines, self.markers.marker(loc, level)
                )
                if packed is None:
                    raise RuntimeError("re-encode failed after rekey")
                self.memory.write(loc, packed)
            else:
                if self.markers.collides(loc, info):
                    try:
                        self.lit.insert(loc)
                    except LITOverflow:
                        # the fresh key still collides on more lines than
                        # the LIT holds; spill rather than rekey recursively
                        self.lit.force_spill(loc)
                    self.memory.write(loc, invert(info))
                else:
                    self.memory.write(loc, info)
            self.dram.access(loc, now, Category.MAINTENANCE)

    # ------------------------------------------------------------------

    def storage_bits(self) -> Dict[str, int]:
        """Table III: the on-chip structures PTMC adds (< 300 bytes)."""
        bits = {
            "marker_2to1": self.config.marker_size * 8,
            "marker_4to1": self.config.marker_size * 8,
            "marker_invalid": LINE_SIZE * 8,
            "line_inversion_table": self.lit.storage_bits(),
            "line_location_predictor": self.llp.storage_bits(),
        }
        policy_bits = getattr(self.policy, "storage_bits", None)
        if policy_bits is not None:
            bits["dynamic_counters"] = policy_bits()
        return bits
