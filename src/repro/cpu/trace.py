"""Memory-access traces driving the cores.

A trace is an iterable of :class:`TraceRecord`: "after ``gap`` non-memory
instructions, perform this load/store to this virtual line".  Stores carry
the new 64-byte contents, because compressibility is a property of real
data values and the whole system under study manipulates real bytes.

Traces come from the synthetic workload generators
(:mod:`repro.workloads`) or can be built by hand / replayed from lists in
tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One memory operation in program order."""

    gap: int
    """Non-memory instructions retired since the previous memory op."""

    is_write: bool
    vline: int
    """Virtual line address (64-byte granularity)."""

    write_data: Optional[bytes] = None
    """New line contents for stores; ``None`` for loads."""

    @property
    def instructions(self) -> int:
        """Instructions this record accounts for (gap + the memory op)."""
        return self.gap + 1


def trace_from_lists(
    addresses: Iterable[int], gap: int = 3, write_every: int = 0
) -> List[TraceRecord]:
    """Convenience builder for tests: loads (or periodic stores of zeros)."""
    records = []
    for i, addr in enumerate(addresses):
        is_write = write_every > 0 and (i + 1) % write_every == 0
        data = b"\x00" * 64 if is_write else None
        records.append(TraceRecord(gap, is_write, addr, data))
    return records


class TraceStats:
    """Running statistics over a consumed trace."""

    def __init__(self) -> None:
        self.records = 0
        self.instructions = 0
        self.writes = 0

    def observe(self, record: TraceRecord) -> None:
        self.records += 1
        self.instructions += record.instructions
        if record.is_write:
            self.writes += 1


def iter_with_stats(trace: Iterable[TraceRecord], stats: TraceStats) -> Iterator[TraceRecord]:
    """Yield records while accumulating statistics."""
    for record in trace:
        stats.observe(record)
        yield record
