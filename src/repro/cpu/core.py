"""Trace-driven core model with bounded miss-level parallelism.

The paper simulates 8 four-wide out-of-order cores; what its results
depend on is the cores' memory behaviour, so this model keeps exactly
that (DESIGN.md §4): non-memory instructions retire at the pipeline
width, memory operations are issued to the cache hierarchy in trace
order, and up to ``mlp`` of them may be outstanding at once — issuing
past that stalls the core until the oldest completes.  A core's clock
therefore advances from compute time plus exposed memory latency, which
is where bandwidth-induced queueing shows up as slowdown.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.trace import TraceRecord
from repro.telemetry import StatScope
from repro.vm.page_table import PageTable


class CoreModel:
    """One core replaying its trace through the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        trace: Iterator[TraceRecord],
        hierarchy: CacheHierarchy,
        page_table: PageTable,
        width: int = 4,
        mlp: int = 8,
    ) -> None:
        if width < 1 or mlp < 1:
            raise ValueError("width and mlp must be positive")
        self.core_id = core_id
        self.trace = iter(trace)
        self.hierarchy = hierarchy
        self.page_table = page_table
        self.width = width
        self.mlp = mlp
        self.time = 0
        self.instructions = 0
        self.mem_ops = 0
        self.done = False
        self._outstanding: Deque[int] = deque()

    def register_stats(self, scope: StatScope) -> None:
        """Expose progress counters (``core.<id>.*`` in the registry).

        ``time`` and the retirement counts only ever advance, so the
        registry's windowed delta yields measured-phase cycles and
        instructions directly.
        """
        scope.counter("cycles", lambda: self.time)
        scope.counter("instructions", lambda: self.instructions)
        scope.counter("mem_ops", lambda: self.mem_ops)

    def step(self) -> bool:
        """Issue the next trace record; returns False when the trace ends."""
        record = next(self.trace, None)
        if record is None:
            self._drain()
            self.done = True
            return False
        # front-end: retire the gap instructions at full width
        self.time += max(1, record.gap // self.width)
        self.instructions += record.instructions
        self.mem_ops += 1
        # stall if the miss window is full
        while len(self._outstanding) >= self.mlp:
            oldest = self._outstanding.popleft()
            if oldest > self.time:
                self.time = oldest
        paddr = self.page_table.translate(self.core_id, record.vline)
        outcome = self.hierarchy.access(
            self.core_id, paddr, record.is_write, self.time, record.write_data
        )
        if outcome.completion > self.time:
            self._outstanding.append(outcome.completion)
        return True

    def _drain(self) -> None:
        """Wait for all outstanding accesses at the end of the trace."""
        for completion in self._outstanding:
            if completion > self.time:
                self.time = completion
        self._outstanding.clear()

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle (after the trace finishes)."""
        return self.instructions / self.time if self.time else 0.0
