"""CPU substrate: trace format and the bounded-MLP core timing model."""

from repro.cpu.core import CoreModel
from repro.cpu.trace import TraceRecord, TraceStats, iter_with_stats, trace_from_lists

__all__ = [
    "CoreModel",
    "TraceRecord",
    "TraceStats",
    "iter_with_stats",
    "trace_from_lists",
]
