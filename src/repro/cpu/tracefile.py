"""Binary trace files: record once, replay anywhere.

Synthetic traces are cheap to regenerate, but a stable on-disk format
makes experiments portable (e.g. replaying the exact same access stream
against a modified controller, or importing address traces produced by
external tools).  The format is a gzip-compressed stream of fixed-layout
records:

====================  =======================================
field                 encoding
====================  =======================================
magic (file header)   ``b"PTMCTRC1"``
gap                   u32 little-endian
flags                 u8 (bit 0: write)
vline                 u64 little-endian
write_data            64 bytes, only present when bit 0 is set
====================  =======================================
"""

from __future__ import annotations

import gzip
import pathlib
import struct
from typing import Iterable, Iterator, Union

from repro.cpu.trace import TraceRecord

MAGIC = b"PTMCTRC1"
_HEAD = struct.Struct("<IBQ")

PathLike = Union[str, pathlib.Path]


class TraceFormatError(ValueError):
    """Raised when a trace file is corrupt or has the wrong format."""


def save_trace(records: Iterable[TraceRecord], path: PathLike) -> int:
    """Write records to ``path``; returns the number of records saved."""
    count = 0
    with gzip.open(path, "wb") as handle:
        handle.write(MAGIC)
        for record in records:
            flags = 1 if record.is_write else 0
            handle.write(_HEAD.pack(record.gap, flags, record.vline))
            if record.is_write:
                if record.write_data is None or len(record.write_data) != 64:
                    raise TraceFormatError("writes must carry 64 bytes of data")
                handle.write(record.write_data)
            count += 1
    return count


def load_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records back from ``path`` (lazily — traces can be large)."""
    with gzip.open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}; not a PTMC trace file")
        while True:
            header = handle.read(_HEAD.size)
            if not header:
                return
            if len(header) != _HEAD.size:
                raise TraceFormatError("truncated record header")
            gap, flags, vline = _HEAD.unpack(header)
            write_data = None
            if flags & 1:
                write_data = handle.read(64)
                if len(write_data) != 64:
                    raise TraceFormatError("truncated write data")
            yield TraceRecord(gap, bool(flags & 1), vline, write_data)


def record_workload(workload, core_id: int, num_ops: int, path: PathLike) -> int:
    """Generate and persist ``num_ops`` of a workload's trace for one core."""
    from repro.workloads.generators import WorkloadTraceGenerator

    generator = WorkloadTraceGenerator(workload, core_id)
    return save_trace(generator.generate(num_ops), path)


def import_address_trace(
    lines: Iterable[str], gap: int = 4, line_bytes: int = 64
) -> Iterator[TraceRecord]:
    """Convert a simple text address trace into records.

    Accepted line formats (hex or decimal byte addresses)::

        R 0x7f001234
        W 140737488355328
        0x7f001234          # defaults to a read

    Writes are materialised with zero data (external traces rarely carry
    values; compressibility studies should use the synthetic workloads).
    """
    zero = b"\x00" * 64
    for raw in lines:
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        parts = text.split()
        if len(parts) == 1:
            kind, addr_text = "R", parts[0]
        elif len(parts) == 2:
            kind, addr_text = parts[0].upper(), parts[1]
        else:
            raise TraceFormatError(f"unparseable trace line: {raw!r}")
        if kind not in ("R", "W"):
            raise TraceFormatError(f"unknown access type {kind!r}")
        address = int(addr_text, 0)
        vline = address // line_bytes
        if kind == "W":
            yield TraceRecord(gap, True, vline, zero)
        else:
            yield TraceRecord(gap, False, vline, None)
