"""Three-level cache hierarchy wired to a memory controller.

Organisation follows the paper's Table I: private L1/L2 per core and a
shared 8MB/16-way L3 (LLC) over 64-byte lines.  The memory controller is
consulted on L3 misses and L3 evictions; co-fetched lines returned by
compressed reads are installed into L3 with a "prefetched" bit so
Dynamic-PTMC can credit useful bandwidth-free prefetches.

Fidelity simplification (documented in DESIGN.md): L1/L2 are write-through
to the L3, so the L3 copy is always current and carries the dirty bit.
This leaves DRAM traffic — the paper's subject — unchanged while letting
the controller treat L3 contents as authoritative when it compacts
neighbour groups at eviction time.  Inclusion is enforced by
back-invalidating L1/L2 on L3 eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.cache import Cache, CacheLine, EvictedLine
from repro.core.base_controller import LLCView, MemoryController
from repro.core.policy import CompressionPolicy
from repro.telemetry import StatScope
from repro.types import Level


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache sizes/latencies (paper Table I; latencies are typical values).

    ``l1_policy``/``l2_policy``/``l3_policy`` name the replacement policy
    each level runs (registry names from
    :mod:`repro.cache.replacement`); ``policy_seed`` feeds per-cache
    deterministic randomness so seeded-random policies stay bitwise
    reproducible across parallel sweep workers.
    """

    num_cores: int = 8
    l1_bytes: int = 32 * 1024
    l1_ways: int = 8
    l1_latency: int = 3
    l2_bytes: int = 256 * 1024
    l2_ways: int = 8
    l2_latency: int = 12
    l3_bytes: int = 8 * 1024 * 1024
    l3_ways: int = 16
    l3_latency: int = 35
    l1_policy: str = "lru"
    l2_policy: str = "lru"
    l3_policy: str = "lru"
    policy_seed: int = 0


@dataclass
class AccessOutcome:
    """Where an access was served and when its data is available."""

    completion: int
    served_by: str  # "l1" | "l2" | "l3" | "mem"
    mem_accesses: int = 0


class _HierarchyLLCView(LLCView):
    """The controller's window into the L3 (plus inclusion maintenance)."""

    def __init__(self, hierarchy: "CacheHierarchy") -> None:
        self._h = hierarchy

    def probe(self, addr: int) -> Optional[CacheLine]:
        return self._h.l3.probe(addr)

    def force_evict(self, addr: int) -> Optional[EvictedLine]:
        line = self._h.l3.evict(addr)
        if line is not None:
            self._h._note_l3_eviction(line)
            self._h._back_invalidate(addr, line.core_id)
        return line

    def is_sampled_set(self, addr: int) -> bool:
        policy = self._h.policy
        if policy is None:
            return False
        # Sampling is decided per compression group (the 4-line unit whose
        # members span 4 consecutive LLC sets): a group's eviction costs
        # and the hits on its co-fetched members must be attributed to the
        # same always-compress sample for the cost/benefit counter to be
        # self-consistent.  Sampling 1/period of the groups is the
        # group-mapped equivalent of the paper's 1%-of-sets sampling.
        return policy.is_sampled_set(addr >> 2)


class CacheHierarchy:
    """L1/L2 per core + shared L3, fronting a memory controller."""

    def __init__(
        self,
        controller: MemoryController,
        config: HierarchyConfig = HierarchyConfig(),
        policy: Optional[CompressionPolicy] = None,
    ) -> None:
        self.config = config
        self.controller = controller
        self.policy = policy
        self.l1s: List[Cache] = [
            Cache(
                config.l1_bytes,
                config.l1_ways,
                name=f"l1_{c}",
                policy=config.l1_policy,
                policy_seed=config.policy_seed,
            )
            for c in range(config.num_cores)
        ]
        self.l2s: List[Cache] = [
            Cache(
                config.l2_bytes,
                config.l2_ways,
                name=f"l2_{c}",
                policy=config.l2_policy,
                policy_seed=config.policy_seed,
            )
            for c in range(config.num_cores)
        ]
        self.l3 = Cache(
            config.l3_bytes,
            config.l3_ways,
            name="l3",
            policy=config.l3_policy,
            policy_seed=config.policy_seed,
        )
        self.llc_view = _HierarchyLLCView(self)
        self.useful_prefetches = 0
        self.wasted_prefetches = 0
        self.demand_accesses = 0
        # give prefetch-style controllers a residency filter
        if hasattr(controller, "resident_filter"):
            controller.resident_filter = lambda addr: self.l3.probe(addr) is not None

    def register_stats(self, scope: StatScope) -> None:
        """Expose LLC counters at the scope root plus L1/L2 aggregates.

        The shared L3 is the hierarchy's headline statistic, so its
        hit/miss counters sit directly at ``llc.*``; the private levels
        aggregate across cores under ``llc.l1.*`` / ``llc.l2.*``.
        """
        self.l3.register_stats(scope)
        scope.counter("useful_prefetches", lambda: self.useful_prefetches)
        scope.counter(
            "wasted_prefetches",
            lambda: self.wasted_prefetches,
            doc="prefetched lines evicted from the L3 before any demand reference",
        )
        scope.counter("demand_accesses", lambda: self.demand_accesses)
        scope.counter(
            "policy_evictions",
            lambda: self.l3.policy_evictions,
            doc="L3 capacity evictions decided by the replacement policy",
        )
        scope.counter(
            "prefetch_victims",
            lambda: self.l3.prefetch_victims,
            doc="L3 policy victims that were never-referenced prefetches",
        )
        for name, caches in (("l1", self.l1s), ("l2", self.l2s)):
            level = scope.scope(name)
            hits = level.counter(
                "hits", lambda cs=caches: sum(c.hits for c in cs)
            )
            misses = level.counter(
                "misses", lambda cs=caches: sum(c.misses for c in cs)
            )
            level.ratio("hit_rate", hits, [hits, misses])

    # ------------------------------------------------------------------

    def access(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        now: int,
        write_data: Optional[bytes] = None,
    ) -> AccessOutcome:
        """One demand access from a core; returns completion information."""
        if is_write and write_data is None:
            raise ValueError("writes must carry their new line contents")
        self.demand_accesses += 1
        cfg = self.config
        l1, l2 = self.l1s[core_id], self.l2s[core_id]

        if l1.lookup(addr) is not None:
            if is_write:
                self._store(core_id, addr, write_data)
            return AccessOutcome(now + cfg.l1_latency, "l1")

        if l2.lookup(addr) is not None:
            line = l2.probe(addr)
            l1.fill(addr, line.data)
            if is_write:
                self._store(core_id, addr, write_data)
            return AccessOutcome(now + cfg.l2_latency, "l2")

        l3_line = self.l3.lookup(addr)
        if l3_line is not None:
            # refresh ownership: the demanding core now holds L1/L2 copies,
            # so inclusion maintenance must target *its* private caches
            l3_line.core_id = core_id
            if l3_line.prefetched:
                l3_line.prefetched = False
                self.useful_prefetches += 1
                if self.policy is not None and self.llc_view.is_sampled_set(addr):
                    self.policy.on_benefit(l3_line.core_id)
            l2.fill(addr, l3_line.data)
            l1.fill(addr, l3_line.data)
            if is_write:
                self._store(core_id, addr, write_data)
            return AccessOutcome(now + cfg.l3_latency, "l3")

        # L3 miss: go to the memory controller.
        result = self.controller.read_line(addr, now, core_id, self.llc_view)
        for extra_addr, extra_data in result.extra_lines.items():
            if self.l3.probe(extra_addr) is None:
                self._install_l3(
                    extra_addr,
                    extra_data,
                    now,
                    core_id,
                    fill_level=result.level,
                    prefetched=True,
                )
        self._install_l3(addr, result.data, now, core_id, fill_level=result.level)
        l2.fill(addr, result.data)
        l1.fill(addr, result.data)
        if is_write:
            self._store(core_id, addr, write_data)
        return AccessOutcome(
            result.completion + cfg.l3_latency, "mem", mem_accesses=result.accesses
        )

    # ------------------------------------------------------------------

    def _store(self, core_id: int, addr: int, data: bytes) -> None:
        """Write-through a store into every level holding the line."""
        for cache in (self.l1s[core_id], self.l2s[core_id]):
            line = cache.probe(addr)
            if line is not None:
                line.data = data
        l3_line = self.l3.probe(addr)
        if l3_line is None:
            raise RuntimeError("inclusion violated: store target missing from L3")
        l3_line.data = data
        l3_line.dirty = True

    def _install_l3(
        self,
        addr: int,
        data: bytes,
        now: int,
        core_id: int,
        fill_level: Level,
        prefetched: bool = False,
    ) -> None:
        victim = self.l3.fill(
            addr,
            data,
            fill_level=fill_level,
            core_id=core_id,
            prefetched=prefetched,
        )
        if victim is not None:
            self._note_l3_eviction(victim)
            self._back_invalidate(victim.addr, victim.core_id)
            self.controller.handle_eviction(victim, now, victim.core_id, self.llc_view)

    def _note_l3_eviction(self, victim: EvictedLine) -> None:
        """Account a line leaving the L3 (capacity victim or ganged)."""
        if victim.prefetched:
            self.wasted_prefetches += 1

    def _back_invalidate(self, addr: int, core_hint: int) -> None:
        """Enforce inclusion on L3 eviction.

        Physical pages are core-private (the VM model allocates frames per
        core), so only the owning core's L1/L2 can hold the line — the
        hint avoids probing every private cache.
        """
        self.l1s[core_hint].invalidate(addr)
        self.l2s[core_hint].invalidate(addr)

    def flush(self, now: int) -> None:
        """Drain the hierarchy through the controller (end of simulation)."""
        for caches in (self.l1s, self.l2s):
            for cache in caches:
                cache.drain(lambda line: None)  # write-through: nothing to do
        while True:
            victim_line = next(self.l3.resident(), None)
            if victim_line is None:
                break
            evicted = self.l3.evict(victim_line.addr)
            if evicted is not None:
                self.controller.handle_eviction(
                    evicted, now, evicted.core_id, self.llc_view
                )

    @property
    def l3_hit_rate(self) -> float:
        return self.l3.hit_rate
