"""Cache substrate: set-associative caches, pluggable replacement, hierarchy."""

from repro.cache.cache import Cache, CacheLine, EvictedLine
from repro.cache.hierarchy import AccessOutcome, CacheHierarchy, HierarchyConfig
from repro.cache.replacement import (
    DEFAULT_POLICY,
    POLICIES,
    FIFOPolicy,
    LRUPolicy,
    PrefetchAwareLRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    make_policy,
)

__all__ = [
    "Cache",
    "CacheLine",
    "EvictedLine",
    "AccessOutcome",
    "CacheHierarchy",
    "HierarchyConfig",
    "DEFAULT_POLICY",
    "POLICIES",
    "FIFOPolicy",
    "LRUPolicy",
    "PrefetchAwareLRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "make_policy",
]
