"""Cache substrate: generic set-associative caches and the 3-level hierarchy."""

from repro.cache.cache import Cache, CacheLine, EvictedLine
from repro.cache.hierarchy import AccessOutcome, CacheHierarchy, HierarchyConfig

__all__ = [
    "Cache",
    "CacheLine",
    "EvictedLine",
    "AccessOutcome",
    "CacheHierarchy",
    "HierarchyConfig",
]
