"""Pluggable replacement policies for the set-associative cache model.

The :class:`~repro.cache.cache.Cache` stores each set as an ordered
mapping ``addr -> CacheLine``; a :class:`ReplacementPolicy` decides which
resident line that mapping gives up when a fill needs a way.  The policy
owns the set's *ordering semantics*: it is handed the live set mapping on
every hit/fill and may reorder it (LRU-family policies use the mapping's
own insertion order as their recency stack, exactly like the historical
``OrderedDict`` implementation), or keep side state of its own (SRRIP's
re-reference counters).

The contract every policy must honour:

- ``select_victim`` is only called on a full set and must return the
  address of a *resident* line.
- Hooks are informational; a policy may mutate only the *order* of the
  set mapping, never its contents.
- Policies must be deterministic functions of the access stream and
  their constructor arguments.  :class:`RandomPolicy` derives its RNG
  from ``(cache name, seed)``, so two simulations of the same config are
  bitwise identical even when they run in different worker processes of
  a parallel sweep.

``lru`` is the default everywhere and reproduces the pre-refactor
``OrderedDict`` behaviour operation-for-operation: the golden test in
``tests/test_policy_golden.py`` holds all seven designs to bitwise
equality with results captured before this seam existed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.cache import CacheLine

#: The set mapping a policy sees: insertion-ordered ``addr -> CacheLine``.
SetView = "OrderedDict[int, CacheLine]"


class ReplacementPolicy:
    """Victim selection plus on-fill/on-hit/on-evict bookkeeping hooks."""

    #: Registry name (``repro policies`` lists these).
    name: str = "base"
    #: One-line description for listings and docs.
    description: str = "abstract policy interface"

    def bind(self, num_sets: int, ways: int) -> None:
        """Size any per-set side state; called once by the owning cache."""

    def on_hit(self, set_index: int, cache_set, addr: int) -> None:
        """A resident line was touched (demand hit or in-place refill)."""

    def on_fill(self, set_index: int, cache_set, addr: int) -> None:
        """A new line was just inserted (it is already in ``cache_set``)."""

    def on_evict(self, set_index: int, addr: int) -> None:
        """A line left the set (victimised, forced out, or invalidated)."""

    def select_victim(self, set_index: int, cache_set) -> int:
        """The address to displace from a full set."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used via the set mapping's own order (the default).

    Hits move the line to the tail; the victim is the head.  This is
    operation-for-operation the historical ``OrderedDict`` behaviour, so
    the default path stays bitwise identical to the pre-seam code.
    """

    name = "lru"
    description = "least-recently-used (default; pre-seam behaviour)"

    def on_hit(self, set_index: int, cache_set, addr: int) -> None:
        cache_set.move_to_end(addr)

    def select_victim(self, set_index: int, cache_set) -> int:
        return next(iter(cache_set))


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: insertion order only, hits never promote."""

    name = "fifo"
    description = "first-in-first-out (hits never promote)"

    def select_victim(self, set_index: int, cache_set) -> int:
        return next(iter(cache_set))


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim from a per-cache deterministically seeded RNG.

    The RNG seed is ``"<cache name>:<seed>"`` — a pure function of the
    configuration, never of process state — so parallel sweep workers
    reproduce serial runs bit-for-bit.
    """

    name = "random"
    description = "seeded uniform-random victim (bitwise reproducible)"

    def __init__(self, cache_name: str = "cache", seed: int = 0) -> None:
        self._rng = random.Random(f"{cache_name}:{seed}")

    def select_victim(self, set_index: int, cache_set) -> int:
        return self._rng.choice(list(cache_set))


class SRRIPPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (Jaleel et al., ISCA'10).

    Each line carries an RRPV counter: fills insert with a *long*
    predicted interval (``2^bits - 2``), hits promote to *near-immediate*
    (``0``), and the victim is the first line (in set order) already at
    the *distant* maximum — ageing every line until one qualifies.
    Scan-resistant where LRU thrashes: a streaming fill cannot displace
    the re-referenced working set until it actually ages out.
    """

    name = "srrip"
    description = "static re-reference interval prediction (2-bit, scan-resistant)"

    def __init__(self, bits: int = 2) -> None:
        if bits < 1:
            raise ValueError("SRRIP needs at least one RRPV bit")
        self.max_rrpv = (1 << bits) - 1
        self.insert_rrpv = self.max_rrpv - 1
        self._rrpv: List[Dict[int, int]] = []

    def bind(self, num_sets: int, ways: int) -> None:
        self._rrpv = [{} for _ in range(num_sets)]

    def on_hit(self, set_index: int, cache_set, addr: int) -> None:
        self._rrpv[set_index][addr] = 0

    def on_fill(self, set_index: int, cache_set, addr: int) -> None:
        self._rrpv[set_index][addr] = self.insert_rrpv

    def on_evict(self, set_index: int, addr: int) -> None:
        self._rrpv[set_index].pop(addr, None)

    def select_victim(self, set_index: int, cache_set) -> int:
        rrpv = self._rrpv[set_index]
        while True:
            for addr in cache_set:
                if rrpv.get(addr, self.insert_rrpv) >= self.max_rrpv:
                    return addr
            for addr in cache_set:
                rrpv[addr] = min(rrpv.get(addr, self.insert_rrpv) + 1, self.max_rrpv)


class PrefetchAwareLRUPolicy(LRUPolicy):
    """LRU that sacrifices never-referenced prefetched lines first.

    PTMC installs co-fetched neighbour lines with ``prefetched=True`` and
    clears the bit on first demand reference.  Under pressure, a line the
    program never asked for is the cheapest thing to lose: the victim is
    the least-recent line still flagged ``prefetched``; only when no
    unreferenced prefetch is resident does plain LRU apply.
    """

    name = "pref_lru"
    description = "LRU that victimises never-referenced prefetched lines first"

    def select_victim(self, set_index: int, cache_set) -> int:
        for addr, line in cache_set.items():
            if line.prefetched:
                return addr
        return next(iter(cache_set))


#: Name -> class registry (``repro policies``, CLI flags, config knobs).
POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    cls.name: cls
    for cls in (LRUPolicy, FIFOPolicy, RandomPolicy, SRRIPPolicy, PrefetchAwareLRUPolicy)
}

#: The policy every cache level uses unless configured otherwise.
DEFAULT_POLICY = LRUPolicy.name


def make_policy(
    name: str, cache_name: str = "cache", seed: int = 0
) -> ReplacementPolicy:
    """Instantiate a registered policy for one cache.

    ``cache_name`` and ``seed`` only matter to policies that need
    per-cache deterministic randomness (:class:`RandomPolicy`); the rest
    ignore them.
    """
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(cache_name=cache_name, seed=seed)
    return cls()


__all__ = [
    "DEFAULT_POLICY",
    "FIFOPolicy",
    "LRUPolicy",
    "POLICIES",
    "PrefetchAwareLRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "make_policy",
]
