"""Set-associative write-back cache with per-line data and metadata.

Used for every level of the hierarchy (L1/L2/L3) and for the baseline
design's 32KB metadata cache.  Lines carry their actual 64-byte contents —
the compression machinery needs real values — plus the PTMC bookkeeping
the paper adds to the LLC tag store: a dirty bit, the 2-bit compression
level observed when the line was filled from memory, the requesting-core
id (for per-core Dynamic-PTMC) and a "prefetched, not yet referenced"
bit used to credit useful bandwidth-free prefetches.

Replacement is delegated to a pluggable
:class:`~repro.cache.replacement.ReplacementPolicy` (DESIGN.md §10).
Each set is an insertion-ordered mapping the policy may reorder; the
default ``lru`` policy reproduces the historical hard-coded behaviour
operation-for-operation, so default-path simulations are bitwise
identical to the pre-seam code.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Union

from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.telemetry import StatScope
from repro.types import Level


@dataclass(slots=True)
class CacheLine:
    """One resident line: contents plus tag-store metadata."""

    addr: int
    data: bytes
    dirty: bool = False
    fill_level: Level = Level.UNCOMPRESSED
    core_id: int = 0
    prefetched: bool = False


@dataclass(slots=True)
class EvictedLine:
    """A line pushed out of the cache, with the state the victim had.

    ``prefetched`` preserves the victim's "installed by a co-fetch, never
    demand-referenced" flag so the hierarchy can account wasted
    prefetches (a bit the pre-seam code silently dropped).
    """

    addr: int
    data: bytes
    dirty: bool
    fill_level: Level
    core_id: int
    prefetched: bool = False


class Cache:
    """A set-associative cache of 64-byte lines with pluggable replacement.

    ``policy`` accepts a registry name (``"lru"``, ``"fifo"``,
    ``"random"``, ``"srrip"``, ``"pref_lru"``), a ready
    :class:`ReplacementPolicy` instance, or ``None`` for the default LRU.
    ``policy_seed`` feeds per-cache deterministic randomness (only the
    random policy uses it).
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_size: int = 64,
        name: str = "cache",
        policy: Union[str, ReplacementPolicy, None] = None,
        policy_seed: int = 0,
    ) -> None:
        if size_bytes % (ways * line_size) != 0:
            raise ValueError("cache size must be a multiple of ways * line size")
        self.name = name
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size_bytes // (ways * line_size)
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        if policy is None:
            policy = "lru"
        if isinstance(policy, str):
            policy = make_policy(policy, cache_name=name, seed=policy_seed)
        self.policy = policy
        self.policy.bind(self.num_sets, ways)
        self.hits = 0
        self.misses = 0
        self.policy_evictions = 0
        self.prefetch_victims = 0

    # Indexing -----------------------------------------------------------

    def set_index(self, addr: int) -> int:
        return addr % self.num_sets

    def _set_for(self, addr: int) -> OrderedDict:
        return self._sets[self.set_index(addr)]

    # Lookup / update ------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line (updating policy state) or ``None``.

        Statistics count a hit/miss per call; use ``probe`` for a
        side-effect-free check.
        """
        set_index = self.set_index(addr)
        cache_set = self._sets[set_index]
        line = cache_set.get(addr)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self.policy.on_hit(set_index, cache_set, addr)
        return line

    def probe(self, addr: int) -> Optional[CacheLine]:
        """Check residency without touching policy state or statistics."""
        return self._set_for(addr).get(addr)

    def fill(
        self,
        addr: int,
        data: bytes,
        dirty: bool = False,
        fill_level: Level = Level.UNCOMPRESSED,
        core_id: int = 0,
        prefetched: bool = False,
    ) -> Optional[EvictedLine]:
        """Install a line, returning the victim if one was displaced.

        Filling an already-resident address updates it in place (no
        eviction) and counts as a touch; callers use this for writes
        that hit.
        """
        set_index = self.set_index(addr)
        cache_set = self._sets[set_index]
        existing = cache_set.get(addr)
        if existing is not None:
            existing.data = data
            existing.dirty = existing.dirty or dirty
            self.policy.on_hit(set_index, cache_set, addr)
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self.ways:
            victim_addr = self.policy.select_victim(set_index, cache_set)
            old = cache_set.pop(victim_addr)
            self.policy.on_evict(set_index, victim_addr)
            self.policy_evictions += 1
            if old.prefetched:
                self.prefetch_victims += 1
            victim = self._evicted(old)
        cache_set[addr] = CacheLine(
            addr=addr,
            data=data,
            dirty=dirty,
            fill_level=fill_level,
            core_id=core_id,
            prefetched=prefetched,
        )
        self.policy.on_fill(set_index, cache_set, addr)
        return victim

    def evict(self, addr: int) -> Optional[EvictedLine]:
        """Forcibly remove a specific line (ganged eviction support)."""
        set_index = self.set_index(addr)
        line = self._sets[set_index].pop(addr, None)
        if line is None:
            return None
        self.policy.on_evict(set_index, addr)
        return self._evicted(line)

    def invalidate(self, addr: int) -> bool:
        """Drop a line without writeback; returns whether it was present."""
        set_index = self.set_index(addr)
        present = self._sets[set_index].pop(addr, None) is not None
        if present:
            self.policy.on_evict(set_index, addr)
        return present

    @staticmethod
    def _evicted(line: CacheLine) -> EvictedLine:
        return EvictedLine(
            line.addr,
            line.data,
            line.dirty,
            line.fill_level,
            line.core_id,
            line.prefetched,
        )

    # Iteration / statistics ----------------------------------------------

    def resident(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def register_stats(self, scope: StatScope, windowed: bool = True) -> None:
        """Expose hit/miss counters and the derived hit rate.

        ``windowed=False`` keeps whole-run accounting across a snapshot
        boundary (the MemZip metadata cache reports its historical
        warmup-inclusive hit rate this way).
        """
        hits = scope.counter("hits", lambda: self.hits, windowed=windowed)
        misses = scope.counter("misses", lambda: self.misses, windowed=windowed)
        scope.ratio("hit_rate", hits, [hits, misses])

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.policy_evictions = 0
        self.prefetch_victims = 0

    def drain(self, sink: Callable[[EvictedLine], None]) -> None:
        """Evict everything through ``sink`` (end-of-simulation flush)."""
        for set_index, cache_set in enumerate(self._sets):
            while cache_set:
                addr, line = cache_set.popitem(last=False)
                self.policy.on_evict(set_index, addr)
                sink(self._evicted(line))
