"""Deterministic cache-line data generation with controlled compressibility.

The paper's workloads are real SPEC/GAP program slices; we replace them
with synthetic traces (DESIGN.md §4), which means *we* must supply the
byte values each line holds.  Compressibility is controlled through a
small set of pattern families chosen per page — matching the paper's
observation (and the LLP's premise) that lines within a page tend to
have similar compressibility:

=============  =================================  ========================
family         contents                           co-compressibility
=============  =================================  ========================
``ZERO``       all zeros                          4:1 (quad fits easily)
``SMALL_INT``  mostly-zero tiny 32-bit ints       4:1 (FPC ~10B/line)
``POINTER``    8-byte base + small deltas         2:1 (BDI ~20-27B/line)
``MEDIUM``     16-bit-range 32-bit ints           line-compressible but a
                                                  pair exceeds one slot
``BOUNDARY``   mixed 8/16-bit-range ints          a pair fits 64B but not
                                                  60B (marker reserve)
``RANDOM``     keyed-hash noise                   incompressible
=============  =================================  ========================

Generation is a pure function of (address, version, seed) so the
simulator can regenerate identical bytes anywhere and memoized
compression stays valid.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from repro.compression.base import LINE_SIZE
from repro.util.hashing import KeyedHash, mix64

LINES_PER_PAGE = 64


class PatternKind(Enum):
    ZERO = "zero"
    SMALL_INT = "small_int"
    POINTER = "pointer"
    MEDIUM = "medium"
    BOUNDARY = "boundary"
    RANDOM = "random"


@dataclass(frozen=True)
class DataProfile:
    """Distribution over pattern families, assigned page by page.

    ``noise`` is the per-line probability of deviating to RANDOM within an
    otherwise homogeneous page — it creates the occasional incompressible
    line that breaks a group apart (and exercises LLP mispredictions).
    """

    weights: Dict[PatternKind, float]
    noise: float = 0.001

    def __post_init__(self) -> None:
        total = sum(self.weights.values())
        if total <= 0:
            raise ValueError("profile weights must sum to a positive value")
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError("noise must be a probability")

    def kind_for_page(self, page: int, seed: int) -> PatternKind:
        """Deterministically pick the page's family by weight."""
        total = sum(self.weights.values())
        draw = (mix64(page ^ seed ^ 0xA5A5) % (1 << 30)) / (1 << 30) * total
        acc = 0.0
        for kind, weight in self.weights.items():
            acc += weight
            if draw < acc:
                return kind
        return PatternKind.RANDOM

    def kind_for_line(self, vline: int, seed: int) -> PatternKind:
        """Page family, with per-line noise deviation."""
        page = vline // LINES_PER_PAGE
        kind = self.kind_for_page(page, seed)
        if self.noise > 0.0:
            draw = (mix64(vline ^ seed ^ 0x0F0F) % (1 << 30)) / (1 << 30)
            if draw < self.noise:
                return PatternKind.RANDOM
        return kind


# Canonical profiles used by the synthetic suites --------------------------

SPEC_LIKE = DataProfile(
    {
        PatternKind.ZERO: 0.20,
        PatternKind.SMALL_INT: 0.35,
        PatternKind.POINTER: 0.22,
        PatternKind.BOUNDARY: 0.08,
        PatternKind.MEDIUM: 0.07,
        PatternKind.RANDOM: 0.08,
    }
)

GRAPH_LIKE = DataProfile(
    {
        PatternKind.ZERO: 0.10,
        PatternKind.SMALL_INT: 0.15,
        PatternKind.POINTER: 0.25,
        PatternKind.BOUNDARY: 0.05,
        PatternKind.MEDIUM: 0.15,
        PatternKind.RANDOM: 0.30,
    },
    noise=0.02,
)

INCOMPRESSIBLE = DataProfile({PatternKind.RANDOM: 1.0}, noise=0.0)
ALL_ZERO = DataProfile({PatternKind.ZERO: 1.0}, noise=0.0)


class DataGenerator:
    """Pure-function line contents: ``data(vline, version)``.

    ``version`` counts stores to the line; bumping it changes the values
    while (usually) staying in the family.  ``write_scramble`` is the
    probability a store degrades the line to RANDOM — graph workloads
    update lines with poorly compressible values more often.
    """

    def __init__(self, profile: DataProfile, seed: int, write_scramble: float = 0.0) -> None:
        self.profile = profile
        self.seed = seed
        self.write_scramble = write_scramble
        self._hash = KeyedHash(seed ^ 0xDA7A)
        self._memo: Dict[Tuple[int, int], bytes] = {}

    def kind(self, vline: int, version: int = 0) -> PatternKind:
        base_kind = self.profile.kind_for_line(vline, self.seed)
        if version > 0 and self.write_scramble > 0.0:
            draw = (mix64(vline ^ (version << 32) ^ self.seed) % (1 << 30)) / (1 << 30)
            if draw < self.write_scramble:
                return PatternKind.RANDOM
        return base_kind

    def line(self, vline: int, version: int = 0) -> bytes:
        """The 64 bytes this line holds at this version (memoized)."""
        key = (vline, version)
        data = self._memo.get(key)
        if data is None:
            kind = self.kind(vline, version)
            nonce = mix64(vline ^ (version << 20) ^ self.seed)
            data = render_pattern(kind, nonce, self._hash)
            self._memo[key] = data
        return data


def render_pattern(kind: PatternKind, nonce: int, keyed: KeyedHash) -> bytes:
    """Materialise 64 bytes of the given family from a nonce."""
    if kind is PatternKind.ZERO:
        return b"\x00" * LINE_SIZE
    if kind is PatternKind.SMALL_INT:
        # sparse-array shape: a zero run followed by a few tiny values, so
        # the FPC size is stable across versions (a quad always fits)
        words = [0] * 12
        state = nonce
        for _ in range(4):
            state = mix64(state)
            words.append((state >> 8) % 15 - 7)  # in [-7, 7]
        return struct.pack("<16i", *words)
    if kind is PatternKind.POINTER:
        base = 0x7F0000000000 | ((nonce & 0xFFFF) << 20)
        values = []
        state = nonce
        for _ in range(8):
            state = mix64(state)
            values.append(base + (state % 120))  # deltas fit one byte
        return struct.pack("<8Q", *values)
    if kind is PatternKind.BOUNDARY:
        # 8 one-byte-range + 8 two-byte-range words: FPC encodes this in
        # exactly 240 bits (31B with the tag), so a *pair* sums to 62B —
        # it fits a bare 64-byte slot but not one with a 4-byte marker
        # reserved.  This family realises the paper's Fig. 6 gap between
        # "double 64" and "double 60".
        words = []
        state = nonce
        for i in range(16):
            state = mix64(state)
            if i % 2 == 0:
                magnitude = 9 + state % 90  # always the 8-bit FPC class
            else:
                magnitude = 300 + state % 29000  # always the 16-bit class
            words.append(magnitude if state & (1 << 40) else -magnitude)
        return struct.pack("<16i", *words)
    if kind is PatternKind.MEDIUM:
        words = []
        state = nonce
        for _ in range(16):
            state = mix64(state)
            words.append((state >> 4) % 60000 - 30000)  # 16-bit range
        return struct.pack("<16i", *words)
    # RANDOM: keyed noise, astronomically unlikely to hit any pattern
    base = keyed.hash64(nonce, tweak=0xBAD)
    return b"".join(mix64(base + i).to_bytes(8, "little") for i in range(8))
