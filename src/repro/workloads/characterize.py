"""Workload characterisation (the paper's Table II analog).

The paper summarises each workload by its L3 MPKI and memory footprint.
For the synthetic roster we measure the same quantities from a baseline
simulation plus two properties the paper's mechanisms care about but its
table leaves implicit: the average compressed line size and the fraction
of adjacent pairs that co-compress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.compression.base import LINE_SIZE
from repro.compression.hybrid import HybridCompressor
from repro.core.packing import payload_budget
from repro.types import Level
from repro.workloads.generators import MixWorkload, WorkloadTraceGenerator


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured characteristics of one workload."""

    name: str
    suite: str
    l3_mpki: float
    footprint_mb: float
    mean_compressed_bytes: float
    pair_fit_rate: float

    @property
    def memory_intensive(self) -> bool:
        """The paper's detailed-evaluation cut: at least 5 MPKI."""
        return self.l3_mpki >= 5.0


def _spec_for_stats(workload):
    """A representative per-core spec (core 0 for mixes)."""
    if isinstance(workload, MixWorkload):
        return workload.spec_for_core(0)
    return workload


def data_statistics(workload, samples: int = 512, seed_core: int = 0):
    """(mean compressed size, pair co-compression rate) of a workload's data."""
    spec = _spec_for_stats(workload)
    generator = WorkloadTraceGenerator(spec, seed_core)
    hybrid = HybridCompressor()
    total = 0
    fits = 0
    pairs = 0
    budget = payload_budget(Level.PAIR)
    stride = max(2, (spec.footprint_lines // samples) & ~1)
    for index in range(samples):
        base = (index * stride) % (spec.footprint_lines - 1) & ~1
        sizes = []
        for offset in range(2):
            line = generator.data.line(base + offset)
            payload = hybrid.compress(line)
            size = LINE_SIZE if payload is None else len(payload)
            total += size
            sizes.append(size)
        pairs += 1
        if sum(sizes) <= budget:
            fits += 1
    return total / (samples * 2), fits / pairs


def footprint_mb(workload, num_cores: int = 8) -> float:
    """Aggregate memory footprint across all cores, in megabytes."""
    if isinstance(workload, MixWorkload):
        lines = sum(
            workload.spec_for_core(core).footprint_lines for core in range(num_cores)
        )
    else:
        lines = workload.footprint_lines * num_cores
    return lines * LINE_SIZE / 1e6


def reuse_distance_histogram(
    addresses: Iterable[int], max_records: int = 200_000
) -> Dict[str, int]:
    """Exact LRU stack-distance histogram of an address stream.

    The reuse distance of an access is the number of *distinct* lines
    touched since the previous access to the same line — the classic
    locality fingerprint (an access hits in a fully-associative LRU
    cache of C lines iff its reuse distance is < C).  Distances are
    bucketed by power of two (``"1"``, ``"2"``, ``"4"``, ...); first
    touches land in ``"cold"``.

    Uses the Bennett–Kruskal Fenwick-tree formulation: O(n log n) time,
    O(n) space.  ``max_records`` caps the work for very long traces
    (the prefix is characterised; 0 means no cap).
    """
    stream = list(addresses if max_records <= 0 else _take(addresses, max_records))
    n = len(stream)
    # Fenwick tree over access positions; marked positions are the
    # *latest* occurrence so far of each distinct line.
    tree = [0] * (n + 1)

    def _add(pos: int, delta: int) -> None:
        pos += 1
        while pos <= n:
            tree[pos] += delta
            pos += pos & -pos

    def _prefix(pos: int) -> int:
        # marked positions in [0, pos)
        total = 0
        while pos > 0:
            total += tree[pos]
            pos -= pos & -pos
        return total

    histogram: Dict[str, int] = {}
    last_seen: Dict[int, int] = {}
    marked = 0
    for position, line in enumerate(stream):
        previous = last_seen.get(line)
        if previous is None:
            bucket = "cold"
        else:
            # distinct lines since the previous access = marked
            # latest-occurrence positions strictly after it, plus the
            # line itself (so an immediate re-access has distance 1)
            distance = marked - _prefix(previous + 1) + 1
            bucket = str(1 << (distance - 1).bit_length())
            _add(previous, -1)
            marked -= 1
        histogram[bucket] = histogram.get(bucket, 0) + 1
        _add(position, 1)
        marked += 1
        last_seen[line] = position
    return histogram


def _take(iterable: Iterable[int], count: int):
    for index, item in enumerate(iterable):
        if index >= count:
            return
        yield item


def characterize(workload, config=None, baseline=None) -> WorkloadProfile:
    """Full Table-II-style row for one workload.

    ``baseline`` may pass a pre-computed uncompressed SimResult; otherwise
    one is obtained through the (memoizing) runner.
    """
    from repro.sim.runner import simulate

    if baseline is None:
        baseline = simulate(workload, "uncompressed", config)
    instructions = sum(baseline.core_instructions)
    mpki = baseline.l3_misses / instructions * 1000 if instructions else 0.0
    mean_size, pair_rate = data_statistics(workload)
    return WorkloadProfile(
        name=workload.name,
        suite=workload.suite,
        l3_mpki=mpki,
        footprint_mb=footprint_mb(workload),
        mean_compressed_bytes=mean_size,
        pair_fit_rate=pair_rate,
    )
