"""Workload characterisation (the paper's Table II analog).

The paper summarises each workload by its L3 MPKI and memory footprint.
For the synthetic roster we measure the same quantities from a baseline
simulation plus two properties the paper's mechanisms care about but its
table leaves implicit: the average compressed line size and the fraction
of adjacent pairs that co-compress.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import LINE_SIZE
from repro.compression.hybrid import HybridCompressor
from repro.core.packing import payload_budget
from repro.types import Level
from repro.workloads.generators import MixWorkload, WorkloadTraceGenerator


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured characteristics of one workload."""

    name: str
    suite: str
    l3_mpki: float
    footprint_mb: float
    mean_compressed_bytes: float
    pair_fit_rate: float

    @property
    def memory_intensive(self) -> bool:
        """The paper's detailed-evaluation cut: at least 5 MPKI."""
        return self.l3_mpki >= 5.0


def _spec_for_stats(workload):
    """A representative per-core spec (core 0 for mixes)."""
    if isinstance(workload, MixWorkload):
        return workload.spec_for_core(0)
    return workload


def data_statistics(workload, samples: int = 512, seed_core: int = 0):
    """(mean compressed size, pair co-compression rate) of a workload's data."""
    spec = _spec_for_stats(workload)
    generator = WorkloadTraceGenerator(spec, seed_core)
    hybrid = HybridCompressor()
    total = 0
    fits = 0
    pairs = 0
    budget = payload_budget(Level.PAIR)
    stride = max(2, (spec.footprint_lines // samples) & ~1)
    for index in range(samples):
        base = (index * stride) % (spec.footprint_lines - 1) & ~1
        sizes = []
        for offset in range(2):
            line = generator.data.line(base + offset)
            payload = hybrid.compress(line)
            size = LINE_SIZE if payload is None else len(payload)
            total += size
            sizes.append(size)
        pairs += 1
        if sum(sizes) <= budget:
            fits += 1
    return total / (samples * 2), fits / pairs


def footprint_mb(workload, num_cores: int = 8) -> float:
    """Aggregate memory footprint across all cores, in megabytes."""
    if isinstance(workload, MixWorkload):
        lines = sum(
            workload.spec_for_core(core).footprint_lines for core in range(num_cores)
        )
    else:
        lines = workload.footprint_lines * num_cores
    return lines * LINE_SIZE / 1e6


def characterize(workload, config=None, baseline=None) -> WorkloadProfile:
    """Full Table-II-style row for one workload.

    ``baseline`` may pass a pre-computed uncompressed SimResult; otherwise
    one is obtained through the (memoizing) runner.
    """
    from repro.sim.runner import simulate

    if baseline is None:
        baseline = simulate(workload, "uncompressed", config)
    instructions = sum(baseline.core_instructions)
    mpki = baseline.l3_misses / instructions * 1000 if instructions else 0.0
    mean_size, pair_rate = data_statistics(workload)
    return WorkloadProfile(
        name=workload.name,
        suite=workload.suite,
        l3_mpki=mpki,
        footprint_mb=footprint_mb(workload),
        mean_compressed_bytes=mean_size,
        pair_fit_rate=pair_rate,
    )
