"""Synthetic memory-trace generators (the SPEC/GAP stand-ins).

Each :class:`WorkloadSpec` controls the four axes the paper's mechanisms
respond to (DESIGN.md §4):

- *spatial locality* (``seq_frac`` + streaming runs) — drives the
  usefulness of co-fetched neighbour lines and LLP accuracy;
- *temporal reuse* (``reuse_frac`` over a hot set) — decides whether the
  bandwidth invested in compressing lines is ever amortised;
- *write behaviour* (``write_frac``, ``write_scramble``) — produces the
  dirty evictions and compressibility churn that cost PTMC bandwidth;
- *data values* (``profile``) — set the compression ratio itself.

SPEC-like specs are sequential, reusing and compressible (PTMC should
win); GAP-like specs are irregular with poor reuse and mostly random
data (static compression should lose, Dynamic-PTMC should bail out).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, Iterator, List, Optional

from repro.cpu.trace import TraceRecord
from repro.workloads.data_patterns import (
    GRAPH_LIKE,
    SPEC_LIKE,
    DataGenerator,
    DataProfile,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic benchmark."""

    name: str
    suite: str  # "spec06" | "spec17" | "gap" | "mix" | "low"
    footprint_lines: int = 1 << 16
    seq_frac: float = 0.6
    reuse_frac: float = 0.2
    hot_lines: int = 2048
    run_length: int = 24
    jump_burst: int = 4
    """Lines touched contiguously after a non-sequential jump (reuse or
    random).  Real programs touch spatial neighbourhoods, not isolated
    64-byte lines; bursts of about one compression group keep neighbour
    lines co-resident in the LLC, which both compaction and the LLP rely
    on.  Graph workloads set this to 1 (isolated vertex touches)."""
    write_frac: float = 0.25
    mean_gap: int = 6
    profile: DataProfile = field(default_factory=lambda: SPEC_LIKE)
    write_scramble: float = 0.05
    seed: int = 0

    def with_seed(self, seed: int) -> "WorkloadSpec":
        return replace(self, seed=seed)

    @property
    def memory_intensive(self) -> bool:
        return self.suite != "low"

    def make_generator(self, core_id: int) -> "WorkloadTraceGenerator":
        """The per-core generator for this spec (polymorphic with
        :class:`repro.traces.replay.TraceWorkload`)."""
        return WorkloadTraceGenerator(self, core_id)


class TraceExhausted(Exception):
    """Raised by ``_record()`` when a finite record source runs out.

    Synthetic generators never raise it; finite (non-looping) trace
    replay does, and :class:`RecordStreamGenerator` turns it into a
    clean end-of-stream for both the scalar and the batched path.
    """


class RecordStreamGenerator:
    """Shared scalar/batched replay machinery over a ``_record()`` source.

    Subclasses implement :meth:`_record` — the single source of record
    order — and inherit ``generate``/``generate_batched`` whose record
    streams are bitwise-identical to each other (DESIGN.md §9).  A
    subclass with a finite source signals the end by raising
    :class:`TraceExhausted` from ``_record()``.
    """

    def _record(self) -> TraceRecord:
        """Draw the next trace record (the single source of RNG order)."""
        raise NotImplementedError

    def _on_replay(self, record: TraceRecord) -> None:
        """Hook fired as each record is handed to the consumer.

        Called at *yield* time — not decode time — in both the scalar
        and the batched path, so counters driven from it see the exact
        same per-consumed-record timing either way (the batched path
        decodes up to a chunk ahead, which would otherwise leak into
        phase-windowed telemetry deltas).
        """

    def generate(self, num_ops: int) -> Iterator[TraceRecord]:
        """Yield up to ``num_ops`` trace records."""
        for _ in range(num_ops):
            try:
                record = self._record()
            except TraceExhausted:
                return
            self._on_replay(record)
            yield record

    def generate_batched(
        self,
        num_ops: int,
        chunk_ops: int,
        on_chunk: Optional[Callable[["TraceChunk"], None]] = None,
    ) -> Iterator[TraceRecord]:
        """Yield exactly the records :meth:`generate` would, in chunks.

        Records are pre-decoded ``chunk_ops`` at a time and each block is
        handed to ``on_chunk`` (as a :class:`TraceChunk`) before any of
        its records is replayed — one opportunity for bulk work, such as
        vectorized compressed-size precompute, ahead of the per-record
        consumers.  Both paths call :meth:`_record` in the same order, so
        the record stream is identical; only the generator-side state
        (``reference``, versions) runs ahead of the replay by at most one
        chunk, which nothing observes until the trace is drained.
        """
        if chunk_ops < 1:
            raise ValueError("chunk_ops must be positive")
        remaining = num_ops
        while remaining > 0:
            take = min(chunk_ops, remaining)
            remaining -= take
            records = []
            try:
                for _ in range(take):
                    records.append(self._record())
            except TraceExhausted:
                remaining = 0
            if not records:
                return
            chunk = TraceChunk(records)
            if on_chunk is not None:
                on_chunk(chunk)
            for record in chunk.records:
                self._on_replay(record)
                yield record


class WorkloadTraceGenerator(RecordStreamGenerator):
    """Deterministic trace generator for one core running one spec."""

    def __init__(self, spec: WorkloadSpec, core_id: int) -> None:
        self.spec = spec
        self.core_id = core_id
        self._rng = random.Random(spec.seed * 1_000_003 + core_id)
        self.data = DataGenerator(
            spec.profile,
            seed=spec.seed * 7_919 + core_id,
            write_scramble=spec.write_scramble,
        )
        self._versions: Dict[int, int] = {}
        self._stream_pos = self._rng.randrange(spec.footprint_lines)
        self._burst_pos = 0
        self._burst_left = 0
        self._hot: Deque[int] = deque(maxlen=spec.hot_lines)
        #: reference model: the latest data value of every line ever written
        self.reference: Dict[int, bytes] = {}

    # ------------------------------------------------------------------

    def _next_address(self) -> int:
        spec = self.spec
        rng = self._rng
        footprint = spec.footprint_lines
        if self._burst_left > 0:
            # finish the spatial neighbourhood opened by the last jump
            self._burst_left -= 1
            self._burst_pos = (self._burst_pos + 1) % footprint
            addr = self._burst_pos
            self._hot.append(addr)
            return addr
        draw = rng.random()
        if draw < spec.seq_frac:
            self._stream_pos = (self._stream_pos + 1) % footprint
            if rng.random() < 1.0 / max(1, spec.run_length):
                self._stream_pos = rng.randrange(footprint)
            addr = self._stream_pos
        else:
            if draw < spec.seq_frac + spec.reuse_frac and self._hot:
                addr = self._hot[rng.randrange(len(self._hot))]
            else:
                addr = rng.randrange(footprint)
            if spec.jump_burst > 1:
                self._burst_pos = addr
                self._burst_left = rng.randint(0, spec.jump_burst - 1)
        self._hot.append(addr)
        return addr

    def current_data(self, vline: int) -> bytes:
        """The value the line holds right now (version-aware)."""
        return self.data.line(vline, self._versions.get(vline, 0))

    def _record(self) -> TraceRecord:
        """Draw the next trace record (the single source of RNG order)."""
        spec = self.spec
        rng = self._rng
        gap = rng.randint(0, 2 * spec.mean_gap)
        vline = self._next_address()
        if rng.random() < spec.write_frac:
            version = self._versions.get(vline, 0) + 1
            self._versions[vline] = version
            data = self.data.line(vline, version)
            self.reference[vline] = data
            return TraceRecord(gap, True, vline, data)
        return TraceRecord(gap, False, vline, None)


@dataclass
class TraceChunk:
    """A pre-decoded block of trace records with bulk views of its data."""

    records: List[TraceRecord]

    def __len__(self) -> int:
        return len(self.records)

    def addresses(self):
        """Virtual line numbers in trace order, as an int64 numpy array."""
        import numpy as np

        return np.fromiter(
            (record.vline for record in self.records),
            dtype=np.int64,
            count=len(self.records),
        )

    def write_lines(self) -> List[bytes]:
        """Data of the write records, in trace order (duplicates kept)."""
        return [record.write_data for record in self.records if record.is_write]


def initial_line_value(generator: WorkloadTraceGenerator, vline: int) -> bytes:
    """Version-0 contents of a line (what memory 'contains' at first touch)."""
    return generator.data.line(vline, 0)


def make_mix(name: str, specs, seed: int = 0) -> "MixWorkload":
    return MixWorkload(name, list(specs), seed)


@dataclass
class MixWorkload:
    """A MIX workload: a different spec on each core (paper's mix1..mix6)."""

    name: str
    specs: list
    seed: int = 0
    suite: str = "mix"

    @property
    def memory_intensive(self) -> bool:
        return True

    def spec_for_core(self, core_id: int) -> WorkloadSpec:
        spec = self.specs[core_id % len(self.specs)]
        return spec.with_seed(spec.seed + self.seed + 17 * core_id)


# Ready-made parameter templates --------------------------------------------

def spec_like(name: str, suite: str = "spec06", **overrides) -> WorkloadSpec:
    """A compressible, spatially local, reusing workload (SPEC-flavoured)."""
    params = dict(
        footprint_lines=2048,
        seq_frac=0.62,
        reuse_frac=0.22,
        hot_lines=512,
        run_length=28,
        write_frac=0.25,
        mean_gap=6,
        profile=SPEC_LIKE,
        write_scramble=0.005,
    )
    params.update(overrides)
    return WorkloadSpec(name=name, suite=suite, **params)


def graph_like(name: str, **overrides) -> WorkloadSpec:
    """An irregular, low-reuse, poorly compressible workload (GAP-flavoured)."""
    params = dict(
        footprint_lines=64 * 1024,
        jump_burst=1,
        seq_frac=0.08,
        reuse_frac=0.15,
        hot_lines=8 * 1024,
        run_length=4,
        write_frac=0.15,
        mean_gap=5,
        profile=GRAPH_LIKE,
        write_scramble=0.35,
    )
    params.update(overrides)
    return WorkloadSpec(name=name, suite="gap", **params)


def low_mpki(name: str, suite: str = "low", **overrides) -> WorkloadSpec:
    """A cache-friendly filler workload (part of the 64-workload set)."""
    params = dict(
        footprint_lines=1024,
        seq_frac=0.55,
        reuse_frac=0.35,
        hot_lines=512,
        run_length=32,
        write_frac=0.2,
        mean_gap=40,
        profile=SPEC_LIKE,
        write_scramble=0.02,
    )
    params.update(overrides)
    return WorkloadSpec(name=name, suite=suite, **params)
