"""The named workload roster (paper §III-B, Table II).

The paper evaluates 27 memory-intensive workloads — SPEC 2006/2017 rate
mode, GAP graph analytics, and 6 MIXes — plus enough low-MPKI fillers to
reach 64 workloads for the extended study (Fig. 17).  The exact traces
are not available (DESIGN.md §4), so each name below is a synthetic spec
whose locality/compressibility parameters are tuned to the behavioural
class the paper reports for that kind of benchmark:

- SPEC-like: compressible data, strong spatial locality and reuse;
- GAP-like (suffix ``.twitter/.web/.sk``): irregular access, large
  footprint, poor reuse, mostly incompressible data;
- MIXes: random pairings of the above across the 8 cores.

Workload naming keeps the paper's flavour (e.g. ``lbm06``, ``bfs.twitter``)
without claiming instruction-level equivalence to the real programs.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.workloads.generators import (
    MixWorkload,
    WorkloadSpec,
    graph_like,
    low_mpki,
    make_mix,
    spec_like,
)

Workload = Union[WorkloadSpec, MixWorkload]

# --- SPEC 2006-like (high MPKI) -------------------------------------------

SPEC06: List[WorkloadSpec] = [
    spec_like("lbm06", seq_frac=0.75, write_frac=0.35, footprint_lines=2048, seed=11),
    spec_like("mcf06", seq_frac=0.35, reuse_frac=0.30, hot_lines=2048,
              footprint_lines=3072, write_scramble=0.02, seed=12),
    spec_like("milc06", seq_frac=0.68, write_frac=0.30, footprint_lines=2048, seed=13),
    spec_like("libquantum06", seq_frac=0.85, run_length=64, write_frac=0.20,
              footprint_lines=1536, seed=14),
    spec_like("soplex06", seq_frac=0.55, reuse_frac=0.25, footprint_lines=2048, seed=15),
    spec_like("omnetpp06", seq_frac=0.40, reuse_frac=0.30, hot_lines=1536,
              footprint_lines=2048, write_scramble=0.015, seed=16),
    spec_like("gcc06", seq_frac=0.58, write_frac=0.22, footprint_lines=2048, seed=17),
]

# --- SPEC 2017-like (high MPKI) -------------------------------------------

SPEC17: List[WorkloadSpec] = [
    spec_like("lbm17", "spec17", seq_frac=0.78, write_frac=0.35,
              footprint_lines=2560, seed=21),
    spec_like("mcf17", "spec17", seq_frac=0.38, reuse_frac=0.28, hot_lines=2048,
              footprint_lines=3072, write_scramble=0.02, seed=22),
    spec_like("cam417", "spec17", seq_frac=0.60, write_frac=0.28,
              footprint_lines=2048, seed=23),
    spec_like("fotonik17", "spec17", seq_frac=0.80, run_length=48,
              footprint_lines=2048, seed=24),
    spec_like("roms17", "spec17", seq_frac=0.70, write_frac=0.30,
              footprint_lines=2048, seed=25),
]

# --- GAP-like graph analytics ----------------------------------------------

GAP: List[WorkloadSpec] = [
    graph_like("bfs.twitter", seed=31),
    graph_like("pr.twitter", write_frac=0.25, seed=32),
    graph_like("cc.twitter", seed=33),
    graph_like("bfs.web", footprint_lines=56 * 1024, seq_frac=0.12, seed=34),
    graph_like("pr.web", footprint_lines=56 * 1024, write_frac=0.25, seed=35),
    graph_like("cc.web", footprint_lines=56 * 1024, seed=36),
    graph_like("bfs.sk", footprint_lines=80 * 1024, seed=37),
    graph_like("pr.sk", footprint_lines=80 * 1024, write_frac=0.22, seed=38),
    graph_like("tc.sk", footprint_lines=80 * 1024, write_frac=0.10, seed=39),
]

# --- MIX workloads (random SPEC+GAP pairings, paper's mix1..mix6) -----------

MIXES: List[MixWorkload] = [
    make_mix("mix1", [SPEC06[0], GAP[0], SPEC06[2], GAP[3]] * 2, seed=41),
    make_mix("mix2", [SPEC06[1], SPEC17[0], GAP[1], SPEC06[4]] * 2, seed=42),
    make_mix("mix3", [GAP[4], SPEC17[1], SPEC06[5], SPEC17[3]] * 2, seed=43),
    make_mix("mix4", [SPEC06[3], GAP[6], SPEC17[2], GAP[8]] * 2, seed=44),
    make_mix("mix5", [SPEC17[4], SPEC06[6], GAP[2], SPEC06[0]] * 2, seed=45),
    make_mix("mix6", [GAP[5], SPEC06[2], GAP[7], SPEC17[0]] * 2, seed=46),
]

HIGH_MPKI: List[Workload] = [*SPEC06, *SPEC17, *GAP]
MEMORY_INTENSIVE: List[Workload] = [*HIGH_MPKI, *MIXES]

# --- Low-MPKI fillers to reach the 64-workload extended set (Fig. 17) -------

_LOW_NAMES_06 = [
    "perlbench06", "bzip206", "gobmk06", "hmmer06", "sjeng06", "h264ref06",
    "astar06", "xalancbmk06", "namd06", "dealII06", "povray06", "calculix06",
    "gemsfdtd06", "tonto06", "wrf06", "sphinx306", "zeusmp06", "cactus06",
    "gromacs06", "leslie3d06", "bwaves06", "gamess06",
]
_LOW_NAMES_17 = [
    "perlbench17", "gcc17", "omnetpp17", "xalancbmk17", "x26417",
    "deepsjeng17", "leela17", "exchange217", "xz17", "wrf17",
    "blender17", "cactuBSSN17", "namd17", "parest17", "povray17",
]

LOW_MPKI: List[WorkloadSpec] = [
    low_mpki(name, seed=100 + i) for i, name in enumerate(_LOW_NAMES_06)
] + [
    low_mpki(name, seed=200 + i, footprint_lines=1536) for i, name in enumerate(_LOW_NAMES_17)
]

ALL_64: List[Workload] = (MEMORY_INTENSIVE + LOW_MPKI)[:64]

BY_NAME: Dict[str, Workload] = {w.name: w for w in MEMORY_INTENSIVE + LOW_MPKI}

#: Suite-name -> roster registry (the CLI and search drivers share it).
SUITE_BY_NAME: Dict[str, List[Workload]] = {
    "spec06": SPEC06,
    "spec17": SPEC17,
    "gap": GAP,
    "mix": MIXES,
    "memory_intensive": MEMORY_INTENSIVE,
    "all64": ALL_64,
}


def get_workload(name: str) -> Workload:
    """Look up a workload spec by its roster name."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(BY_NAME)}"
        ) from None


def suite_of(workload: Workload) -> str:
    return workload.suite
