"""PTMC: Practical and Transparent Memory-Compression — HPCA 2019 reproduction.

A full-system reproduction of Young, Kariyappa & Qureshi's PTMC design:
hardware main-memory compression for bandwidth on commodity (non-ECC)
DIMMs with no OS support, built on inline-metadata markers, a line
location predictor, and a dynamic cost/benefit compression policy.

Quick start::

    from repro import simulate, compare, bench_config

    speedup = compare("lbm06", "dynamic_ptmc")   # vs. uncompressed memory
    result = simulate("bfs.twitter", "static_ptmc")
    print(result.llp_accuracy, result.l3_hit_rate)

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.core` — PTMC and the baseline controllers
- :mod:`repro.compression` — FPC / BDI / C-Pack / hybrid algorithms
- :mod:`repro.dram`, :mod:`repro.cache`, :mod:`repro.cpu`, :mod:`repro.vm`
  — the simulated machine
- :mod:`repro.workloads` — synthetic SPEC/GAP-like trace generators
- :mod:`repro.sim` — configs, runner, results
- :mod:`repro.energy`, :mod:`repro.analysis` — energy model and reporting
"""

from repro.sim import (
    DESIGNS,
    SimConfig,
    SimResult,
    bench_config,
    compare,
    configure_disk_cache,
    paper_config,
    quick_config,
    run_batch,
    simulate,
    suite_geomean,
    sweep,
    weighted_speedup,
)

__version__ = "1.1.0"

__all__ = [
    "DESIGNS",
    "SimConfig",
    "SimResult",
    "bench_config",
    "compare",
    "configure_disk_cache",
    "paper_config",
    "quick_config",
    "run_batch",
    "simulate",
    "suite_geomean",
    "sweep",
    "weighted_speedup",
    "__version__",
]
