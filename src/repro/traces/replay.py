"""Replay a stored trace through the full workload interface.

:class:`TraceWorkload` is a frozen spec (so it participates in the
disk-cache key via ``stable_identity`` exactly like ``WorkloadSpec`` —
the trace *hash* is a field, making trace-backed results content-
addressed end to end) and :class:`TraceReplayGenerator` replays the
stored records through the shared :class:`RecordStreamGenerator`
machinery, so the scalar and vectorized-batch simulation paths both
work unchanged and stay bitwise-identical.

Stored traces are address-only (``(is_write, line)``), but compression
studies need line *contents*; replay synthesizes them deterministically
with the same :class:`~repro.workloads.data_patterns.DataGenerator`
pure function the synthetic roster uses — seeded from ``(spec.seed,
core_id)``, versioned per write — so a trace-backed run is a pure
function of (trace hash, spec fields, config).  DESIGN.md §12 documents
the policy.

Timing gaps are likewise synthesized (captured formats carry no
inter-access delay): uniform in ``[0, 2 * mean_gap]`` from a seeded
RNG, mirroring the synthetic generators.

In rate mode every core replays the *same* address stream with a
distinct data/timing seed (``with_seed(seed + core_id)`` — the same
per-core decorrelation the synthetic roster gets).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cpu.trace import TraceRecord
from repro.traces.formats import Access
from repro.traces.store import TraceStore, trace_store
from repro.workloads.data_patterns import SPEC_LIKE, DataGenerator, DataProfile
from repro.workloads.generators import RecordStreamGenerator, TraceExhausted


@dataclass(frozen=True)
class TraceWorkload:
    """Spec for replaying one stored trace (cache-key compatible)."""

    name: str
    trace_hash: str
    suite: str = "trace"
    seed: int = 0
    #: replay at most this many records per loop (0 = the whole trace)
    limit: int = 0
    #: wrap around at end of trace; when False the cores simply run out
    loop: bool = True
    #: synthesized mean inter-access gap (captured traces carry no timing)
    mean_gap: int = 6
    #: data-synthesis distribution for the line contents
    profile: DataProfile = field(default_factory=lambda: SPEC_LIKE)
    write_scramble: float = 0.05

    def with_seed(self, seed: int) -> "TraceWorkload":
        return replace(self, seed=seed)

    @property
    def memory_intensive(self) -> bool:
        return True

    def make_generator(self, core_id: int) -> "TraceReplayGenerator":
        return TraceReplayGenerator(self, core_id)


def trace_workload(
    hash_or_prefix: str,
    store: Optional[TraceStore] = None,
    **overrides,
) -> TraceWorkload:
    """Build a :class:`TraceWorkload` from a (possibly abbreviated) hash.

    The canonical name is ``trace:<hash12>`` unless overridden, so runs
    on the same trace alias in reports regardless of how the hash was
    spelled.
    """
    digest = (store or trace_store()).resolve(hash_or_prefix)
    overrides.setdefault("name", f"trace:{digest[:12]}")
    return TraceWorkload(trace_hash=digest, **overrides)


#: process-wide record memo so 8 per-core generators (and repeat runs)
#: decode each stored trace once; values are read-only lists
_records_memo: Dict[Tuple[str, str], List[Access]] = {}


def _shared_records(trace_hash: str) -> List[Access]:
    store = trace_store()
    key = (str(store.root), trace_hash)
    records = _records_memo.get(key)
    if records is None:
        records = store.load_records(trace_hash)
        _records_memo[key] = records
    return records


def clear_record_memo() -> None:
    """Drop decoded-trace memo entries (tests / long-lived daemons)."""
    _records_memo.clear()


class TraceReplayGenerator(RecordStreamGenerator):
    """Deterministic replay of one stored trace on one core.

    Implements the full workload-generator interface the simulator
    consumes: ``spec``/``data``/``reference`` attributes,
    ``current_data``, and the inherited ``generate``/
    ``generate_batched`` (bitwise-identical record streams).
    """

    def __init__(self, spec: TraceWorkload, core_id: int) -> None:
        self.spec = spec
        self.core_id = core_id
        self._rng = random.Random(spec.seed * 1_000_003 + core_id)
        self.data = DataGenerator(
            spec.profile,
            seed=spec.seed * 7_919 + core_id,
            write_scramble=spec.write_scramble,
        )
        records = _shared_records(spec.trace_hash)
        if spec.limit > 0:
            records = records[: spec.limit]
        if not records:
            raise ValueError(f"trace {spec.trace_hash[:12]} has no records to replay")
        self._records = records
        self._cursor = 0
        self._versions: Dict[int, int] = {}
        #: reference model: the latest data value of every line ever written
        self.reference: Dict[int, bytes] = {}
        # trace.* telemetry sources (aggregated by SimulatedSystem);
        # bumped from _on_replay, i.e. per record *consumed*, so the
        # batched path's decode-ahead never skews phase deltas
        self.replayed_records = 0
        self.synthesized_fills = 0

    @property
    def loops(self) -> int:
        """Completed wrap-arounds implied by the records consumed so far."""
        if self.replayed_records <= 0:
            return 0
        return (self.replayed_records - 1) // len(self._records)

    def current_data(self, vline: int) -> bytes:
        """The value the line holds right now (version-aware)."""
        return self.data.line(vline, self._versions.get(vline, 0))

    def _on_replay(self, record: TraceRecord) -> None:
        self.replayed_records += 1
        if record.is_write:
            self.synthesized_fills += 1

    def _record(self) -> TraceRecord:
        if self._cursor >= len(self._records):
            if not self.spec.loop:
                raise TraceExhausted()
            self._cursor = 0
        is_write, vline = self._records[self._cursor]
        self._cursor += 1
        gap = self._rng.randint(0, 2 * self.spec.mean_gap)
        if is_write:
            version = self._versions.get(vline, 0) + 1
            self._versions[vline] = version
            data = self.data.line(vline, version)
            self.reference[vline] = data
            return TraceRecord(gap, True, vline, data)
        return TraceRecord(gap, False, vline, None)


__all__ = [
    "TraceReplayGenerator",
    "TraceWorkload",
    "clear_record_memo",
    "trace_workload",
]
