"""Real-trace ingestion: parse, content-address, characterize, replay.

See DESIGN.md §12.  The subsystem has three layers:

- :mod:`repro.traces.formats` — streaming parsers for ChampSim/Pin-style
  text, the canonical binary encoding, and gzip containers;
- :mod:`repro.traces.store` — the content-addressed :class:`TraceStore`
  (sha256 of canonical records) with characterization sidecars;
- :mod:`repro.traces.replay` — :class:`TraceWorkload` /
  :class:`TraceReplayGenerator`, replaying a stored trace through the
  full (scalar + batched) workload interface with deterministic data
  synthesis.
"""

from repro.traces.formats import ParseStats, TraceParseError
from repro.traces.replay import TraceReplayGenerator, TraceWorkload, trace_workload
from repro.traces.store import (
    TraceInfo,
    TraceStore,
    TraceStoreError,
    configure_trace_store,
    trace_store,
)

__all__ = [
    "ParseStats",
    "TraceInfo",
    "TraceParseError",
    "TraceReplayGenerator",
    "TraceStore",
    "TraceStoreError",
    "TraceWorkload",
    "configure_trace_store",
    "trace_store",
    "trace_workload",
]
