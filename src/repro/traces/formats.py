"""Streaming parsers and writers for memory-access trace formats.

Real traces arrive in two shapes (DESIGN.md §12):

- **Text** — ChampSim/Pin-style records, one access per line::

      r 0x7f8a12340
      W 140737488355328 128
      0x7f8a12380            # bare address defaults to a read

  The access kind is ``r``/``w`` (case-insensitive; ``read``/``write``
  and ``ld``/``st`` aliases accepted), the address is hex or decimal
  *byte* address, and the optional third field is an access size in
  bytes — accesses spanning several 64-byte lines expand to one record
  per line touched.  ``#`` starts a comment.

- **Binary** — the compact canonical encoding this subsystem stores:
  the :data:`MAGIC` header followed by one ``<BQ`` struct per record
  (``flags`` bit 0 = write, then the 64-bit line address).

Either shape may additionally be gzip-compressed; :func:`sniff_format`
looks at magic bytes, never at file extensions.  Parsing is streaming
(constant memory per record) and every text-parse error carries its
1-based line number.  ``strict`` mode raises on the first bad line;
``lenient`` mode skips bad lines and counts them.
"""

from __future__ import annotations

import gzip
import io
import struct
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator, List, Optional, Tuple

#: One canonical access: ``(is_write, line_address)``.  Line addresses
#: are 64-byte-granular (byte address // 64), matching ``TraceRecord.vline``.
Access = Tuple[bool, int]

#: Cache-line size the canonical records are normalised to.
LINE_BYTES = 64

#: File header of the canonical binary encoding (versioned).
MAGIC = b"PTMCTRACEv1\n"

#: Per-record binary layout: u8 flags (bit 0: write), u64 line address.
_RECORD = struct.Struct("<BQ")

#: gzip files start with these two bytes.
_GZIP_MAGIC = b"\x1f\x8b"

#: Text tokens naming each access kind.
_READ_TOKENS = frozenset({"r", "read", "ld", "load"})
_WRITE_TOKENS = frozenset({"w", "write", "st", "store"})

#: Largest line address the binary record can carry.
MAX_LINE_ADDR = (1 << 64) - 1


class TraceParseError(ValueError):
    """A trace line (or binary record) that could not be parsed.

    ``lineno`` is the 1-based source line for text input, ``None`` for
    binary streams (where ``offset`` positions the failure instead).
    """

    def __init__(self, message: str, lineno: Optional[int] = None) -> None:
        where = f"line {lineno}: " if lineno is not None else ""
        super().__init__(f"{where}{message}")
        self.lineno = lineno


@dataclass
class ParseStats:
    """What one parse pass saw (surfaced by ingest diagnostics)."""

    records: int = 0
    errors: int = 0
    #: first few (lineno, message) diagnostics, for error reporting
    samples: List[Tuple[Optional[int], str]] = field(default_factory=list)

    def note_error(self, exc: TraceParseError, keep: int = 5) -> None:
        self.errors += 1
        if len(self.samples) < keep:
            self.samples.append((exc.lineno, str(exc)))


# ---------------------------------------------------------------------------
# Text format
# ---------------------------------------------------------------------------


def parse_text_line(text: str, lineno: int) -> List[Access]:
    """Parse one text line into zero or more accesses.

    Returns ``[]`` for blank lines and comments; raises
    :class:`TraceParseError` (tagged with ``lineno``) otherwise.
    """
    body = text.split("#", 1)[0].strip()
    if not body:
        return []
    parts = body.split()
    if len(parts) == 1:
        kind_token, addr_text, size_text = "r", parts[0], None
    elif len(parts) == 2:
        kind_token, addr_text, size_text = parts[0], parts[1], None
    elif len(parts) == 3:
        kind_token, addr_text, size_text = parts
    else:
        raise TraceParseError(f"expected 'r/w <addr> [size]', got {body!r}", lineno)
    kind = kind_token.lower()
    if kind in _WRITE_TOKENS:
        is_write = True
    elif kind in _READ_TOKENS:
        is_write = False
    else:
        raise TraceParseError(f"unknown access kind {kind_token!r}", lineno)
    try:
        address = int(addr_text, 0)
    except ValueError:
        raise TraceParseError(f"bad address {addr_text!r}", lineno) from None
    if address < 0:
        raise TraceParseError(f"negative address {addr_text!r}", lineno)
    size = 1
    if size_text is not None:
        try:
            size = int(size_text, 0)
        except ValueError:
            raise TraceParseError(f"bad access size {size_text!r}", lineno) from None
        if size < 1:
            raise TraceParseError(f"non-positive access size {size}", lineno)
    first = address // LINE_BYTES
    last = (address + size - 1) // LINE_BYTES
    if last > MAX_LINE_ADDR:
        raise TraceParseError(f"address {addr_text!r} exceeds 64-bit lines", lineno)
    return [(is_write, line) for line in range(first, last + 1)]


def parse_text(
    lines: Iterable[str],
    mode: str = "strict",
    stats: Optional[ParseStats] = None,
) -> Iterator[Access]:
    """Stream accesses out of a text trace.

    ``mode="strict"`` raises :class:`TraceParseError` on the first bad
    line; ``mode="lenient"`` skips bad lines, counting them in ``stats``.
    """
    if mode not in ("strict", "lenient"):
        raise ValueError(f"mode must be 'strict' or 'lenient', not {mode!r}")
    for lineno, raw in enumerate(lines, start=1):
        try:
            accesses = parse_text_line(raw, lineno)
        except TraceParseError as exc:
            if mode == "strict":
                raise
            if stats is not None:
                stats.note_error(exc)
            continue
        for access in accesses:
            if stats is not None:
                stats.records += 1
            yield access


# ---------------------------------------------------------------------------
# Canonical binary format
# ---------------------------------------------------------------------------


def encode_records(accesses: Iterable[Access]) -> bytes:
    """Canonical binary encoding (the content that gets hashed/stored)."""
    pack = _RECORD.pack
    return MAGIC + b"".join(
        pack(1 if is_write else 0, line) for is_write, line in accesses
    )


def decode_records(
    stream: IO[bytes], stats: Optional[ParseStats] = None
) -> Iterator[Access]:
    """Stream accesses out of a canonical binary trace."""
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceParseError(f"bad binary trace magic {magic!r}")
    offset = len(MAGIC)
    size = _RECORD.size
    unpack = _RECORD.unpack
    while True:
        chunk = stream.read(size)
        if not chunk:
            return
        if len(chunk) != size:
            raise TraceParseError(f"truncated record at byte offset {offset}")
        flags, line = unpack(chunk)
        if flags > 1:
            raise TraceParseError(f"unknown record flags {flags:#x} at offset {offset}")
        offset += size
        if stats is not None:
            stats.records += 1
        yield (bool(flags & 1), line)


# ---------------------------------------------------------------------------
# Container sniffing (gzip / binary / text)
# ---------------------------------------------------------------------------


def sniff_format(data: bytes) -> str:
    """``"binary"`` or ``"text"`` for (already decompressed) trace bytes."""
    return "binary" if data.startswith(MAGIC) else "text"


def decompress_if_gzip(data: bytes) -> bytes:
    """Transparently unwrap a gzip container (magic-sniffed, not by name)."""
    if data.startswith(_GZIP_MAGIC):
        try:
            return gzip.decompress(data)
        except (OSError, EOFError) as exc:
            raise TraceParseError(f"corrupt gzip container: {exc}") from None
    return data


def parse_bytes(
    data: bytes,
    fmt: str = "auto",
    mode: str = "strict",
    stats: Optional[ParseStats] = None,
) -> Iterator[Access]:
    """Parse a whole trace payload in any supported container/format.

    ``fmt`` is ``auto`` (sniff), ``text`` or ``binary``; gzip wrapping is
    always detected regardless of ``fmt``.
    """
    data = decompress_if_gzip(data)
    if fmt == "auto":
        fmt = sniff_format(data)
    if fmt == "binary":
        yield from decode_records(io.BytesIO(data), stats=stats)
    elif fmt == "text":
        text = data.decode("utf-8", errors="replace")
        yield from parse_text(text.splitlines(), mode=mode, stats=stats)
    else:
        raise ValueError(f"unknown trace format {fmt!r}; choose auto/text/binary")


def parse_path(
    path,
    fmt: str = "auto",
    mode: str = "strict",
    stats: Optional[ParseStats] = None,
) -> Iterator[Access]:
    """Parse a trace file from disk (gzip and format auto-detected)."""
    with open(path, "rb") as handle:
        data = handle.read()
    yield from parse_bytes(data, fmt=fmt, mode=mode, stats=stats)


def format_text(accesses: Iterable[Access]) -> str:
    """Render accesses back as canonical text (one ``r/w 0x... `` per line)."""
    return "".join(
        f"{'w' if is_write else 'r'} {line * LINE_BYTES:#x}\n"
        for is_write, line in accesses
    )


__all__ = [
    "Access",
    "LINE_BYTES",
    "MAGIC",
    "ParseStats",
    "TraceParseError",
    "decode_records",
    "decompress_if_gzip",
    "encode_records",
    "format_text",
    "parse_bytes",
    "parse_path",
    "parse_text",
    "parse_text_line",
    "sniff_format",
]
