"""Content-addressed store for ingested traces.

Identity is the sha256 of the *canonical record bytes* (the
:data:`~repro.traces.formats.MAGIC`-headed binary encoding) — never of
the uploaded container, so the same trace uploaded as text, binary or
gzip dedups to one entry.  Layout under the store root::

    <root>/<hh>/<hash>.bin        canonical records, gzip (mtime=0, byte-stable)
    <root>/<hh>/<hash>.json       versioned characterization sidecar

where ``hh`` is the first two hex digits of the hash.  The sidecar
carries record count, read/write split, footprint, and the
reuse-distance histogram from :mod:`repro.workloads.characterize`, so
listings and ``GET /traces/<hash>`` never re-parse record payloads.

A module-level default store (``configure_trace_store`` /
``trace_store``) mirrors the disk-cache singleton in
:mod:`repro.sim.runner`; the root defaults to ``$REPRO_TRACE_DIR`` or
``~/.cache/repro-ptmc/traces``.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.traces.formats import (
    LINE_BYTES,
    Access,
    ParseStats,
    TraceParseError,
    decode_records,
    encode_records,
    parse_bytes,
)

#: Sidecar schema version — bump when the JSON layout changes; entries
#: with an unknown schema are re-characterised from the record bytes.
SIDECAR_SCHEMA = 1

_HASH_HEX = 64


class TraceStoreError(Exception):
    """Store-level failure (unknown hash, ambiguous prefix, corruption)."""


@dataclass(frozen=True)
class TraceInfo:
    """The characterization sidecar of one stored trace."""

    hash: str
    name: str
    records: int
    reads: int
    writes: int
    unique_lines: int
    footprint_bytes: int
    reuse_distance: Dict[str, int]
    parse_errors: int = 0
    created_at: float = 0.0
    schema: int = SIDECAR_SCHEMA

    @property
    def write_frac(self) -> float:
        return self.writes / self.records if self.records else 0.0

    def to_json_dict(self) -> dict:
        return {
            "schema": self.schema,
            "hash": self.hash,
            "name": self.name,
            "records": self.records,
            "reads": self.reads,
            "writes": self.writes,
            "write_frac": self.write_frac,
            "unique_lines": self.unique_lines,
            "footprint_bytes": self.footprint_bytes,
            "reuse_distance": dict(sorted(self.reuse_distance.items(),
                                          key=_bucket_order)),
            "parse_errors": self.parse_errors,
            "created_at": self.created_at,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "TraceInfo":
        return cls(
            hash=payload["hash"],
            name=payload.get("name", ""),
            records=payload["records"],
            reads=payload["reads"],
            writes=payload["writes"],
            unique_lines=payload["unique_lines"],
            footprint_bytes=payload["footprint_bytes"],
            reuse_distance=dict(payload.get("reuse_distance", {})),
            parse_errors=payload.get("parse_errors", 0),
            created_at=payload.get("created_at", 0.0),
            schema=payload.get("schema", 0),
        )


def _bucket_order(item: Tuple[str, int]):
    key = item[0]
    return (1, 0) if key == "cold" else (0, int(key))


@dataclass
class TraceStoreStats:
    """Ingest/serve counters (registered as ``trace.*`` by the daemon)."""

    ingested: int = 0
    dedup_hits: int = 0
    parse_errors: int = 0
    loads: int = 0

    def register_stats(self, scope) -> None:
        scope.counter("ingested", lambda: self.ingested,
                      "traces ingested (new store entries)")
        scope.counter("dedup_hits", lambda: self.dedup_hits,
                      "ingests deduplicated against an existing entry")
        scope.counter("parse_errors", lambda: self.parse_errors,
                      "trace lines skipped or rejected while parsing")
        scope.counter("loads", lambda: self.loads,
                      "trace record payloads loaded from the store")


def default_trace_dir() -> Path:
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-ptmc" / "traces"


def content_hash(records: List[Access]) -> str:
    """sha256 over the canonical record encoding (container-independent)."""
    return hashlib.sha256(encode_records(records)).hexdigest()


def characterize_records(
    records: List[Access],
    name: str,
    content: str,
    parse_errors: int = 0,
    created_at: float = 0.0,
) -> TraceInfo:
    """Build the sidecar for a record list (reuse-distance included)."""
    from repro.workloads.characterize import reuse_distance_histogram

    writes = sum(1 for is_write, _ in records if is_write)
    unique = len({line for _, line in records})
    return TraceInfo(
        hash=content,
        name=name,
        records=len(records),
        reads=len(records) - writes,
        writes=writes,
        unique_lines=unique,
        footprint_bytes=unique * LINE_BYTES,
        reuse_distance=reuse_distance_histogram(line for _, line in records),
        parse_errors=parse_errors,
        created_at=created_at,
    )


class TraceStore:
    """Content-addressed trace storage rooted at one directory."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_trace_dir()
        self.stats = TraceStoreStats()

    # -- paths ---------------------------------------------------------

    def _paths(self, digest: str) -> Tuple[Path, Path]:
        shard = self.root / digest[:2]
        return shard / f"{digest}.bin", shard / f"{digest}.json"

    # -- ingest --------------------------------------------------------

    def ingest_records(
        self,
        records: List[Access],
        name: str = "",
        parse_errors: int = 0,
    ) -> Tuple[TraceInfo, bool]:
        """Store a parsed record list; returns ``(info, created)``.

        Re-ingesting identical records dedups to the existing entry
        (``created=False``) regardless of the name it arrives under.
        """
        if not records:
            raise TraceStoreError("trace contains no records")
        digest = content_hash(records)
        bin_path, json_path = self._paths(digest)
        if bin_path.exists() and json_path.exists():
            self.stats.dedup_hits += 1
            return self.info(digest), False
        info = characterize_records(
            records, name=name, content=digest,
            parse_errors=parse_errors, created_at=time.time(),
        )
        bin_path.parent.mkdir(parents=True, exist_ok=True)
        # gzip with mtime=0 so the stored container bytes are a pure
        # function of the records (safe to compare/sync between hosts)
        buffer = io.BytesIO()
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as zipped:
            zipped.write(encode_records(records))
        _atomic_write(bin_path, buffer.getvalue())
        _atomic_write(json_path,
                      json.dumps(info.to_json_dict(), indent=2).encode() + b"\n")
        self.stats.ingested += 1
        return info, True

    def ingest_bytes(
        self,
        data: bytes,
        name: str = "",
        fmt: str = "auto",
        mode: str = "strict",
    ) -> Tuple[TraceInfo, bool]:
        """Parse an uploaded payload (any supported format) and store it."""
        stats = ParseStats()
        try:
            records = list(parse_bytes(data, fmt=fmt, mode=mode, stats=stats))
        except TraceParseError:
            self.stats.parse_errors += 1
            raise
        self.stats.parse_errors += stats.errors
        return self.ingest_records(records, name=name, parse_errors=stats.errors)

    def ingest_path(self, path, name: str = "",
                    fmt: str = "auto", mode: str = "strict"):
        source = Path(path)
        with open(source, "rb") as handle:
            data = handle.read()
        return self.ingest_bytes(data, name=name or source.name, fmt=fmt, mode=mode)

    # -- lookup --------------------------------------------------------

    def resolve(self, prefix: str) -> str:
        """Expand a (possibly abbreviated) hash to the full digest."""
        prefix = prefix.lower()
        if not prefix or any(c not in "0123456789abcdef" for c in prefix):
            raise TraceStoreError(f"invalid trace hash {prefix!r}")
        if len(prefix) == _HASH_HEX:
            if not self._paths(prefix)[0].exists():
                raise TraceStoreError(f"unknown trace {prefix}")
            return prefix
        if len(prefix) < 2:
            raise TraceStoreError("trace hash prefix must be at least 2 chars")
        shard = self.root / prefix[:2]
        matches = sorted(p.stem for p in shard.glob(f"{prefix}*.bin"))
        if not matches:
            raise TraceStoreError(f"unknown trace {prefix}")
        if len(matches) > 1:
            raise TraceStoreError(
                f"ambiguous trace prefix {prefix} ({len(matches)} matches)")
        return matches[0]

    def info(self, hash_or_prefix: str) -> TraceInfo:
        digest = self.resolve(hash_or_prefix)
        _, json_path = self._paths(digest)
        try:
            payload = json.loads(json_path.read_text())
        except (OSError, json.JSONDecodeError):
            payload = None
        if payload is None or payload.get("schema") != SIDECAR_SCHEMA:
            # missing/stale sidecar: rebuild from the record bytes
            records = self.load_records(digest)
            info = characterize_records(records, name=digest[:12], content=digest,
                                        created_at=time.time())
            _atomic_write(json_path,
                          json.dumps(info.to_json_dict(), indent=2).encode() + b"\n")
            return info
        return TraceInfo.from_json_dict(payload)

    def load_records(self, hash_or_prefix: str) -> List[Access]:
        """Load and integrity-check the canonical records of one trace."""
        digest = self.resolve(hash_or_prefix)
        bin_path, _ = self._paths(digest)
        try:
            raw = gzip.decompress(bin_path.read_bytes())
        except (OSError, EOFError) as exc:
            raise TraceStoreError(f"unreadable trace {digest[:12]}: {exc}") from None
        if hashlib.sha256(raw).hexdigest() != digest:
            raise TraceStoreError(f"trace {digest[:12]} failed its content hash")
        self.stats.loads += 1
        return list(decode_records(io.BytesIO(raw)))

    def list(self) -> List[TraceInfo]:
        """All stored traces, newest first."""
        infos = []
        for json_path in sorted(self.root.glob("??/*.json")):
            try:
                infos.append(self.info(json_path.stem))
            except TraceStoreError:
                continue
        infos.sort(key=lambda info: (-info.created_at, info.hash))
        return infos

    def remove(self, hash_or_prefix: str) -> None:
        digest = self.resolve(hash_or_prefix)
        for path in self._paths(digest):
            try:
                path.unlink()
            except FileNotFoundError:
                pass


def _atomic_write(path: Path, data: bytes) -> None:
    fd, temp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise


# -- module-level default store (mirrors runner.configure_disk_cache) --------

_default_store: Optional[TraceStore] = None


def configure_trace_store(root=None) -> TraceStore:
    """(Re)configure the process-wide default store and return it."""
    global _default_store
    _default_store = TraceStore(Path(root) if root is not None else None)
    return _default_store


def trace_store() -> TraceStore:
    """The process-wide default store (created on first use)."""
    global _default_store
    if _default_store is None:
        _default_store = TraceStore()
    return _default_store


__all__ = [
    "SIDECAR_SCHEMA",
    "TraceInfo",
    "TraceStore",
    "TraceStoreError",
    "TraceStoreStats",
    "characterize_records",
    "configure_trace_store",
    "content_hash",
    "default_trace_dir",
    "trace_store",
]
