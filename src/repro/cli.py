"""Command-line interface: run experiments without writing Python.

Examples::

    python -m repro list                       # workloads and designs
    python -m repro run lbm06 dynamic_ptmc     # one simulation + report
    python -m repro compare lbm06              # all designs on one workload
    python -m repro suite gap static_ptmc      # geomean over a suite
    python -m repro sweep spec06 --jobs 4      # parallel speedup matrix
    python -m repro cache stats                # on-disk result cache

Results are cached on disk (content-addressed, ``~/.cache/repro-ptmc``
or ``$REPRO_CACHE_DIR``), so repeat invocations are near-instant; pass
``--no-disk-cache`` to opt out or ``repro cache clear`` to start fresh.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import banner, format_metrics, format_table
from repro.energy import relative_energy
from repro.sim import runner
from repro.sim.config import bench_config
from repro.sim.diskcache import DiskCache
from repro.sim.runner import compare, simulate
from repro.sim.system import DESIGNS
from repro.workloads import ALL_64, GAP, MEMORY_INTENSIVE, MIXES, SPEC06, SPEC17, get_workload

SUITES = {
    "spec06": SPEC06,
    "spec17": SPEC17,
    "gap": GAP,
    "mix": MIXES,
    "memory_intensive": MEMORY_INTENSIVE,
    "all64": ALL_64,
}


def _config(args) -> "SimConfig":
    return bench_config(
        ops_per_core=args.ops,
        warmup_ops=args.warmup,
    )


def cmd_list(args) -> int:
    print(banner("Designs"))
    for design in DESIGNS:
        print(f"  {design}")
    print(banner("Workloads"))
    rows = []
    for w in MEMORY_INTENSIVE:
        if hasattr(w, "footprint_lines"):
            rows.append([w.name, w.suite, w.footprint_lines, f"{w.write_frac:.2f}"])
        else:  # MIX workloads compose several specs
            members = ", ".join(sorted({s.name for s in w.specs}))
            rows.append([w.name, w.suite, "-", members])
    print(format_table(["name", "suite", "footprint (lines)", "write frac / members"], rows))
    print(f"\n(+ {len(ALL_64) - len(MEMORY_INTENSIVE)} low-MPKI fillers in 'all64')")
    return 0


def cmd_run(args) -> int:
    config = _config(args)
    result = simulate(args.workload, args.design, config)
    base = simulate(args.workload, "uncompressed", config)
    speedup = compare(args.workload, args.design, config)
    rel = relative_energy(result, base)
    print(banner(f"{args.workload} on {args.design}"))
    rows = [
        ["weighted speedup", f"{speedup:.3f}"],
        ["cycles (max core)", result.elapsed_cycles],
        ["DRAM accesses", result.total_dram_accesses],
        ["L3 hit rate", f"{result.l3_hit_rate:.1%}"],
        ["energy (norm.)", f"{rel.energy:.3f}"],
        ["EDP (norm.)", f"{rel.edp:.3f}"],
    ]
    if result.llp_accuracy is not None:
        rows.append(["LLP accuracy", f"{result.llp_accuracy:.1%}"])
    if result.metadata_hit_rate is not None:
        rows.append(["metadata-cache hit", f"{result.metadata_hit_rate:.1%}"])
    for key, value in sorted(result.extras.items()):
        rows.append([key, f"{value:.0f}" if value >= 1 else f"{value:.3f}"])
    print(format_table(["metric", "value"], rows))
    print("\nDRAM traffic by category:")
    for category, count in sorted(
        result.bandwidth_by_category().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {category.value:<20} {count}")
    return 0


def cmd_stats(args) -> int:
    config = _config(args)
    result = simulate(args.workload, args.design, config)
    if args.json:
        print(json.dumps(result.metrics, indent=2, sort_keys=True))
        return 0
    print(banner(f"Telemetry: {args.workload} on {args.design}"))
    print(format_metrics(result.metrics))
    return 0


def cmd_compare(args) -> int:
    config = _config(args)
    print(banner(f"All designs on {args.workload} (speedup vs uncompressed)"))
    rows = []
    for design in DESIGNS:
        if design == "uncompressed":
            continue
        rows.append([design, f"{compare(args.workload, design, config):.3f}"])
    print(format_table(["design", "speedup"], rows))
    return 0


def cmd_suite(args) -> int:
    from repro.sim.results import geometric_mean

    config = _config(args)
    workloads = SUITES[args.suite]
    values = {}
    for workload in workloads:
        values[workload.name] = compare(workload, args.design, config)
    print(banner(f"{args.design} on suite '{args.suite}'"))
    print(
        format_table(
            ["workload", "speedup"],
            [[n, f"{v:.3f}"] for n, v in values.items()],
        )
    )
    print(f"\ngeomean: {geometric_mean(values.values()):.3f}")
    return 0


def cmd_sweep(args) -> int:
    from repro.sim.parallel import sweep_with_report
    from repro.sim.results import geometric_mean

    config = _config(args)
    workloads = SUITES[args.suite]
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    unknown = sorted(set(designs) - set(DESIGNS))
    if unknown:
        print(f"unknown designs: {', '.join(unknown)}; choose from {DESIGNS}")
        return 2
    matrix, report = sweep_with_report(workloads, designs, config, jobs=args.jobs)
    print(banner(f"Sweep over '{args.suite}' (speedup vs uncompressed)"))
    print(
        format_table(
            ["workload", *designs],
            [
                [name, *(f"{row[d]:.3f}" for d in designs)]
                for name, row in matrix.items()
            ],
        )
    )
    geomeans = [
        f"{geometric_mean(row[d] for row in matrix.values()):.3f}" for d in designs
    ]
    print(format_table(["", *designs], [["geomean", *geomeans]]))
    counts = report.counts()
    print(
        f"\n{counts['jobs']} runs with --jobs {report.jobs_used}: "
        f"{counts['executed']} executed, {counts['disk_hits']} from disk, "
        f"{counts['memory_hits']} from memory "
        f"({report.wall_seconds:.2f}s wall)"
    )
    if report.seconds:
        print(
            f"per-run wall time: min {min(report.seconds):.3f}s / "
            f"mean {sum(report.seconds) / len(report.seconds):.3f}s / "
            f"max {max(report.seconds):.3f}s"
        )
    if args.dump_metrics:
        payload = json.dumps(report.metrics_matrix(), indent=2, sort_keys=True)
        if args.dump_metrics == "-":
            print(payload)
        else:
            with open(args.dump_metrics, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(
                f"wrote metrics for {len(report.results)} runs "
                f"to {args.dump_metrics}"
            )
    return 0


def cmd_cache(args) -> int:
    cache = runner.disk_cache() or DiskCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    stats = cache.stats()
    print(banner("Simulation result cache"))
    print(format_table(["key", "value"], [[k, str(v)] for k, v in stats.items()]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PTMC (HPCA 2019) reproduction — simulation driver",
    )
    parser.add_argument("--ops", type=int, default=4000, help="measured ops per core")
    parser.add_argument("--warmup", type=int, default=6000, help="warmup ops per core")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-ptmc/sim)",
    )
    parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="do not read or write the persistent result cache",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and designs")

    run = sub.add_parser("run", help="simulate one (workload, design) pair")
    run.add_argument("workload")
    run.add_argument("design", choices=DESIGNS)

    stats = sub.add_parser(
        "stats", help="full telemetry-registry dump for one simulation"
    )
    stats.add_argument("workload")
    stats.add_argument("design", choices=DESIGNS)
    stats.add_argument(
        "--json", action="store_true", help="emit the metrics mapping as JSON"
    )

    cmp_ = sub.add_parser("compare", help="all designs on one workload")
    cmp_.add_argument("workload")

    suite = sub.add_parser("suite", help="one design across a suite")
    suite.add_argument("suite", choices=sorted(SUITES))
    suite.add_argument("design", choices=DESIGNS)

    sweep = sub.add_parser(
        "sweep", help="speedup matrix over a suite (parallel with --jobs)"
    )
    sweep.add_argument("suite", choices=sorted(SUITES))
    sweep.add_argument(
        "--designs",
        default="static_ptmc,dynamic_ptmc,ideal",
        help="comma-separated design list (default: %(default)s)",
    )
    sweep.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (default: serial in-process)",
    )
    sweep.add_argument(
        "--dump-metrics",
        metavar="PATH",
        default=None,
        help="write per-run telemetry as JSON to PATH ('-' for stdout)",
    )

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=["stats", "clear"])
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not args.no_disk_cache:
        runner.configure_disk_cache(args.cache_dir)
    if getattr(args, "workload", None) is not None:
        get_workload(args.workload)  # fail fast with the roster listing
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "stats": cmd_stats,
        "compare": cmd_compare,
        "suite": cmd_suite,
        "sweep": cmd_sweep,
        "cache": cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
