"""Command-line interface: run experiments without writing Python.

Examples::

    python -m repro list                       # workloads and designs
    python -m repro run lbm06 dynamic_ptmc     # one simulation + report
    python -m repro compare lbm06              # all designs on one workload
    python -m repro suite gap static_ptmc      # geomean over a suite
    python -m repro sweep spec06 --jobs 4      # parallel speedup matrix
    python -m repro timeline lbm06 static_ptmc # phase-resolved sparklines
    python -m repro cache stats                # on-disk result cache

    python -m repro trace ingest app.trace     # content-address a real trace
    python -m repro trace run <hash> -j 4      # replay it across designs

    python -m repro serve                      # job-queue daemon
    python -m repro worker --url http://h:8035 # drain a remote daemon's queue
    python -m repro submit lbm06 dynamic_ptmc  # enqueue over HTTP
    python -m repro wait <job-id>              # block until done
    python -m repro result <job-id>            # fetch the SimResult

Results are cached on disk (content-addressed, ``~/.cache/repro-ptmc``
or ``$REPRO_CACHE_DIR``), so repeat invocations are near-instant; pass
``--no-disk-cache`` to opt out or ``repro cache clear`` to start fresh.
The service shares that store: a submitted job whose identity is
already cached completes instantly.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time

from repro.analysis import banner, format_metrics, format_table
from repro.energy import relative_energy
from repro.sim import runner
from repro.sim.config import bench_config
from repro.sim.diskcache import DiskCache
from repro.sim.runner import compare, simulate
from repro.sim.system import DESIGNS
from repro.telemetry import StatRegistry
from repro.workloads import ALL_64, MEMORY_INTENSIVE, SUITE_BY_NAME, get_workload

#: Suite registry shared with scripts (``repro.workloads.SUITE_BY_NAME``).
SUITES = SUITE_BY_NAME


#: Headline paths ``repro timeline`` plots when ``--metrics`` is omitted
#: (filtered to what the run actually registered, so design-specific
#: paths can be listed here safely).
DEFAULT_TIMELINE_METRICS = (
    "dram.reads",
    "dram.writes",
    "llc.hits",
    "llc.misses",
    "dram.row_hits",
)


def _config(args) -> "SimConfig":
    return bench_config(
        ops_per_core=args.ops,
        warmup_ops=args.warmup,
        llc_policy=getattr(args, "llc_policy", None),
    )


def _obs(args) -> "ObsConfig | None":
    """The global ``--sample-interval`` as an ObsConfig (None when off)."""
    from repro.obs.sampler import ObsConfig

    interval = getattr(args, "sample_interval", 0) or 0
    if interval <= 0:
        return None
    return ObsConfig(sample_interval=interval)


def cmd_list(args) -> int:
    print(banner("Designs"))
    for design in DESIGNS:
        print(f"  {design}")
    print(banner("Workloads"))
    rows = []
    for w in MEMORY_INTENSIVE:
        if hasattr(w, "footprint_lines"):
            rows.append([w.name, w.suite, w.footprint_lines, f"{w.write_frac:.2f}"])
        else:  # MIX workloads compose several specs
            members = ", ".join(sorted({s.name for s in w.specs}))
            rows.append([w.name, w.suite, "-", members])
    print(format_table(["name", "suite", "footprint (lines)", "write frac / members"], rows))
    print(f"\n(+ {len(ALL_64) - len(MEMORY_INTENSIVE)} low-MPKI fillers in 'all64')")
    return 0


def cmd_policies(args) -> int:
    from repro.cache.replacement import DEFAULT_POLICY, POLICIES

    print(banner("LLC replacement policies"))
    rows = [
        [name, cls.__name__, cls.description + (" *" if name == DEFAULT_POLICY else "")]
        for name, cls in sorted(POLICIES.items())
    ]
    print(format_table(["name", "class", "description"], rows))
    print(
        "\n(* default)  Select with --llc-policy on run/stats/compare/"
        "suite/sweep/submit, or sweep the whole space with "
        "scripts/policy_search.py."
    )
    return 0


def cmd_run(args) -> int:
    config = _config(args)
    result = simulate(args.workload, args.design, config, obs=_obs(args))
    base = simulate(args.workload, "uncompressed", config)
    speedup = compare(args.workload, args.design, config)
    rel = relative_energy(result, base)
    print(banner(f"{args.workload} on {args.design}"))
    rows = [
        ["weighted speedup", f"{speedup:.3f}"],
        ["cycles (max core)", result.elapsed_cycles],
        ["DRAM accesses", result.total_dram_accesses],
        ["L3 hit rate", f"{result.l3_hit_rate:.1%}"],
        ["energy (norm.)", f"{rel.energy:.3f}"],
        ["EDP (norm.)", f"{rel.edp:.3f}"],
    ]
    if result.llp_accuracy is not None:
        rows.append(["LLP accuracy", f"{result.llp_accuracy:.1%}"])
    if result.metadata_hit_rate is not None:
        rows.append(["metadata-cache hit", f"{result.metadata_hit_rate:.1%}"])
    for key, value in sorted(result.extras.items()):
        rows.append([key, f"{value:.0f}" if value >= 1 else f"{value:.3f}"])
    print(format_table(["metric", "value"], rows))
    print("\nDRAM traffic by category:")
    for category, count in sorted(
        result.bandwidth_by_category().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {category.value:<20} {count}")
    return 0


def _runner_metrics() -> dict:
    """Process-wide runner counters as ``runner.*`` telemetry paths."""
    registry = StatRegistry()
    runner.register_stats(registry.scope("runner"))
    return registry.delta()


def cmd_stats(args) -> int:
    config = _config(args)
    result = simulate(args.workload, args.design, config, obs=_obs(args))
    runner_metrics = _runner_metrics()
    merged = {**result.metrics, **runner_metrics}
    if args.metrics:
        wanted = [m.strip() for m in args.metrics.split(",") if m.strip()]
        missing = sorted(set(wanted) - set(merged))
        if missing:
            print(
                f"metrics not present in this result: {', '.join(missing)}\n"
                "(cached results from older runs may lack newer paths — "
                "re-run with --no-disk-cache or 'repro cache clear'; "
                f"'repro stats {args.workload} {args.design} --json' lists "
                "every available path)"
            )
            return 2
        merged = {m: merged[m] for m in wanted}
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
        return 0
    if args.metrics:
        print(banner(f"Telemetry: {args.workload} on {args.design}"))
        print(format_metrics(merged))
        return 0
    print(banner(f"Telemetry: {args.workload} on {args.design}"))
    print(format_metrics(result.metrics))
    print(banner("Runner (this process)"))
    print(format_metrics(runner_metrics))
    return 0


def cmd_compare(args) -> int:
    config = _config(args)
    print(banner(f"All designs on {args.workload} (speedup vs uncompressed)"))
    rows = []
    for design in DESIGNS:
        if design == "uncompressed":
            continue
        rows.append([design, f"{compare(args.workload, design, config):.3f}"])
    print(format_table(["design", "speedup"], rows))
    return 0


def cmd_suite(args) -> int:
    from repro.sim.results import geometric_mean

    config = _config(args)
    workloads = SUITES[args.suite]
    values = {}
    for workload in workloads:
        values[workload.name] = compare(workload, args.design, config)
    print(banner(f"{args.design} on suite '{args.suite}'"))
    print(
        format_table(
            ["workload", "speedup"],
            [[n, f"{v:.3f}"] for n, v in values.items()],
        )
    )
    print(f"\ngeomean: {geometric_mean(values.values()):.3f}")
    return 0


def cmd_sweep(args) -> int:
    from repro.sim.parallel import sweep_with_report
    from repro.sim.results import geometric_mean

    config = _config(args)
    workloads = SUITES[args.suite]
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    unknown = sorted(set(designs) - set(DESIGNS))
    if unknown:
        print(f"unknown designs: {', '.join(unknown)}; choose from {DESIGNS}")
        return 2
    matrix, report = sweep_with_report(workloads, designs, config, jobs=args.jobs)
    print(banner(f"Sweep over '{args.suite}' (speedup vs uncompressed)"))
    print(
        format_table(
            ["workload", *designs],
            [
                [name, *(f"{row[d]:.3f}" for d in designs)]
                for name, row in matrix.items()
            ],
        )
    )
    geomeans = [
        f"{geometric_mean(row[d] for row in matrix.values()):.3f}" for d in designs
    ]
    print(format_table(["", *designs], [["geomean", *geomeans]]))
    counts = report.counts()
    print(
        f"\n{counts['jobs']} runs with --jobs {report.jobs_used}: "
        f"{counts['executed']} executed, {counts['disk_hits']} from disk, "
        f"{counts['memory_hits']} from memory "
        f"({report.wall_seconds:.2f}s wall)"
    )
    if report.seconds:
        print(
            f"per-run wall time: min {min(report.seconds):.3f}s / "
            f"mean {sum(report.seconds) / len(report.seconds):.3f}s / "
            f"max {max(report.seconds):.3f}s"
        )
    if args.dump_metrics:
        payload = json.dumps(report.metrics_matrix(), indent=2, sort_keys=True)
        if args.dump_metrics == "-":
            print(payload)
        else:
            with open(args.dump_metrics, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(
                f"wrote metrics for {len(report.results)} runs "
                f"to {args.dump_metrics}"
            )
    return 0


def cmd_timeline(args) -> int:
    from repro.analysis.timeline import format_timeline
    from repro.obs.sampler import ObsConfig

    config = _config(args)
    obs = ObsConfig(sample_interval=args.interval)
    result = simulate(args.workload, args.design, config, obs=obs)
    timeseries = result.timeseries
    if timeseries is None or not len(timeseries):
        print("no samples collected")
        return 1
    if args.json:
        print(json.dumps(timeseries.to_json_dict(), indent=2, sort_keys=True))
        return 0
    available = sorted(timeseries.paths())
    if args.metrics:
        paths = [m.strip() for m in args.metrics.split(",") if m.strip()]
        missing = sorted(set(paths) - set(available))
        if missing:
            print(
                f"series not present in this result: {', '.join(missing)}\n"
                "(cached results from older runs may lack newer series — "
                "re-run with --no-disk-cache or 'repro cache clear'; "
                f"available: {', '.join(available)})"
            )
            return 2
    else:
        paths = [p for p in DEFAULT_TIMELINE_METRICS if p in set(available)]
    if not paths:
        print(
            "none of the default timeline metrics are present in this "
            "result's time series; pass --metrics with one of: "
            + ", ".join(available)
        )
        return 2
    print(banner(f"Timeline: {args.workload} on {args.design}"))
    try:
        print(format_timeline(timeseries, paths, show_warmup=not args.no_warmup))
    except (KeyError, ValueError) as exc:
        print(f"cannot render timeline: {exc}; see 'repro stats {args.workload} "
              f"{args.design} --json' for the full path list")
        return 2
    return 0


def cmd_cache(args) -> int:
    cache = runner.disk_cache() or DiskCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    if args.action == "prune":
        if args.older_than is None:
            print("cache prune requires --older-than <days>")
            return 2
        removed = cache.prune(args.older_than * 86400.0)
        print(
            f"pruned {removed} cached results older than {args.older_than:g} "
            f"days from {cache.root}"
        )
        return 0
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True, default=str))
        return 0
    print(banner("Simulation result cache"))
    print(format_table(["key", "value"], [[k, str(v)] for k, v in stats.items()]))
    return 0


# -- trace verbs -----------------------------------------------------------


def _trace_info_rows(info: dict) -> list:
    """Sidecar dict -> [key, value] table rows (reuse histogram last)."""
    rows = [
        ["hash", info["hash"]],
        ["name", info["name"] or "-"],
        ["records", str(info["records"])],
        ["reads / writes", f"{info['reads']} / {info['writes']}"],
        ["write fraction", f"{info['write_frac']:.3f}"],
        ["unique lines", str(info["unique_lines"])],
        ["footprint", f"{info['footprint_bytes'] / 1024:.1f} KiB"],
        ["parse errors", str(info["parse_errors"])],
    ]
    reuse = info.get("reuse_distance") or {}
    if reuse:
        ordered = sorted(
            reuse.items(), key=lambda kv: (kv[0] == "cold", int(kv[0]) if kv[0] != "cold" else 0)
        )
        rows.append(
            ["reuse distance", "  ".join(f"{k}:{v}" for k, v in ordered)]
        )
    return rows


def cmd_trace_ingest(args) -> int:
    from repro.traces.formats import TraceParseError
    from repro.traces.store import TraceStoreError, trace_store

    mode = "lenient" if args.lenient else "strict"
    if args.url:
        from pathlib import Path

        client = _client(args)
        data = Path(args.path).read_bytes()
        trace = client.upload_trace(
            data, name=args.name or Path(args.path).name, fmt=args.format, mode=mode
        )
        created, digest, records = trace["created"], trace["hash"], trace["records"]
        errors = trace["parse_errors"]
    else:
        store = trace_store()
        try:
            info, created = store.ingest_path(
                args.path, name=args.name or "", fmt=args.format, mode=mode
            )
        except FileNotFoundError:
            print(f"no such trace file: {args.path}")
            return 2
        except (TraceParseError, TraceStoreError) as exc:
            print(f"ingest failed: {exc}")
            return 2
        digest, records, errors = info.hash, info.records, info.parse_errors
    verb = "ingested" if created else "already stored (deduplicated)"
    print(f"{verb}: trace:{digest[:12]} ({records} records"
          + (f", {errors} lines skipped" if errors else "") + ")")
    print(f"full hash: {digest}")
    print(f"run it with: repro trace run {digest[:12]}")
    return 0


def cmd_trace_list(args) -> int:
    if args.url:
        infos = _client(args).traces()
    else:
        from repro.traces.store import trace_store

        infos = [info.to_json_dict() for info in trace_store().list()]
    if args.json:
        print(json.dumps(infos, indent=2, sort_keys=True))
        return 0
    if not infos:
        print("no traces stored; add one with 'repro trace ingest <file>'")
        return 0
    rows = [
        [
            info["hash"][:12],
            info["name"] or "-",
            str(info["records"]),
            f"{info['write_frac']:.2f}",
            str(info["unique_lines"]),
            f"{info['footprint_bytes'] / 1024:.0f} KiB",
        ]
        for info in infos
    ]
    print(format_table(
        ["hash", "name", "records", "write frac", "unique lines", "footprint"], rows
    ))
    return 0


def cmd_trace_info(args) -> int:
    if args.url:
        from repro.service.client import ServiceError

        try:
            info = _client(args).trace_info(args.trace_hash)
        except ServiceError as exc:
            print(f"trace error: {exc}")
            return 2
    else:
        from repro.traces.store import TraceStoreError, trace_store

        try:
            info = trace_store().info(args.trace_hash).to_json_dict()
        except TraceStoreError as exc:
            print(f"trace error: {exc}")
            return 2
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(banner(f"Trace {info['hash'][:12]}"))
    print(format_table(["key", "value"], _trace_info_rows(info)))
    return 0


def cmd_trace_run(args) -> int:
    from repro.sim.parallel import sweep_with_report
    from repro.sim.results import geometric_mean
    from repro.traces.replay import trace_workload
    from repro.traces.store import TraceStoreError

    try:
        workload = trace_workload(
            args.trace_hash,
            limit=args.trace_limit,
            loop=not args.no_loop,
            seed=args.trace_seed,
            mean_gap=args.gap,
        )
    except TraceStoreError as exc:
        print(f"trace error: {exc}")
        return 2
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    unknown = sorted(set(designs) - set(DESIGNS))
    if unknown:
        print(f"unknown designs: {', '.join(unknown)}; choose from {DESIGNS}")
        return 2
    config = _config(args)
    matrix, report = sweep_with_report([workload], designs, config, jobs=args.jobs)
    row = matrix[workload.name]
    print(banner(f"{workload.name} (speedup vs uncompressed)"))
    print(format_table(
        ["design", "speedup"], [[d, f"{row[d]:.3f}"] for d in designs]
    ))
    if len(designs) > 1:
        print(f"\ngeomean: {geometric_mean(row[d] for d in designs):.3f}")
    counts = report.counts()
    trace_metrics = next(
        (
            result.metrics
            for result in report.results
            if "trace.replayed_records" in result.metrics
        ),
        {},
    )
    if trace_metrics:
        print(
            f"replayed {int(trace_metrics['trace.replayed_records'])} records "
            f"({int(trace_metrics['trace.synthesized_fills'])} synthesized fills, "
            f"{int(trace_metrics['trace.loops'])} loops) in the measured window"
        )
    print(
        f"{counts['jobs']} runs: {counts['executed']} executed, "
        f"{counts['disk_hits']} from disk, {counts['memory_hits']} from memory "
        f"({report.wall_seconds:.2f}s wall)"
    )
    return 0


def cmd_trace(args) -> int:
    handlers = {
        "ingest": cmd_trace_ingest,
        "list": cmd_trace_list,
        "info": cmd_trace_info,
        "run": cmd_trace_run,
    }
    return handlers[args.trace_command](args)


# -- service verbs ---------------------------------------------------------


def _client(args):
    from repro.service.client import ServiceClient

    return ServiceClient(args.url, token=getattr(args, "token", None))


def _job_row(job: dict) -> list:
    age = max(0.0, time.time() - job["created_at"])
    return [
        job["id"][:12],
        job["workload"],
        job["design"],
        job["state"],
        str(job["priority"]),
        f"{job['attempts']}/{job['max_attempts']}",
        f"{age:.0f}s",
        job.get("source") or "-",
    ]


_JOB_COLUMNS = ["id", "workload", "design", "state", "prio", "attempts", "age", "source"]


def cmd_serve(args) -> int:
    from repro.service.daemon import ServiceDaemon

    if args.no_disk_cache:
        print("repro serve needs the disk cache (it is the result store); "
              "drop --no-disk-cache")
        return 2
    daemon = ServiceDaemon(
        db_path=args.db,
        cache_dir=args.cache_dir,
        trace_dir=args.trace_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        default_timeout=args.job_timeout,
        max_attempts=args.max_attempts,
        drain_seconds=args.drain_seconds,
        log_stream=None if args.quiet else sys.stderr,
        token=args.token,
        lease_seconds=args.lease_seconds,
        reaper_interval=args.reaper_interval,
        max_queued=args.max_queued,
        rate_limit=args.rate_limit,
    )

    def _stop(signum, frame):
        daemon.request_stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    workers = "remote-only" if args.remote_only else args.workers
    print(
        f"repro service listening on {daemon.url} "
        f"(db={daemon.store.path}, cache={daemon.cache.root}, "
        f"workers={workers})",
        flush=True,
    )
    if args.remote_only:
        # Queue + reaper + HTTP only: execution belongs to remote
        # ``repro worker`` processes claiming over the API.
        daemon.start(run_scheduler=False)
        while not daemon.scheduler.stopping:
            time.sleep(0.2)
        daemon.stop()
    else:
        daemon.run()
    print("repro service drained cleanly", flush=True)
    return 0


def cmd_worker(args) -> int:
    from repro.obs.logging import StructuredLog
    from repro.service.worker import RemoteWorker

    if args.no_disk_cache:
        print("repro worker needs the disk cache (results are written "
              "through it before upload); drop --no-disk-cache")
        return 2
    worker = RemoteWorker(
        url=args.url,
        worker_id=args.worker_id,
        concurrency=args.workers,
        lease_seconds=args.lease_seconds,
        poll_interval=args.poll,
        drain_seconds=args.drain_seconds,
        token=args.token,
        max_jobs=args.max_jobs,
        log=StructuredLog(stream=None if args.quiet else sys.stderr),
    )

    def _stop(signum, frame):
        worker.request_stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(
        f"repro worker {worker.worker_id} draining {worker.client.url} "
        f"(concurrency={worker.concurrency}, lease={worker.lease_seconds:g}s)",
        flush=True,
    )
    stats = worker.run()
    print(
        f"repro worker exiting: {stats.completed} completed, "
        f"{stats.failed} failed, {stats.lease_lost} leases lost",
        flush=True,
    )
    return 0 if stats.upload_errors == 0 else 1


def cmd_submit(args) -> int:
    client = _client(args)
    job = client.submit(
        args.workload,
        args.design,
        ops=args.ops,
        warmup=args.warmup,
        llc_policy=args.llc_policy,
        trace_limit=args.trace_limit,
        trace_loop=False if args.no_loop else None,
        trace_seed=args.trace_seed,
        priority=args.priority,
        max_attempts=args.max_attempts,
        timeout=args.job_timeout,
    )
    verb = "submitted" if job["created"] else "joined"
    print(f"{verb} job {job['id']} ({job['workload']} on {job['design']}): "
          f"{job['state']}" + (f" [{job['source']}]" if job.get("source") else ""))
    if args.wait:
        return _wait_and_report(client, job["id"], args.timeout, args.poll)
    return 0


def cmd_jobs(args) -> int:
    jobs = _client(args).jobs(state=args.state, limit=args.limit)
    if not jobs:
        print("no jobs")
        return 0
    print(format_table(_JOB_COLUMNS, [_job_row(job) for job in jobs]))
    return 0


def _wait_and_report(client, job_id: str, timeout, poll) -> int:
    from repro.service.client import JobFailed, ServiceError

    try:
        job = client.wait(job_id, timeout=timeout, poll=poll)
    except JobFailed as exc:
        print(f"job {exc.job['id']} ended {exc.job['state']}: {exc.job.get('error')}")
        return 1
    except ServiceError as exc:
        print(str(exc))
        return 1
    result = client.result(job["id"])
    print(f"job {job['id']} done [{job.get('source')}]")
    rows = [
        ["cycles (max core)", result.elapsed_cycles],
        ["DRAM accesses", result.total_dram_accesses],
        ["L3 hit rate", f"{result.l3_hit_rate:.1%}"],
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def cmd_wait(args) -> int:
    return _wait_and_report(_client(args), args.job_id, args.timeout, args.poll)


def cmd_result(args) -> int:
    client = _client(args)
    result = client.result(args.job_id)
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
        return 0
    print(banner(f"{result.workload} on {result.design}"))
    print(format_metrics(result.metrics))
    return 0


def cmd_cancel(args) -> int:
    job = _client(args).cancel(args.job_id)
    print(f"cancelled job {job['id']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PTMC (HPCA 2019) reproduction — simulation driver",
    )
    from repro.cache.replacement import POLICIES

    parser.add_argument("--ops", type=int, default=4000, help="measured ops per core")
    parser.add_argument("--warmup", type=int, default=6000, help="warmup ops per core")
    parser.add_argument(
        "--llc-policy",
        choices=sorted(POLICIES),
        default=None,
        help="LLC replacement policy (default: the hierarchy's, i.e. lru; "
        "see 'repro policies')",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-ptmc/sim)",
    )
    parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="trace store location (default: $REPRO_TRACE_DIR or "
        "~/.cache/repro-ptmc/traces)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of this invocation to PATH "
        "(open in https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--sample-interval",
        type=int,
        default=0,
        metavar="N",
        help="on run/stats: sample telemetry every N line-accesses into the "
        "result's time series (0 = off; 'repro timeline' has its own flag)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and designs")

    sub.add_parser("policies", help="list LLC replacement policies")

    run = sub.add_parser("run", help="simulate one (workload, design) pair")
    run.add_argument("workload")
    run.add_argument("design", choices=DESIGNS)

    stats = sub.add_parser(
        "stats", help="full telemetry-registry dump for one simulation"
    )
    stats.add_argument("workload")
    stats.add_argument("design", choices=DESIGNS)
    stats.add_argument(
        "--json", action="store_true", help="emit the metrics mapping as JSON"
    )
    stats.add_argument(
        "--metrics",
        default=None,
        help="comma-separated registry paths to show (default: everything)",
    )

    cmp_ = sub.add_parser("compare", help="all designs on one workload")
    cmp_.add_argument("workload")

    suite = sub.add_parser("suite", help="one design across a suite")
    suite.add_argument("suite", choices=sorted(SUITES))
    suite.add_argument("design", choices=DESIGNS)

    sweep = sub.add_parser(
        "sweep", help="speedup matrix over a suite (parallel with --jobs)"
    )
    sweep.add_argument("suite", choices=sorted(SUITES))
    sweep.add_argument(
        "--designs",
        default="static_ptmc,dynamic_ptmc,ideal",
        help="comma-separated design list (default: %(default)s)",
    )
    sweep.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (default: serial in-process)",
    )
    sweep.add_argument(
        "--dump-metrics",
        metavar="PATH",
        default=None,
        help="write per-run telemetry as JSON to PATH ('-' for stdout)",
    )

    timeline = sub.add_parser(
        "timeline", help="phase-resolved telemetry sparklines for one run"
    )
    timeline.add_argument("workload")
    timeline.add_argument("design", choices=DESIGNS)
    timeline.add_argument(
        "--interval",
        type=int,
        default=2000,
        metavar="N",
        help="line-accesses per sample (default: %(default)s)",
    )
    timeline.add_argument(
        "--metrics",
        default=None,
        help="comma-separated registry paths to plot (default: headline "
        "dram/llc counters present in the run)",
    )
    timeline.add_argument(
        "--no-warmup", action="store_true", help="hide the warmup-phase samples"
    )
    timeline.add_argument(
        "--json", action="store_true", help="emit the raw time series as JSON"
    )

    cache = sub.add_parser("cache", help="inspect, clear, or prune the result cache")
    cache.add_argument("action", choices=["stats", "clear", "prune"])
    cache.add_argument(
        "--older-than",
        type=float,
        metavar="DAYS",
        default=None,
        help="prune: delete entries last written more than DAYS days ago",
    )
    cache.add_argument(
        "--json", action="store_true", help="stats: emit the summary as JSON"
    )

    trace = sub.add_parser(
        "trace", help="ingest, inspect, and replay memory-access traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_ingest = trace_sub.add_parser(
        "ingest", help="parse and store a trace file (content-addressed)"
    )
    trace_ingest.add_argument("path", help="trace file (text, binary, or gzip)")
    trace_ingest.add_argument(
        "--name", default=None, help="display name (default: the file name locally)"
    )
    trace_ingest.add_argument(
        "--format",
        choices=["auto", "text", "binary"],
        default="auto",
        help="input format (default: sniffed)",
    )
    trace_ingest.add_argument(
        "--lenient",
        action="store_true",
        help="skip malformed lines (counted) instead of failing on the first",
    )
    trace_ingest.add_argument(
        "--url",
        default=None,
        help="upload to a running daemon (POST /traces) instead of the "
        "local store",
    )

    trace_list = trace_sub.add_parser("list", help="list stored traces")
    trace_list.add_argument("--json", action="store_true")
    trace_list.add_argument(
        "--url", default=None, help="list a running daemon's traces instead"
    )

    trace_info = trace_sub.add_parser(
        "info", help="one trace's characterization (hash prefix ok)"
    )
    trace_info.add_argument("trace_hash", help="content hash or unique prefix")
    trace_info.add_argument("--json", action="store_true")
    trace_info.add_argument(
        "--url", default=None, help="ask a running daemon instead"
    )

    trace_run = trace_sub.add_parser(
        "run", help="replay a stored trace across designs (speedup table)"
    )
    trace_run.add_argument("trace_hash", help="content hash or unique prefix")
    trace_run.add_argument(
        "--designs",
        default="static_ptmc,dynamic_ptmc,ideal",
        help="comma-separated design list (default: %(default)s)",
    )
    trace_run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (default: serial in-process)",
    )
    trace_run.add_argument(
        "--trace-limit",
        type=int,
        default=0,
        metavar="N",
        help="replay only the first N records (0 = all)",
    )
    trace_run.add_argument(
        "--no-loop",
        action="store_true",
        help="stop when the trace ends instead of looping to fill the run",
    )
    trace_run.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="seed for synthesized write data and inter-access gaps",
    )
    trace_run.add_argument(
        "--gap",
        type=int,
        default=6,
        metavar="CYCLES",
        help="mean synthesized inter-access gap (default: %(default)s)",
    )

    from repro.service.client import default_url
    from repro.service.jobstore import default_db_path

    def _service_args(p, waitable: bool = False) -> None:
        p.add_argument(
            "--url",
            default=None,
            help=f"service address (default: $REPRO_SERVICE_URL or {default_url()})",
        )
        p.add_argument(
            "--token",
            default=None,
            help="bearer token for an auth-enabled daemon "
            "(default: $REPRO_SERVICE_TOKEN)",
        )
        if waitable:
            p.add_argument(
                "--timeout",
                type=float,
                default=None,
                help="give up waiting after this many seconds",
            )
            p.add_argument(
                "--poll",
                type=float,
                default=0.2,
                help="poll interval while waiting (seconds)",
            )

    serve = sub.add_parser("serve", help="run the job-queue service daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8035, help="listen port (0 picks a free one)"
    )
    serve.add_argument(
        "--db",
        default=None,
        help=f"job database (default: $REPRO_SERVICE_DB or {default_db_path()})",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="simulation worker processes"
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job deadline in seconds (default: none)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="default bounded retries per job",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=30.0,
        help="grace period for in-flight jobs on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the structured JSON event log (stderr by default)",
    )
    serve.add_argument(
        "--token",
        default=None,
        help="bearer token required on mutating requests "
        "(default: $REPRO_SERVICE_TOKEN; unset = open)",
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="work-lease duration for claimed jobs; a worker that stops "
        "heartbeating loses its jobs after this long",
    )
    serve.add_argument(
        "--reaper-interval",
        type=float,
        default=1.0,
        help="how often the daemon scans for expired leases (seconds)",
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=10_000,
        help="reject new submissions (429) beyond this queue depth "
        "(0 = unbounded)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        help="per-client requests/second ceiling (token bucket; 0 = off)",
    )
    serve.add_argument(
        "--remote-only",
        action="store_true",
        help="run no local workers: queue, reaper, and HTTP only "
        "(execution is left to 'repro worker' processes)",
    )

    worker = sub.add_parser(
        "worker", help="drain a remote daemon's queue on this machine"
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable identity for leases/telemetry (default: hostname:pid)",
    )
    worker.add_argument(
        "--workers", type=int, default=2, help="simulation worker processes"
    )
    worker.add_argument(
        "--lease-seconds",
        type=float,
        default=15.0,
        help="lease duration requested per claim (renewed at half-lease)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="idle poll interval when the queue is empty (seconds)",
    )
    worker.add_argument(
        "--drain-seconds",
        type=float,
        default=30.0,
        help="grace period for in-flight jobs on SIGTERM/SIGINT",
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after finishing this many jobs (default: run forever)",
    )
    worker.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the structured JSON event log (stderr by default)",
    )
    _service_args(worker)

    submit = sub.add_parser("submit", help="enqueue one job on the service")
    submit.add_argument("workload")
    submit.add_argument("design", choices=DESIGNS)
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--max-attempts", type=int, default=None)
    submit.add_argument(
        "--trace-limit",
        type=int,
        default=None,
        metavar="N",
        help="trace:<hash> workloads: replay only the first N records",
    )
    submit.add_argument(
        "--no-loop",
        action="store_true",
        help="trace:<hash> workloads: stop at trace end instead of looping",
    )
    submit.add_argument(
        "--trace-seed",
        type=int,
        default=None,
        help="trace:<hash> workloads: data/gap synthesis seed",
    )
    submit.add_argument(
        "--job-timeout", type=float, default=None, help="per-job deadline (seconds)"
    )
    submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    _service_args(submit, waitable=True)

    jobs = sub.add_parser("jobs", help="list service jobs")
    jobs.add_argument(
        "--state",
        choices=["queued", "running", "done", "failed", "cancelled"],
        default=None,
    )
    jobs.add_argument("--limit", type=int, default=50)
    _service_args(jobs)

    wait = sub.add_parser("wait", help="block until a job finishes")
    wait.add_argument("job_id")
    _service_args(wait, waitable=True)

    result = sub.add_parser("result", help="fetch a finished job's result")
    result.add_argument("job_id")
    result.add_argument("--json", action="store_true")
    _service_args(result)

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("job_id")
    _service_args(cancel)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not args.no_disk_cache:
        runner.configure_disk_cache(args.cache_dir)
    if args.trace_dir is not None:
        from repro.traces.store import configure_trace_store

        configure_trace_store(args.trace_dir)
    workload_arg = getattr(args, "workload", None)
    if workload_arg is not None and not workload_arg.startswith("trace:"):
        get_workload(workload_arg)  # fail fast with the roster listing
    tracer = None
    if args.trace_out:
        from repro.obs.tracing import Tracer, set_tracer

        tracer = set_tracer(Tracer(process_name=f"repro-{args.command}"))
    handlers = {
        "list": cmd_list,
        "policies": cmd_policies,
        "run": cmd_run,
        "stats": cmd_stats,
        "compare": cmd_compare,
        "suite": cmd_suite,
        "sweep": cmd_sweep,
        "timeline": cmd_timeline,
        "cache": cmd_cache,
        "trace": cmd_trace,
        "serve": cmd_serve,
        "worker": cmd_worker,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
        "wait": cmd_wait,
        "result": cmd_result,
        "cancel": cmd_cancel,
    }
    try:
        if args.command in ("submit", "jobs", "wait", "result", "cancel", "trace"):
            from repro.service.client import ServiceError

            try:
                return handlers[args.command](args)
            except ServiceError as exc:
                print(f"service error: {exc}")
                return 1
        return handlers[args.command](args)
    finally:
        if tracer is not None:
            from repro.obs.tracing import set_tracer

            events = tracer.write(args.trace_out)
            set_tracer(None)
            print(
                f"wrote {events} trace events (trace_id {tracer.trace_id}) to "
                f"{args.trace_out}; open in https://ui.perfetto.dev"
            )


if __name__ == "__main__":
    sys.exit(main())
