"""Hierarchical stat registry with snapshot/delta measurement windows.

One :class:`StatRegistry` serves a whole simulated system.  Components
never see the registry itself — they are handed a :class:`StatScope`
(a namespace like ``dram`` or ``ptmc.llp``) and register their stats
under it, so adding a counter is a one-line change in the component
that owns it::

    def register_stats(self, scope: StatScope) -> None:
        scope.counter("row_hits", lambda: self.stats.row_hits)

The simulator takes one :meth:`StatRegistry.snapshot` at the warmup
boundary and one :meth:`StatRegistry.delta` at the end of the run; the
delta maps every registered path to its measured-phase value (counters
as window deltas, gauges as final observations, ratios recomputed over
the window).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.stats import (
    Counter,
    Gauge,
    Histogram,
    MetricValue,
    RatioStat,
    Source,
    Stat,
)

#: One path segment: lowercase alphanumerics and underscores (``core.0``
#: style numeric segments included).
_SEGMENT = re.compile(r"^[a-z0-9_]+$")

#: A registry snapshot: raw stat readings keyed by path.  Opaque — only
#: :meth:`StatRegistry.delta` knows how to interpret the values.
Snapshot = Dict[str, Any]

#: A measured metrics mapping: path -> windowed value.
Metrics = Dict[str, MetricValue]


def _validate_path(path: str) -> str:
    segments = path.split(".")
    if not segments or not all(_SEGMENT.match(s) for s in segments):
        raise ValueError(
            f"invalid stat path {path!r}: dotted lowercase segments required"
        )
    return path


class StatScope:
    """A namespace view of a registry, handed to one component."""

    def __init__(self, registry: "StatRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = _validate_path(prefix)

    @property
    def prefix(self) -> str:
        return self._prefix

    def path(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def scope(self, name: str) -> "StatScope":
        """A nested namespace (``scope('llp')`` under ``ptmc`` -> ``ptmc.llp``)."""
        return StatScope(self._registry, self.path(name))

    def counter(
        self,
        name: str,
        source: Optional[Source] = None,
        windowed: bool = True,
        doc: str = "",
    ) -> Counter:
        return self._registry.register(
            self.path(name), Counter(source, windowed=windowed, doc=doc)
        )

    def gauge(self, name: str, source: Optional[Source] = None, doc: str = "") -> Gauge:
        return self._registry.register(self.path(name), Gauge(source, doc=doc))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        doc: str = "",
    ) -> Histogram:
        return self._registry.register(self.path(name), Histogram(buckets, doc=doc))

    def ratio(
        self,
        name: str,
        numerator: Counter,
        denominators: Sequence[Counter],
        default: float = 0.0,
        one_minus: bool = False,
        doc: str = "",
    ) -> RatioStat:
        return self._registry.register(
            self.path(name),
            RatioStat(numerator, denominators, default=default, one_minus=one_minus, doc=doc),
        )


class StatRegistry:
    """The system-wide stat tree: registration, snapshot, and delta."""

    def __init__(self) -> None:
        self._stats: Dict[str, Stat] = {}

    def scope(self, name: str) -> StatScope:
        """A top-level namespace for one component."""
        return StatScope(self, name)

    def register(self, path: str, stat: Stat):
        _validate_path(path)
        if path in self._stats:
            raise ValueError(f"stat {path!r} already registered")
        self._stats[path] = stat
        return stat

    def get(self, path: str) -> Stat:
        return self._stats[path]

    def paths(self) -> List[str]:
        """Every registered path, in registration order."""
        return list(self._stats)

    def __contains__(self, path: str) -> bool:
        return path in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def snapshot(self) -> Snapshot:
        """Raw readings of every stat, marking a window's start."""
        return {path: stat.read() for path, stat in self._stats.items()}

    def delta(self, base: Optional[Snapshot] = None) -> Metrics:
        """Measured values for the window starting at ``base``.

        ``base=None`` (or a path missing from ``base`` because the stat
        was registered later) measures from zero — the whole run.
        """
        base = base or {}
        return {
            path: stat.measured(base.get(path))
            for path, stat in self._stats.items()
        }


__all__ = ["Metrics", "Snapshot", "StatRegistry", "StatScope"]
