"""Primitive stat types: counters, gauges, and derived ratios.

Every simulation metric is one of three shapes:

- :class:`Counter` — a monotonically non-decreasing count (DRAM row hits,
  LLC misses, inversions).  Over a measurement window it reports the
  *delta* between the window's end and its start, which is how the
  simulator excludes warmup traffic from results.
- :class:`Gauge` — a point-in-time observation (LIT occupancy, the
  fraction of cores with compression enabled).  Windows do not apply;
  a gauge always reports its current value.
- :class:`RatioStat` — a quotient of counter deltas (hit rates, LLP
  accuracy), recomputed over the measurement window so warmup traffic
  cannot skew it.

Counters and gauges come in two flavours: *owned* (the stat holds the
value; bump it with :meth:`Counter.inc` / :meth:`Gauge.set`) and
*sourced* (the stat reads a component attribute through a zero-argument
callable).  Sourced stats keep hot paths free of telemetry overhead —
components keep doing ``self.hits += 1`` and the registry only reads the
attribute at snapshot/collect time.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

#: A metric value as reported over a measurement window.
MetricValue = Union[int, float]

#: Zero-argument reader backing a sourced stat.
Source = Callable[[], MetricValue]


class Stat:
    """Base class: something the registry can snapshot and window."""

    kind = "stat"

    def __init__(self, doc: str = "") -> None:
        self.doc = doc

    def read(self):
        """Raw current value (opaque; only meaningful to ``measured``)."""
        raise NotImplementedError

    def measured(self, base) -> MetricValue:
        """Value over the window starting at snapshot ``base`` (or None)."""
        raise NotImplementedError


class Counter(Stat):
    """A monotonically non-decreasing count with windowed-delta semantics.

    ``windowed=False`` opts out of delta semantics: the counter reports
    its whole-run value even across a snapshot boundary.  Components use
    it for counts whose historical meaning integrates over the entire
    run (e.g. the sampling policy's utility events, whose end state
    reflects warmup traffic too).
    """

    kind = "counter"

    def __init__(
        self,
        source: Optional[Source] = None,
        windowed: bool = True,
        doc: str = "",
    ) -> None:
        super().__init__(doc)
        self._source = source
        self._value = 0
        self.windowed = windowed

    def inc(self, amount: int = 1) -> None:
        """Bump an owned counter; sourced counters are read-only."""
        if self._source is not None:
            raise TypeError("sourced counters are read-only; update the source")
        if amount < 0:
            raise ValueError("counters only count up")
        self._value += amount

    def read(self) -> MetricValue:
        return self._source() if self._source is not None else self._value

    def measured(self, base) -> MetricValue:
        value = self.read()
        if not self.windowed or base is None:
            return value
        return value - base


class Gauge(Stat):
    """A point-in-time observation; windows do not apply."""

    kind = "gauge"

    def __init__(self, source: Optional[Source] = None, doc: str = "") -> None:
        super().__init__(doc)
        self._source = source
        self._value: MetricValue = 0

    def set(self, value: MetricValue) -> None:
        """Record an owned gauge's value; sourced gauges are read-only."""
        if self._source is not None:
            raise TypeError("sourced gauges are read-only; update the source")
        self._value = value

    def read(self) -> MetricValue:
        return self._source() if self._source is not None else self._value

    def measured(self, base) -> MetricValue:
        return self.read()


class Histogram(Stat):
    """Bucketed observations (latencies, depths) with cumulative counts.

    Prometheus-shaped: ``buckets`` are upper bounds (``le``), counts are
    cumulative per bucket with an implicit ``+Inf`` bucket, and the
    running ``sum``/``count`` ride along — exactly what the text
    exposition needs, with no windowing (Prometheus histograms are
    cumulative by design).  In the registry's JSON ``delta`` mapping a
    histogram reports its windowed observation *count*; the full
    distribution is only meaningful through
    :func:`repro.obs.prometheus.prometheus_exposition`.
    """

    kind = "histogram"

    #: Prometheus' default latency buckets (seconds).
    DEFAULT_BUCKETS = (
        0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    )

    def __init__(
        self, buckets: Optional[Sequence[float]] = None, doc: str = ""
    ) -> None:
        super().__init__(doc)
        bounds = tuple(sorted(buckets if buckets is not None else self.DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: MetricValue) -> None:
        """Record one observation into every bucket it fits."""
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self._bucket_counts[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> Tuple[Tuple[float, int], ...]:
        """``(le, cumulative count)`` pairs, excluding the ``+Inf`` bucket."""
        return tuple(zip(self.bounds, self._bucket_counts))

    def read(self):
        return (self._count, self._sum, tuple(self._bucket_counts))

    def measured(self, base) -> MetricValue:
        if base is None:
            return self._count
        return self._count - base[0]


class RatioStat(Stat):
    """``numerator / sum(denominators)`` over the measurement window.

    The component counters' own window semantics apply, so a ratio over
    unwindowed counters reports a whole-run quotient.  ``one_minus``
    reports the complement (the LLP's accuracy is one minus its
    misprediction rate); ``default`` is the value reported when the
    window's denominator is zero.
    """

    kind = "ratio"

    def __init__(
        self,
        numerator: Counter,
        denominators: Sequence[Counter],
        default: float = 0.0,
        one_minus: bool = False,
        doc: str = "",
    ) -> None:
        super().__init__(doc)
        if not denominators:
            raise ValueError("a ratio needs at least one denominator counter")
        self._numerator = numerator
        self._denominators = tuple(denominators)
        self._default = default
        self._one_minus = one_minus

    def read(self) -> Tuple[MetricValue, Tuple[MetricValue, ...]]:
        return (
            self._numerator.read(),
            tuple(d.read() for d in self._denominators),
        )

    def measured(self, base) -> float:
        if base is None:
            num_base, den_bases = None, (None,) * len(self._denominators)
        else:
            num_base, den_bases = base
        numerator = self._numerator.measured(num_base)
        denominator = sum(
            d.measured(b) for d, b in zip(self._denominators, den_bases)
        )
        if denominator <= 0:
            return self._default
        value = numerator / denominator
        return 1.0 - value if self._one_minus else value


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricValue",
    "RatioStat",
    "Source",
    "Stat",
]
