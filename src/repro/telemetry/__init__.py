"""Unified telemetry: one stats protocol across every simulated layer.

Components own bare attribute counters on their hot paths and expose
them by implementing ``register_stats(scope)``; the simulator wires all
of them into one :class:`StatRegistry` under namespaced paths
(``dram.row_hits``, ``llc.misses``, ``ptmc.llp.accuracy``) and measures
the post-warmup phase with a single ``snapshot()``/``delta()`` pair —
no per-component reset or delta code anywhere.
"""

from repro.telemetry.registry import Metrics, Snapshot, StatRegistry, StatScope
from repro.telemetry.stats import Counter, Gauge, Histogram, MetricValue, RatioStat, Stat

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricValue",
    "Metrics",
    "RatioStat",
    "Snapshot",
    "Stat",
    "StatRegistry",
    "StatScope",
]
