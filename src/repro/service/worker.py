"""Remote sweep worker: claims jobs over HTTP, executes, uploads results.

``repro worker`` runs one :class:`RemoteWorker` against a daemon's HTTP
API — the distributed counterpart of the daemon's in-process
:class:`~repro.service.scheduler.Scheduler`, built from the same
execution primitives (:func:`repro.sim.parallel.init_worker` /
:func:`repro.sim.parallel.run_job`).  Many workers on many machines can
drain one queue; the daemon's scheduler pool is just another worker.

Protocol, in claim order:

1. ``POST /jobs/claim`` leases the best queued job to this
   ``worker_id`` for ``lease_seconds``.
2. While the job executes on the local process pool the worker renews
   via ``POST /jobs/<id>/heartbeat`` (at half-lease cadence).  A 409
   means the lease was reaped — the attempt is *abandoned*: the local
   future is left to finish into the local disk cache, but nothing is
   uploaded and the slot is not double-counted.
3. ``PUT /jobs/<id>/result`` replicates the finished
   :class:`~repro.sim.results.SimResult` into the daemon's
   content-addressed cache and flips the job to ``done``; worker-side
   errors go to ``POST /jobs/<id>/fail`` (the daemon applies the same
   retry/backoff policy as for local failures).

Execution writes through the worker's *local* disk cache first
(:func:`repro.sim.parallel.init_worker` configures it in the pool), so
a worker that re-claims a previously computed identity answers from
disk instantly, and an upload lost to a crash costs one lease interval,
not the simulation.

If the worker dies mid-job (crash, SIGKILL, network partition), the
daemon's lease reaper re-queues its claims within one lease interval —
no job is ever lost to a dead worker.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.obs.logging import StructuredLog
from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import config_from_overrides, resolve_job_workload
from repro.sim import parallel, runner
from repro.traces.store import TraceStoreError


def default_worker_id() -> str:
    """``<hostname>:<pid>`` — unique enough per live worker process."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclasses.dataclass
class WorkerStats:
    """One worker process's counters (reported at exit and by tests)."""

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    invalid: int = 0
    lease_lost: int = 0
    upload_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class RemoteWorker:
    """Drains a remote daemon's queue through a local process pool."""

    def __init__(
        self,
        url: Optional[str] = None,
        worker_id: Optional[str] = None,
        concurrency: int = 1,
        lease_seconds: float = 15.0,
        poll_interval: float = 0.5,
        drain_seconds: float = 30.0,
        cache_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        token: Optional[str] = None,
        max_jobs: Optional[int] = None,
        log: Optional[StructuredLog] = None,
    ) -> None:
        self.client = ServiceClient(url, token=token)
        self.worker_id = worker_id or default_worker_id()
        self.concurrency = max(1, concurrency)
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.drain_seconds = drain_seconds
        if cache_dir is None and runner.disk_cache() is not None:
            cache_dir = str(runner.disk_cache().root)
        self.cache_dir = cache_dir
        if trace_dir is None:
            from repro.traces.store import trace_store

            trace_dir = str(trace_store().root)
        self.trace_dir = trace_dir
        #: stop after completing/failing this many jobs (None = forever)
        self.max_jobs = max_jobs
        self.stats = WorkerStats()
        self.log = log or StructuredLog()
        self._stop = threading.Event()
        self._pool: Optional[ProcessPoolExecutor] = None
        #: job id -> (job dict, future, next heartbeat time)
        self._inflight: Dict[str, Tuple[Dict[str, Any], Future, float]] = {}

    # -- control ---------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the loop to drain in-flight jobs and exit (signal-safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def _done_enough(self) -> bool:
        if self.max_jobs is None:
            return False
        return (self.stats.completed + self.stats.failed) >= self.max_jobs

    # -- main loop -------------------------------------------------------

    def run(self) -> WorkerStats:
        """Block, claiming and executing jobs until stopped; then drain."""
        self.log.event(
            "worker_started",
            worker_id=self.worker_id,
            url=self.client.url,
            concurrency=self.concurrency,
            lease_seconds=self.lease_seconds,
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.concurrency,
            initializer=parallel.init_worker,
            initargs=(self.cache_dir, self.trace_dir),
        )
        try:
            while not self._stop.is_set() and not self._done_enough():
                progressed = self._harvest()
                if not self._stop.is_set() and not self._done_enough():
                    progressed |= self._claim_more()
                self._heartbeat_inflight()
                if not progressed:
                    self._stop.wait(self.poll_interval)
            self._drain()
        finally:
            if self._pool is not None:
                # Join the pool only when it is quiescent — with futures
                # still running (abandoned drain or a crashed loop),
                # wait=True could block for a full job; with the pool
                # idle, wait=False races interpreter teardown against
                # the executor's feeder threads (spurious EBADF noise).
                self._pool.shutdown(
                    wait=not self._inflight, cancel_futures=True
                )
                self._pool = None
            self.log.event(
                "worker_stopped", worker_id=self.worker_id, **self.stats.as_dict()
            )
        return self.stats

    # -- claim -----------------------------------------------------------

    def _claim_more(self) -> bool:
        claimed = False
        while len(self._inflight) < self.concurrency:
            try:
                job = self.client.claim(self.worker_id, self.lease_seconds)
            except ServiceError as exc:
                # Unreachable/throttled daemon: back off one poll interval.
                self.log.event(
                    "worker_claim_error", worker_id=self.worker_id, error=str(exc)
                )
                if exc.retry_after:
                    self._stop.wait(min(exc.retry_after, 5.0))
                break
            if job is None:
                break
            claimed = True
            self.stats.claimed += 1
            if not self._start_job(job):
                continue
        return claimed

    def _start_job(self, job: Dict[str, Any]) -> bool:
        """Resolve and dispatch one claimed job; fail it upstream if bad."""
        try:
            workload = resolve_job_workload(job["workload"], job["config"])
            config = config_from_overrides(job["config"])
        except (KeyError, TypeError, ValueError, TraceStoreError) as exc:
            # Unresolvable *here* (e.g. a trace this host never ingested):
            # report upstream; the daemon's retry policy decides its fate.
            self.stats.invalid += 1
            self._report_failure(job["id"], f"worker cannot resolve job: {exc}")
            return False
        future = self._pool.submit(
            parallel.run_job, (workload, job["design"], config)
        )
        renew_at = time.time() + self.lease_seconds / 2
        self._inflight[job["id"]] = (job, future, renew_at)
        self.log.event(
            "worker_job_started",
            worker_id=self.worker_id,
            job_id=job["id"],
            workload=job["workload"],
            design=job["design"],
        )
        return True

    # -- heartbeat -------------------------------------------------------

    def _heartbeat_inflight(self) -> None:
        now = time.time()
        for job_id, (job, future, renew_at) in list(self._inflight.items()):
            if now < renew_at or future.done():
                continue
            try:
                self.client.heartbeat(job_id, self.worker_id, self.lease_seconds)
            except ServiceError as exc:
                if exc.status in (404, 409):
                    # Lease reaped (daemon presumed us dead): abandon the
                    # attempt — the future still finishes into the local
                    # disk cache, but nothing is uploaded for this id.
                    self.stats.lease_lost += 1
                    del self._inflight[job_id]
                    self.log.event(
                        "worker_lease_lost",
                        worker_id=self.worker_id,
                        job_id=job_id,
                    )
                    continue
                # Transient network error: keep the job, retry next pass.
                self.log.event(
                    "worker_heartbeat_error",
                    worker_id=self.worker_id,
                    job_id=job_id,
                    error=str(exc),
                )
            self._inflight[job_id] = (
                job, future, time.time() + self.lease_seconds / 2
            )

    # -- harvest / upload ------------------------------------------------

    def _harvest(self) -> bool:
        progressed = False
        for job_id, (job, future, renew_at) in list(self._inflight.items()):
            if not future.done():
                continue
            del self._inflight[job_id]
            progressed = True
            try:
                result, source, seconds = future.result()
            except Exception as exc:  # noqa: BLE001 — worker error is data
                self._report_failure(job_id, f"{type(exc).__name__}: {exc}")
                continue
            self._upload(job_id, result, source, seconds)
        return progressed

    def _upload(self, job_id: str, result, source: str, seconds: float) -> None:
        try:
            self.client.upload_result(
                job_id, self.worker_id, result, source=source
            )
        except ServiceError as exc:
            if exc.status == 409:
                # Reaped while we computed: the re-queued twin will be
                # served from some disk cache; nothing is lost.
                self.stats.lease_lost += 1
                self.log.event(
                    "worker_lease_lost", worker_id=self.worker_id, job_id=job_id
                )
            else:
                self.stats.upload_errors += 1
                self.log.event(
                    "worker_upload_error",
                    worker_id=self.worker_id,
                    job_id=job_id,
                    error=str(exc),
                )
            return
        self.stats.completed += 1
        self.log.event(
            "worker_job_completed",
            worker_id=self.worker_id,
            job_id=job_id,
            source=source,
            seconds=round(seconds, 6),
        )

    def _report_failure(self, job_id: str, error: str) -> None:
        self.stats.failed += 1
        try:
            self.client.fail_job(job_id, self.worker_id, error)
        except ServiceError as exc:
            self.log.event(
                "worker_fail_report_error",
                worker_id=self.worker_id,
                job_id=job_id,
                error=str(exc),
            )
        self.log.event(
            "worker_job_failed",
            worker_id=self.worker_id,
            job_id=job_id,
            error=error,
        )

    # -- drain -----------------------------------------------------------

    def _drain(self) -> None:
        """Finish and upload in-flight jobs; abandoned leases just expire."""
        deadline = time.time() + self.drain_seconds
        while self._inflight and time.time() < deadline:
            self._heartbeat_inflight()
            if not self._harvest():
                time.sleep(min(self.poll_interval, 0.1))
        # Whatever is still running when the deadline hits is left to the
        # daemon's lease reaper — the claims expire and re-queue.  The
        # entries stay in ``_inflight`` so shutdown knows not to wait on
        # their futures.


__all__ = ["RemoteWorker", "WorkerStats", "default_worker_id"]
