"""The service's execution engine: a retrying worker pool over the queue.

The :class:`Scheduler` claims jobs from the :class:`~repro.service.jobstore.JobStore`
and runs them on a :class:`~concurrent.futures.ProcessPoolExecutor`
built from the same primitives as the offline sweep engine
(:func:`repro.sim.parallel.init_worker` / :func:`repro.sim.parallel.run_job`),
so every worker writes through the shared content-addressed disk cache.

Policies, in one place:

- **Retry with exponential backoff.**  A failed attempt re-queues the
  job with ``not_before = now + base * factor**(attempts-1)`` (capped)
  until ``max_attempts`` is exhausted, then the job is ``failed`` with
  its last error recorded.
- **Per-job timeout.**  A job past its deadline is treated as a failed
  attempt; the worker pool is torn down (terminating the stuck process)
  and rebuilt, and any innocent-bystander jobs in flight are re-queued
  with their claim refunded.  A future that completed between the
  deadline check and the kill is spared — it is harvested normally on
  the next pass instead of tearing the pool down for nothing.
- **Leased claims.**  The scheduler is just one worker among many: its
  claims carry a ``worker_id`` and a lease, renewed while jobs are in
  flight, and its ``finish``/``fail`` transitions are owner-guarded —
  if the daemon stalls long enough for the lease reaper to hand a job
  elsewhere, the late local result is discarded instead of clobbering
  the new owner's row.
- **Crash-orphan recovery.**  At startup every *lease-less* ``running``
  row left by a legacy daemon is re-queued; leased rows are left to the
  continuous reaper (a live remote worker may still hold them).
- **Graceful drain.**  ``request_stop()`` (wired to SIGTERM/SIGINT by
  the CLI) stops claiming, waits up to ``drain_seconds`` for in-flight
  jobs to finish, re-queues (with refund) whatever is still running,
  and leaves the store with no ``running`` rows.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.obs.logging import StructuredLog
from repro.obs.tracing import async_begin, async_end
from repro.service import jobstore
from repro.service.jobstore import Job, JobStore
from repro.sim import parallel, runner
from repro.sim.config import SimConfig, bench_config
from repro.telemetry import StatScope
from repro.traces.store import TraceStoreError

#: Queue-depth histogram bounds (jobs waiting at submission time).
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0)

#: Config-override keys that parameterize the *workload* (trace replay)
#: rather than the SimConfig; only valid on ``trace:<hash>`` jobs.
TRACE_CONFIG_KEYS = frozenset({"trace_limit", "trace_loop", "trace_seed"})


@dataclasses.dataclass
class ServiceStats:
    """Process-wide service counters (mirrors the runner's ``RunnerStats``)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    timeouts: int = 0
    cancelled: int = 0
    #: submissions that joined an already-active identical job
    dedup_active: int = 0
    #: submissions served instantly from the shared disk cache
    dedup_cache: int = 0
    orphans_recovered: int = 0
    drain_requeued: int = 0

    # Distribution stats (not dataclass fields: they live in the registry
    # and are bound here by register_stats so call sites can observe into
    # them; ``None`` until a registry exists, so bare ``ServiceStats()``
    # instances in unit tests stay inert).
    job_seconds = None
    queue_depth_samples = None
    http_request_seconds = None

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def register_stats(self, scope: StatScope, store: JobStore) -> None:
        """Expose service counters plus queue/latency stats under ``scope``."""
        for name in self.as_dict():
            scope.counter(name, (lambda n=name: getattr(self, n)))
        scope.gauge("queue_depth", lambda: store.counts()[jobstore.QUEUED])
        scope.gauge("running", lambda: store.counts()[jobstore.RUNNING])
        self.job_seconds = scope.histogram(
            "job_seconds", doc="dispatch-to-completion wall time of finished jobs"
        )
        self.queue_depth_samples = scope.histogram(
            "queue_depth_samples",
            buckets=QUEUE_DEPTH_BUCKETS,
            doc="queue depth observed at each submission",
        )
        self.http_request_seconds = scope.histogram(
            "http_request_seconds", doc="HTTP request handling duration"
        )


def config_from_overrides(config: Dict) -> SimConfig:
    """The :class:`SimConfig` a job's override dict resolves to.

    ``trace_*`` overrides parameterize the workload, not the simulator
    config, so they are filtered out here and applied by
    :func:`resolve_job_workload`.
    """
    overrides = {k: v for k, v in config.items() if k not in TRACE_CONFIG_KEYS}
    return bench_config(**overrides)


def job_config(job: Job) -> SimConfig:
    """The resolved :class:`SimConfig` for one job's stored overrides."""
    return config_from_overrides(job.config)


def resolve_job_workload(workload_name: str, config: Dict):
    """The workload object a job's stored (name, config) identifies.

    Roster names resolve through the suite registry; ``trace:<hash>``
    references resolve through the process-default trace store, with
    any ``trace_*`` config overrides folded into the frozen
    :class:`~repro.traces.replay.TraceWorkload` (so they participate in
    the cache key like every other workload field).
    """
    workload = runner.resolve_workload(workload_name)
    if workload_name.startswith("trace:"):
        replacements = {}
        if "trace_limit" in config:
            replacements["limit"] = int(config["trace_limit"])
        if "trace_loop" in config:
            replacements["loop"] = bool(config["trace_loop"])
        if "trace_seed" in config:
            replacements["seed"] = int(config["trace_seed"])
        if replacements:
            workload = dataclasses.replace(workload, **replacements)
    return workload


def job_workload(job: Job):
    """The workload object for one stored job row."""
    return resolve_job_workload(job.workload, job.config)


class Scheduler:
    """Drives queued jobs through a process worker pool until stopped."""

    def __init__(
        self,
        store: JobStore,
        cache_dir: Optional[str],
        trace_dir: Optional[str] = None,
        workers: int = 2,
        default_timeout: Optional[float] = None,
        poll_interval: float = 0.05,
        backoff_base: float = 0.5,
        backoff_factor: float = 2.0,
        backoff_max: float = 60.0,
        drain_seconds: float = 30.0,
        lease_seconds: float = 30.0,
        worker_id: Optional[str] = None,
        stats: Optional[ServiceStats] = None,
        log: Optional[StructuredLog] = None,
    ) -> None:
        self.store = store
        self.cache_dir = cache_dir
        self.trace_dir = trace_dir
        self.workers = max(1, workers)
        self.default_timeout = default_timeout
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.drain_seconds = drain_seconds
        self.lease_seconds = lease_seconds
        self.worker_id = worker_id or f"local:{os.getpid()}"
        self.stats = stats or ServiceStats()
        self.log = log or StructuredLog()
        self._stop = threading.Event()
        self._pool: Optional[ProcessPoolExecutor] = None
        #: job id -> (job, future, absolute deadline or None, dispatch
        #: time, next lease-renewal time)
        self._inflight: Dict[
            str, Tuple[Job, Future, Optional[float], float, float]
        ] = {}

    # -- control ---------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the run loop to drain and exit (signal-handler safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    # -- main loop -------------------------------------------------------

    def run(self) -> None:
        """Block, executing jobs until :meth:`request_stop`; then drain.

        Only *lease-less* orphans (rows from a legacy scheduler) are
        recovered at boot; leased rows are the reaper's business — a
        live remote worker may still hold them.
        """
        orphans = self.store.recover_orphans(only_leaseless=True)
        self.stats.orphans_recovered += len(orphans)
        self.log.event(
            "scheduler_started", workers=self.workers, orphans_recovered=len(orphans)
        )
        self._pool = self._new_pool()
        try:
            while not self._stop.is_set():
                progressed = self._reap()
                progressed |= self._dispatch()
                self._renew_leases()
                if not progressed:
                    self._stop.wait(self.poll_interval)
            self._drain()
        finally:
            self._shutdown_pool()

    # -- pool management -------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=parallel.init_worker,
            initargs=(self.cache_dir, self.trace_dir),
        )

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _kill_pool(self) -> None:
        """Terminate worker processes (the only way to stop a stuck job)."""
        if self._pool is None:
            return
        for process in list(getattr(self._pool, "_processes", {}).values()):
            process.terminate()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    # -- dispatch/reap ---------------------------------------------------

    def _dispatch(self) -> bool:
        dispatched = False
        while len(self._inflight) < self.workers:
            job = self.store.claim(
                worker_id=self.worker_id, lease_seconds=self.lease_seconds
            )
            if job is None:
                break
            dispatched = True
            try:
                workload = job_workload(job)
                config = job_config(job)
            except (KeyError, TypeError, ValueError, TraceStoreError) as exc:
                # Unresolvable identity can never succeed: fail terminally.
                self.store.fail(job.id, f"invalid job: {exc}")
                self.stats.failed += 1
                continue
            future = self._pool.submit(parallel.run_job, (workload, job.design, config))
            timeout = job.timeout if job.timeout is not None else self.default_timeout
            deadline = (time.time() + timeout) if timeout else None
            renew_at = time.time() + self.lease_seconds / 2
            self._inflight[job.id] = (
                job, future, deadline, time.perf_counter(), renew_at
            )
            async_begin(
                "service.job",
                job.id,
                category="service",
                workload=job.workload,
                design=job.design,
            )
            self.log.event(
                "job_dispatched",
                job_id=job.id,
                workload=job.workload,
                design=job.design,
                attempt=job.attempts,
            )
        return dispatched

    def _reap(self) -> bool:
        """Harvest finished futures and enforce deadlines.

        *Every* expired job is collected per pass (a loop that keeps
        only the last one would let its siblings run unbounded until
        their own next pass), and expiry is only declared after a final
        :meth:`Future.done` check — a job that completed between the
        deadline check and the kill is harvested, not failed.
        """
        progressed = False
        now = time.time()
        expired: List[Tuple[Job, Future]] = []
        for job_id, (job, future, deadline, started, _renew) in list(
            self._inflight.items()
        ):
            if future.done():
                del self._inflight[job_id]
                progressed = True
                elapsed = time.perf_counter() - started
                if self.stats.job_seconds is not None:
                    self.stats.job_seconds.observe(elapsed)
                try:
                    result, source, _seconds = future.result()
                except Exception as exc:  # noqa: BLE001 — worker error is data
                    error = f"{type(exc).__name__}: {exc}"
                    async_end(
                        "service.job", job_id, category="service", outcome="failed"
                    )
                    self._record_failure(job, error)
                else:
                    del result  # persisted by the worker via the disk cache
                    if self.store.finish(job_id, source, worker_id=self.worker_id):
                        self.stats.completed += 1
                        async_end(
                            "service.job", job_id, category="service", outcome="done"
                        )
                        self.log.event(
                            "job_completed",
                            job_id=job_id,
                            source=source,
                            seconds=round(elapsed, 6),
                        )
                    else:
                        # Lease lost mid-run: the reaper re-queued the job
                        # (and someone else may own it now).  The result is
                        # in the disk cache regardless, so nothing is lost.
                        async_end(
                            "service.job", job_id, category="service",
                            outcome="lease_lost",
                        )
                        self.log.event("job_lease_lost", job_id=job_id)
            elif deadline is not None and now > deadline:
                expired.append((job, future))
        if expired:
            progressed |= self._on_timeout(expired)
        return progressed

    def _on_timeout(self, expired: List[Tuple[Job, Future]]) -> bool:
        """Kill the pool (stuck workers), requeue bystanders, rebuild.

        Futures that finished between the caller's ``done()`` check and
        here are spared — if nothing is actually stuck the pool
        survives, and the completed futures are harvested next pass.
        """
        stuck = [(job, future) for job, future in expired if not future.done()]
        if not stuck:
            return False
        stuck_ids = {job.id for job, _ in stuck}
        self.stats.timeouts += len(stuck)
        self._kill_pool()
        for job, _future in stuck:
            del self._inflight[job.id]
            async_end("service.job", job.id, category="service", outcome="timeout")
            self.log.event("job_timeout", job_id=job.id)
            self._record_failure(job, "timeout: job exceeded its deadline")
        for other_id, (_job, future, _dl, _st, _rn) in list(self._inflight.items()):
            if future.done():
                continue  # finished before the kill: harvest next pass
            self.store.requeue(other_id, refund_attempt=True)
            del self._inflight[other_id]
        self._pool = self._new_pool()
        return True

    def _renew_leases(self) -> None:
        """Heartbeat in-flight jobs before their lease lapses."""
        now = time.time()
        for job_id, entry in list(self._inflight.items()):
            job, future, deadline, started, renew_at = entry
            if now < renew_at:
                continue
            ok = self.store.heartbeat(
                job_id, self.worker_id, self.lease_seconds, now=now
            )
            if not ok:
                self.log.event("job_lease_lost", job_id=job_id)
            self._inflight[job_id] = (
                job, future, deadline, started, now + self.lease_seconds / 2
            )

    def _record_failure(self, job: Job, error: str) -> None:
        if job.attempts < job.max_attempts:
            delay = min(
                self.backoff_base * self.backoff_factor ** (job.attempts - 1),
                self.backoff_max,
            )
            failed = self.store.fail(
                job.id, error, retry_delay=delay, worker_id=self.worker_id
            )
            if failed:
                self.stats.retried += 1
                self.log.event(
                    "job_retried",
                    job_id=job.id,
                    error=error,
                    attempt=job.attempts,
                    retry_delay=delay,
                )
        else:
            if self.store.fail(job.id, error, worker_id=self.worker_id):
                self.stats.failed += 1
                self.log.event(
                    "job_failed", job_id=job.id, error=error, attempt=job.attempts
                )

    # -- drain -----------------------------------------------------------

    def _drain(self) -> None:
        """Finish or re-queue in-flight work; leave no ``running`` rows."""
        deadline = time.time() + self.drain_seconds
        while self._inflight and time.time() < deadline:
            if not self._reap():
                time.sleep(self.poll_interval)
        if self._inflight:
            self._kill_pool()
            for job_id in list(self._inflight):
                self.store.requeue(job_id, refund_attempt=True)
                self.stats.drain_requeued += 1
                async_end(
                    "service.job", job_id, category="service", outcome="drained"
                )
            self._inflight.clear()
        self.log.event("scheduler_drained", requeued=self.stats.drain_requeued)


__all__ = [
    "Scheduler",
    "ServiceStats",
    "TRACE_CONFIG_KEYS",
    "config_from_overrides",
    "job_config",
    "job_workload",
    "resolve_job_workload",
]
