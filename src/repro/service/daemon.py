"""One service process: job store + scheduler + HTTP front end.

:class:`ServiceDaemon` owns the durable pieces (SQLite job store, the
shared content-addressed disk cache) and the runtime pieces (scheduler
thread-or-loop, threaded HTTP server, telemetry registry).  The CLI's
``repro serve`` builds one and blocks in :meth:`run`; tests embed one
in-process via :meth:`start` / :meth:`stop`.

Submission — shared by the HTTP handler and any in-process caller —
deduplicates twice:

1. a result for the job's identity already in the disk cache completes
   the job instantly (``source="cache"``), and
2. an identical job already queued or running is joined instead of
   duplicated (``created=False`` in the response).

Telemetry registers under ``service.*`` (plus the runner's ``runner.*``
counters) in one :class:`~repro.telemetry.StatRegistry`, surfaced as
JSON by ``GET /metrics``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.cache.replacement import POLICIES
from repro.obs.logging import StructuredLog
from repro.service import jobstore
from repro.service.jobstore import Job, JobStore
from repro.service.scheduler import Scheduler, ServiceStats
from repro.sim import runner
from repro.sim.config import bench_config
from repro.sim.diskcache import DiskCache, cache_key
from repro.sim.results import SimResult
from repro.sim.system import DESIGNS
from repro.telemetry import StatRegistry
from repro.workloads.suites import get_workload

#: SimConfig override keys a job submission may carry.
ALLOWED_CONFIG_KEYS = frozenset({"ops_per_core", "warmup_ops", "llc_policy"})


class SubmitError(ValueError):
    """A job submission that can never run (bad workload/design/config)."""


class ServiceDaemon:
    """Everything one ``repro serve`` process runs."""

    def __init__(
        self,
        db_path=None,
        cache_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        default_timeout: Optional[float] = None,
        max_attempts: int = 3,
        drain_seconds: float = 30.0,
        backoff_base: float = 0.5,
        log_stream=None,
    ) -> None:
        self.store = JobStore(db_path)
        if cache_dir is not None:
            self.cache = DiskCache(cache_dir)
        else:
            self.cache = runner.disk_cache() or DiskCache()
        self.stats = ServiceStats()
        self.max_attempts = max_attempts
        self.started_at = time.time()
        #: structured JSON event log (``log_stream=None`` keeps it off,
        #: the default for embedded/test daemons; ``repro serve`` passes
        #: stderr)
        self.log = StructuredLog(log_stream)
        self.scheduler = Scheduler(
            self.store,
            cache_dir=str(self.cache.root),
            workers=workers,
            default_timeout=default_timeout,
            drain_seconds=drain_seconds,
            backoff_base=backoff_base,
            stats=self.stats,
            log=self.log,
        )
        self.registry = StatRegistry()
        service_scope = self.registry.scope("service")
        self.stats.register_stats(service_scope, self.store)
        service_scope.gauge(
            "uptime_seconds",
            lambda: round(time.time() - self.started_at, 3),
            doc="seconds since this daemon process started",
        )
        runner.register_stats(self.registry.scope("runner"))
        # The HTTP server imports are local so the daemon object stays
        # usable in contexts that never open a socket (unit tests).
        from repro.service.api import make_server

        self.server = make_server(self, host, port)
        self._http_thread: Optional[threading.Thread] = None
        self._scheduler_thread: Optional[threading.Thread] = None

    # -- addresses -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- submission (shared by HTTP and in-process callers) --------------

    def submit(self, payload: Dict[str, Any]) -> Tuple[Job, bool]:
        """Validate and enqueue one job; returns ``(job, created)``.

        Raises :class:`SubmitError` on an identity that can never
        simulate (unknown workload/design, bad config override).
        """
        if not isinstance(payload, dict):
            raise SubmitError("job payload must be a JSON object")
        workload_name = payload.get("workload")
        design = payload.get("design")
        if not isinstance(workload_name, str) or not isinstance(design, str):
            raise SubmitError("'workload' and 'design' are required strings")
        if design not in DESIGNS:
            raise SubmitError(f"unknown design {design!r}; choose from {DESIGNS}")
        try:
            workload = get_workload(workload_name)
        except KeyError as exc:
            raise SubmitError(str(exc)) from None
        config_overrides = dict(payload.get("config") or {})
        unknown = set(config_overrides) - ALLOWED_CONFIG_KEYS
        if unknown:
            raise SubmitError(
                f"unsupported config overrides {sorted(unknown)}; "
                f"allowed: {sorted(ALLOWED_CONFIG_KEYS)}"
            )
        llc_policy = config_overrides.get("llc_policy")
        if llc_policy is not None and llc_policy not in POLICIES:
            raise SubmitError(
                f"unknown llc_policy {llc_policy!r}; choose from {sorted(POLICIES)}"
            )
        try:
            config = bench_config(**config_overrides)
        except (TypeError, ValueError) as exc:
            raise SubmitError(f"bad config overrides: {exc}") from None
        priority = int(payload.get("priority", 0))
        max_attempts = int(payload.get("max_attempts", self.max_attempts))
        timeout = payload.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
        key = cache_key(workload, design, config)
        if self.stats.queue_depth_samples is not None:
            self.stats.queue_depth_samples.observe(
                self.store.counts()[jobstore.QUEUED]
            )

        if self.cache.get(key) is not None:
            # Identity already solved: record an instantly-done job.
            job, created = self.store.submit(
                workload_name,
                design,
                key,
                config=config_overrides,
                priority=priority,
                max_attempts=max_attempts,
                timeout=timeout,
                state=jobstore.DONE,
                source="cache",
            )
            self.stats.dedup_cache += 1
            return job, created
        job, created = self.store.submit(
            workload_name,
            design,
            key,
            config=config_overrides,
            priority=priority,
            max_attempts=max_attempts,
            timeout=timeout,
        )
        if created:
            self.stats.submitted += 1
            self.log.event(
                "job_submitted",
                job_id=job.id,
                workload=workload_name,
                design=design,
                priority=priority,
            )
        else:
            self.stats.dedup_active += 1
        return job, created

    def result_for(self, job: Job) -> Optional[SimResult]:
        """The completed job's :class:`SimResult` from the shared cache."""
        return self.cache.get(job.key)

    def health(self) -> Dict[str, Any]:
        counts = self.store.counts()
        return {
            "ok": True,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue": counts,
            "queue_depth": counts[jobstore.QUEUED],
            "inflight": self.scheduler.inflight,
            "workers": self.scheduler.workers,
            "draining": self.scheduler.stopping,
            "cache_dir": str(self.cache.root),
            "db": str(self.store.path),
        }

    def metrics(self) -> Dict[str, Any]:
        """Current value of every registered stat (``GET /metrics``)."""
        return self.registry.delta()

    # -- lifecycle -------------------------------------------------------

    def start(self, run_scheduler: bool = True) -> None:
        """Start HTTP (and optionally the scheduler) on background threads."""
        self._http_thread = threading.Thread(
            target=self.server.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        if run_scheduler:
            self._scheduler_thread = threading.Thread(
                target=self.scheduler.run, name="repro-service-scheduler", daemon=True
            )
            self._scheduler_thread.start()

    def run(self) -> None:
        """Blocking serve loop for the CLI: HTTP on a thread, scheduler here."""
        self._http_thread = threading.Thread(
            target=self.server.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        try:
            self.scheduler.run()
        finally:
            self._stop_http()
            self.store.close()

    def request_stop(self) -> None:
        """Signal-handler hook: begin graceful drain."""
        self.scheduler.request_stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop background threads started by :meth:`start` and close up."""
        self.scheduler.request_stop()
        if self._scheduler_thread is not None:
            self._scheduler_thread.join(timeout)
            self._scheduler_thread = None
        self._stop_http()
        self.store.close()

    def _stop_http(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._http_thread is not None:
            self._http_thread.join(5.0)
            self._http_thread = None


__all__ = ["ALLOWED_CONFIG_KEYS", "ServiceDaemon", "SubmitError"]
