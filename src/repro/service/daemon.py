"""One service process: job store + scheduler + HTTP front end.

:class:`ServiceDaemon` owns the durable pieces (SQLite job store, the
shared content-addressed disk cache) and the runtime pieces (scheduler
thread-or-loop, threaded HTTP server, telemetry registry).  The CLI's
``repro serve`` builds one and blocks in :meth:`run`; tests embed one
in-process via :meth:`start` / :meth:`stop`.

Submission — shared by the HTTP handler and any in-process caller —
deduplicates twice:

1. a result for the job's identity already in the disk cache completes
   the job instantly (``source="cache"``), and
2. an identical job already queued or running is joined instead of
   duplicated (``created=False`` in the response).

Telemetry registers under ``service.*`` (plus the runner's ``runner.*``
counters) in one :class:`~repro.telemetry.StatRegistry`, surfaced as
JSON by ``GET /metrics``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.cache.replacement import POLICIES
from repro.obs.logging import StructuredLog
from repro.service import jobstore
from repro.service.jobstore import Job, JobStore
from repro.service.scheduler import (
    TRACE_CONFIG_KEYS,
    Scheduler,
    ServiceStats,
    config_from_overrides,
    resolve_job_workload,
)
from repro.sim import runner
from repro.sim.diskcache import DiskCache, cache_key
from repro.sim.results import SimResult
from repro.sim.system import DESIGNS
from repro.telemetry import StatRegistry
from repro.traces.formats import TraceParseError
from repro.traces.store import TraceStore, TraceStoreError, trace_store

#: SimConfig override keys a job submission may carry.  ``trace_*`` keys
#: are workload parameters (valid only on ``trace:<hash>`` jobs).
ALLOWED_CONFIG_KEYS = (
    frozenset({"ops_per_core", "warmup_ops", "llc_policy"}) | TRACE_CONFIG_KEYS
)


class SubmitError(ValueError):
    """A job submission that can never run (bad workload/design/config)."""


class IngestError(ValueError):
    """A trace upload that cannot be stored (bad payload/format)."""


class ServiceDaemon:
    """Everything one ``repro serve`` process runs."""

    def __init__(
        self,
        db_path=None,
        cache_dir=None,
        trace_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        default_timeout: Optional[float] = None,
        max_attempts: int = 3,
        drain_seconds: float = 30.0,
        backoff_base: float = 0.5,
        log_stream=None,
    ) -> None:
        self.store = JobStore(db_path)
        if cache_dir is not None:
            self.cache = DiskCache(cache_dir)
        else:
            self.cache = runner.disk_cache() or DiskCache()
        # the trace store is process-global (replay resolves through the
        # singleton), so an explicit trace_dir reconfigures it for the
        # whole daemon process
        if trace_dir is not None:
            from repro.traces.store import configure_trace_store

            self.traces: TraceStore = configure_trace_store(trace_dir)
        else:
            self.traces = trace_store()
        self.stats = ServiceStats()
        self.max_attempts = max_attempts
        self.started_at = time.time()
        #: structured JSON event log (``log_stream=None`` keeps it off,
        #: the default for embedded/test daemons; ``repro serve`` passes
        #: stderr)
        self.log = StructuredLog(log_stream)
        self.scheduler = Scheduler(
            self.store,
            cache_dir=str(self.cache.root),
            trace_dir=str(self.traces.root),
            workers=workers,
            default_timeout=default_timeout,
            drain_seconds=drain_seconds,
            backoff_base=backoff_base,
            stats=self.stats,
            log=self.log,
        )
        self.registry = StatRegistry()
        service_scope = self.registry.scope("service")
        self.stats.register_stats(service_scope, self.store)
        service_scope.gauge(
            "uptime_seconds",
            lambda: round(time.time() - self.started_at, 3),
            doc="seconds since this daemon process started",
        )
        runner.register_stats(self.registry.scope("runner"))
        self.traces.stats.register_stats(self.registry.scope("trace"))
        # The HTTP server imports are local so the daemon object stays
        # usable in contexts that never open a socket (unit tests).
        from repro.service.api import make_server

        self.server = make_server(self, host, port)
        self._http_thread: Optional[threading.Thread] = None
        self._scheduler_thread: Optional[threading.Thread] = None

    # -- addresses -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- submission (shared by HTTP and in-process callers) --------------

    def submit(self, payload: Dict[str, Any]) -> Tuple[Job, bool]:
        """Validate and enqueue one job; returns ``(job, created)``.

        Raises :class:`SubmitError` on an identity that can never
        simulate (unknown workload/design, bad config override).
        """
        if not isinstance(payload, dict):
            raise SubmitError("job payload must be a JSON object")
        workload_name = payload.get("workload")
        design = payload.get("design")
        if not isinstance(workload_name, str) or not isinstance(design, str):
            raise SubmitError("'workload' and 'design' are required strings")
        if design not in DESIGNS:
            raise SubmitError(f"unknown design {design!r}; choose from {DESIGNS}")
        config_overrides = dict(payload.get("config") or {})
        unknown = set(config_overrides) - ALLOWED_CONFIG_KEYS
        if unknown:
            raise SubmitError(
                f"unsupported config overrides {sorted(unknown)}; "
                f"allowed: {sorted(ALLOWED_CONFIG_KEYS)}"
            )
        trace_keys = set(config_overrides) & TRACE_CONFIG_KEYS
        if trace_keys and not workload_name.startswith("trace:"):
            raise SubmitError(
                f"{sorted(trace_keys)} only apply to trace:<hash> workloads"
            )
        if int(config_overrides.get("trace_limit", 0) or 0) < 0:
            raise SubmitError("trace_limit must be >= 0")
        llc_policy = config_overrides.get("llc_policy")
        if llc_policy is not None and llc_policy not in POLICIES:
            raise SubmitError(
                f"unknown llc_policy {llc_policy!r}; choose from {sorted(POLICIES)}"
            )
        try:
            workload = resolve_job_workload(workload_name, config_overrides)
        except (KeyError, TraceStoreError) as exc:
            raise SubmitError(str(exc)) from None
        except (TypeError, ValueError) as exc:
            raise SubmitError(f"bad trace overrides: {exc}") from None
        if workload_name.startswith("trace:"):
            # canonicalize abbreviated hashes so the stored row stays
            # resolvable even if a later ingest makes the prefix ambiguous
            workload_name = f"trace:{workload.trace_hash}"
        try:
            config = config_from_overrides(config_overrides)
        except (TypeError, ValueError) as exc:
            raise SubmitError(f"bad config overrides: {exc}") from None
        priority = int(payload.get("priority", 0))
        max_attempts = int(payload.get("max_attempts", self.max_attempts))
        timeout = payload.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
        key = cache_key(workload, design, config)
        if self.stats.queue_depth_samples is not None:
            self.stats.queue_depth_samples.observe(
                self.store.counts()[jobstore.QUEUED]
            )

        if self.cache.get(key) is not None:
            # Identity already solved: record an instantly-done job.
            job, created = self.store.submit(
                workload_name,
                design,
                key,
                config=config_overrides,
                priority=priority,
                max_attempts=max_attempts,
                timeout=timeout,
                state=jobstore.DONE,
                source="cache",
            )
            self.stats.dedup_cache += 1
            return job, created
        job, created = self.store.submit(
            workload_name,
            design,
            key,
            config=config_overrides,
            priority=priority,
            max_attempts=max_attempts,
            timeout=timeout,
        )
        if created:
            self.stats.submitted += 1
            self.log.event(
                "job_submitted",
                job_id=job.id,
                workload=workload_name,
                design=design,
                priority=priority,
            )
        else:
            self.stats.dedup_active += 1
        return job, created

    # -- trace ingestion --------------------------------------------------

    def ingest_trace(self, payload: Dict[str, Any]):
        """Store one uploaded trace; returns ``(info, created)``.

        The payload carries the trace either as ``content`` (text
        records, convenient for hand-written uploads) or ``content_b64``
        (base64 of text/binary/gzip bytes), plus optional ``name``,
        ``format`` (``auto``/``text``/``binary``) and ``mode``
        (``strict``/``lenient``).  Raises :class:`IngestError` on a
        payload that cannot be parsed or stored.
        """
        if not isinstance(payload, dict):
            raise IngestError("trace payload must be a JSON object")
        content = payload.get("content")
        content_b64 = payload.get("content_b64")
        if (content is None) == (content_b64 is None):
            raise IngestError("provide exactly one of 'content' or 'content_b64'")
        if content is not None:
            if not isinstance(content, str):
                raise IngestError("'content' must be a string of text records")
            data = content.encode("utf-8")
        else:
            import base64
            import binascii

            try:
                data = base64.b64decode(content_b64, validate=True)
            except (binascii.Error, TypeError, ValueError) as exc:
                raise IngestError(f"bad content_b64: {exc}") from None
        name = payload.get("name") or ""
        fmt = payload.get("format", "auto")
        mode = payload.get("mode", "strict")
        try:
            info, created = self.traces.ingest_bytes(
                data, name=str(name), fmt=fmt, mode=mode
            )
        except (TraceParseError, TraceStoreError, ValueError) as exc:
            raise IngestError(str(exc)) from None
        self.log.event(
            "trace_ingested",
            hash=info.hash,
            name=info.name,
            records=info.records,
            created=created,
        )
        return info, created

    def result_for(self, job: Job) -> Optional[SimResult]:
        """The completed job's :class:`SimResult` from the shared cache."""
        return self.cache.get(job.key)

    def health(self) -> Dict[str, Any]:
        counts = self.store.counts()
        return {
            "ok": True,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue": counts,
            "queue_depth": counts[jobstore.QUEUED],
            "inflight": self.scheduler.inflight,
            "workers": self.scheduler.workers,
            "draining": self.scheduler.stopping,
            "cache_dir": str(self.cache.root),
            "trace_dir": str(self.traces.root),
            "db": str(self.store.path),
        }

    def metrics(self) -> Dict[str, Any]:
        """Current value of every registered stat (``GET /metrics``)."""
        return self.registry.delta()

    # -- lifecycle -------------------------------------------------------

    def start(self, run_scheduler: bool = True) -> None:
        """Start HTTP (and optionally the scheduler) on background threads."""
        self._http_thread = threading.Thread(
            target=self.server.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        if run_scheduler:
            self._scheduler_thread = threading.Thread(
                target=self.scheduler.run, name="repro-service-scheduler", daemon=True
            )
            self._scheduler_thread.start()

    def run(self) -> None:
        """Blocking serve loop for the CLI: HTTP on a thread, scheduler here."""
        self._http_thread = threading.Thread(
            target=self.server.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        try:
            self.scheduler.run()
        finally:
            self._stop_http()
            self.store.close()

    def request_stop(self) -> None:
        """Signal-handler hook: begin graceful drain."""
        self.scheduler.request_stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop background threads started by :meth:`start` and close up."""
        self.scheduler.request_stop()
        if self._scheduler_thread is not None:
            self._scheduler_thread.join(timeout)
            self._scheduler_thread = None
        self._stop_http()
        self.store.close()

    def _stop_http(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._http_thread is not None:
            self._http_thread.join(5.0)
            self._http_thread = None


__all__ = ["ALLOWED_CONFIG_KEYS", "IngestError", "ServiceDaemon", "SubmitError"]
