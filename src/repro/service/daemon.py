"""One service process: job store + scheduler + HTTP front end.

:class:`ServiceDaemon` owns the durable pieces (SQLite job store, the
shared content-addressed disk cache) and the runtime pieces (scheduler
thread-or-loop, threaded HTTP server, telemetry registry).  The CLI's
``repro serve`` builds one and blocks in :meth:`run`; tests embed one
in-process via :meth:`start` / :meth:`stop`.

Submission — shared by the HTTP handler and any in-process caller —
deduplicates twice:

1. a result for the job's identity already in the disk cache completes
   the job instantly (``source="cache"``), and
2. an identical job already queued or running is joined instead of
   duplicated (``created=False`` in the response).

Telemetry registers under ``service.*`` (plus the runner's ``runner.*``
counters) in one :class:`~repro.telemetry.StatRegistry`, surfaced as
JSON by ``GET /metrics``.
"""

from __future__ import annotations

import os
import re
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.replacement import POLICIES
from repro.obs.logging import StructuredLog
from repro.service import jobstore
from repro.service.jobstore import Job, JobStore
from repro.service.scheduler import (
    TRACE_CONFIG_KEYS,
    Scheduler,
    ServiceStats,
    config_from_overrides,
    resolve_job_workload,
)
from repro.sim import runner
from repro.sim.diskcache import DiskCache, cache_key
from repro.sim.results import ResultDecodeError, SimResult
from repro.sim.system import DESIGNS
from repro.telemetry import StatRegistry, StatScope
from repro.traces.formats import TraceParseError
from repro.traces.store import TraceStore, TraceStoreError, trace_store

#: SimConfig override keys a job submission may carry.  ``trace_*`` keys
#: are workload parameters (valid only on ``trace:<hash>`` jobs).
ALLOWED_CONFIG_KEYS = (
    frozenset({"ops_per_core", "warmup_ops", "llc_policy"}) | TRACE_CONFIG_KEYS
)

#: Environment variable holding the shared bearer token.  When set (on
#: the daemon) every mutating request must present it; when set on a
#: client/worker process it is sent automatically.
SERVICE_TOKEN_ENV = "REPRO_SERVICE_TOKEN"


class SubmitError(ValueError):
    """A job submission that can never run (bad workload/design/config)."""


class QueueFullError(SubmitError):
    """The bounded job queue is at capacity (backpressure: retry later)."""


class IngestError(ValueError):
    """A trace upload that cannot be stored (bad payload/format)."""


class WorkerProtocolError(ValueError):
    """A malformed claim/heartbeat/result/fail request from a worker."""


class LeaseLostError(RuntimeError):
    """The caller no longer holds the job's lease (reaped or re-owned)."""


def _worker_path_segment(worker_id: str) -> str:
    """A registry-legal path segment for one worker id."""
    segment = re.sub(r"[^a-z0-9_]", "_", worker_id.lower())
    return segment or "unknown"


class WorkerTracker:
    """Live-worker accounting behind the ``worker.*`` telemetry scope.

    Every claim/heartbeat/result touch marks the worker as seen; a
    worker is "live" while its last touch is younger than
    ``live_horizon`` (three lease intervals by default — long enough to
    ride out a missed heartbeat, short enough that a dead worker drops
    off the gauge promptly).
    """

    def __init__(self, live_horizon: float = 90.0) -> None:
        self.live_horizon = live_horizon
        self._lock = threading.Lock()
        self._last_seen: Dict[str, float] = {}
        self._completed: Dict[str, int] = {}
        self.lease_expirations = 0
        self._scope: Optional[StatScope] = None

    def register_stats(self, scope: StatScope) -> None:
        self._scope = scope
        scope.gauge("live", self.live, doc="workers seen within the horizon")
        scope.counter(
            "lease_expirations",
            lambda: self.lease_expirations,
            doc="claims re-queued because their lease lapsed",
        )

    def seen(self, worker_id: str, now: Optional[float] = None) -> None:
        now = time.time() if now is None else now
        with self._lock:
            self._last_seen[worker_id] = now

    def completed(self, worker_id: str) -> None:
        self.seen(worker_id)
        with self._lock:
            register = worker_id not in self._completed and self._scope is not None
            self._completed[worker_id] = self._completed.get(worker_id, 0) + 1
        if register:
            # First completion: surface a per-worker counter on /metrics.
            self._scope.counter(
                f"completed.{_worker_path_segment(worker_id)}",
                (lambda w=worker_id: self._completed.get(w, 0)),
                doc=f"jobs completed by worker {worker_id}",
            )

    def lease_expired(self, worker_id: Optional[str]) -> None:
        self.lease_expirations += 1
        if worker_id:
            with self._lock:
                # an expired lease is *evidence of absence*: forget the
                # worker so the live gauge drops without waiting out the
                # horizon
                self._last_seen.pop(worker_id, None)

    def live(self, now: Optional[float] = None) -> int:
        now = time.time() if now is None else now
        horizon = now - self.live_horizon
        with self._lock:
            return sum(1 for seen in self._last_seen.values() if seen >= horizon)

    def completions(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._completed)


class TokenBucketLimiter:
    """Per-client token buckets: ``rate`` requests/second, ``burst`` deep.

    ``allow`` returns ``(ok, retry_after_seconds)``; a rate of 0
    disables limiting entirely.
    """

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(2 * self.rate, 1.0)
        self._lock = threading.Lock()
        #: client -> (tokens, last refill time)
        self._buckets: Dict[str, Tuple[float, float]] = {}

    def allow(self, client: str, now: Optional[float] = None) -> Tuple[bool, float]:
        if self.rate <= 0:
            return True, 0.0
        now = time.monotonic() if now is None else now
        with self._lock:
            tokens, last = self._buckets.get(client, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                self._buckets[client] = (tokens - 1.0, now)
                return True, 0.0
            self._buckets[client] = (tokens, now)
            return False, (1.0 - tokens) / self.rate


class ServiceDaemon:
    """Everything one ``repro serve`` process runs."""

    def __init__(
        self,
        db_path=None,
        cache_dir=None,
        trace_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        default_timeout: Optional[float] = None,
        max_attempts: int = 3,
        drain_seconds: float = 30.0,
        backoff_base: float = 0.5,
        log_stream=None,
        token: Optional[str] = None,
        lease_seconds: float = 30.0,
        reaper_interval: float = 1.0,
        max_queued: int = 10_000,
        rate_limit: float = 0.0,
        rate_burst: Optional[float] = None,
    ) -> None:
        self.store = JobStore(db_path)
        if cache_dir is not None:
            self.cache = DiskCache(cache_dir)
        else:
            self.cache = runner.disk_cache() or DiskCache()
        # the trace store is process-global (replay resolves through the
        # singleton), so an explicit trace_dir reconfigures it for the
        # whole daemon process
        if trace_dir is not None:
            from repro.traces.store import configure_trace_store

            self.traces: TraceStore = configure_trace_store(trace_dir)
        else:
            self.traces = trace_store()
        self.stats = ServiceStats()
        self.max_attempts = max_attempts
        self.started_at = time.time()
        #: shared bearer token guarding mutating routes (None = open)
        self.token = (
            token if token is not None else os.environ.get(SERVICE_TOKEN_ENV) or None
        )
        self.lease_seconds = lease_seconds
        self.reaper_interval = reaper_interval
        #: queued-row ceiling for backpressure (0 = unbounded)
        self.max_queued = max_queued
        self.limiter = TokenBucketLimiter(rate_limit, rate_burst)
        self.workers_seen = WorkerTracker(live_horizon=3 * lease_seconds)
        self._reaper_thread: Optional[threading.Thread] = None
        self._reaper_stop = threading.Event()
        #: structured JSON event log (``log_stream=None`` keeps it off,
        #: the default for embedded/test daemons; ``repro serve`` passes
        #: stderr)
        self.log = StructuredLog(log_stream)
        self.scheduler = Scheduler(
            self.store,
            cache_dir=str(self.cache.root),
            trace_dir=str(self.traces.root),
            workers=workers,
            default_timeout=default_timeout,
            drain_seconds=drain_seconds,
            backoff_base=backoff_base,
            lease_seconds=lease_seconds,
            stats=self.stats,
            log=self.log,
        )
        self.registry = StatRegistry()
        service_scope = self.registry.scope("service")
        self.stats.register_stats(service_scope, self.store)
        self.workers_seen.register_stats(self.registry.scope("worker"))
        service_scope.gauge(
            "uptime_seconds",
            lambda: round(time.time() - self.started_at, 3),
            doc="seconds since this daemon process started",
        )
        runner.register_stats(self.registry.scope("runner"))
        self.traces.stats.register_stats(self.registry.scope("trace"))
        # The HTTP server imports are local so the daemon object stays
        # usable in contexts that never open a socket (unit tests).
        from repro.service.api import make_server

        self.server = make_server(self, host, port)
        self._http_thread: Optional[threading.Thread] = None
        self._scheduler_thread: Optional[threading.Thread] = None

    # -- addresses -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- submission (shared by HTTP and in-process callers) --------------

    def submit(self, payload: Dict[str, Any]) -> Tuple[Job, bool]:
        """Validate and enqueue one job; returns ``(job, created)``.

        Raises :class:`SubmitError` on an identity that can never
        simulate (unknown workload/design, bad config override).
        """
        if not isinstance(payload, dict):
            raise SubmitError("job payload must be a JSON object")
        workload_name = payload.get("workload")
        design = payload.get("design")
        if not isinstance(workload_name, str) or not isinstance(design, str):
            raise SubmitError("'workload' and 'design' are required strings")
        if design not in DESIGNS:
            raise SubmitError(f"unknown design {design!r}; choose from {DESIGNS}")
        config_overrides = dict(payload.get("config") or {})
        unknown = set(config_overrides) - ALLOWED_CONFIG_KEYS
        if unknown:
            raise SubmitError(
                f"unsupported config overrides {sorted(unknown)}; "
                f"allowed: {sorted(ALLOWED_CONFIG_KEYS)}"
            )
        trace_keys = set(config_overrides) & TRACE_CONFIG_KEYS
        if trace_keys and not workload_name.startswith("trace:"):
            raise SubmitError(
                f"{sorted(trace_keys)} only apply to trace:<hash> workloads"
            )
        if int(config_overrides.get("trace_limit", 0) or 0) < 0:
            raise SubmitError("trace_limit must be >= 0")
        llc_policy = config_overrides.get("llc_policy")
        if llc_policy is not None and llc_policy not in POLICIES:
            raise SubmitError(
                f"unknown llc_policy {llc_policy!r}; choose from {sorted(POLICIES)}"
            )
        try:
            workload = resolve_job_workload(workload_name, config_overrides)
        except (KeyError, TraceStoreError) as exc:
            raise SubmitError(str(exc)) from None
        except (TypeError, ValueError) as exc:
            raise SubmitError(f"bad trace overrides: {exc}") from None
        if workload_name.startswith("trace:"):
            # canonicalize abbreviated hashes so the stored row stays
            # resolvable even if a later ingest makes the prefix ambiguous
            workload_name = f"trace:{workload.trace_hash}"
        try:
            config = config_from_overrides(config_overrides)
        except (TypeError, ValueError) as exc:
            raise SubmitError(f"bad config overrides: {exc}") from None
        priority = int(payload.get("priority", 0))
        max_attempts = int(payload.get("max_attempts", self.max_attempts))
        timeout = payload.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
        key = cache_key(workload, design, config)
        if self.stats.queue_depth_samples is not None:
            self.stats.queue_depth_samples.observe(
                self.store.counts()[jobstore.QUEUED]
            )

        if self.cache.get(key) is not None:
            # Identity already solved: record an instantly-done job.
            job, created = self.store.submit(
                workload_name,
                design,
                key,
                config=config_overrides,
                priority=priority,
                max_attempts=max_attempts,
                timeout=timeout,
                state=jobstore.DONE,
                source="cache",
            )
            self.stats.dedup_cache += 1
            return job, created
        if self.max_queued and self.store.active_for_key(key) is None:
            # Backpressure: only genuinely-new rows count against the
            # bound — joining an active twin adds no queue depth.
            depth = self.store.counts()[jobstore.QUEUED]
            if depth >= self.max_queued:
                raise QueueFullError(
                    f"job queue is full ({depth} >= {self.max_queued} queued); "
                    f"retry later"
                )
        job, created = self.store.submit(
            workload_name,
            design,
            key,
            config=config_overrides,
            priority=priority,
            max_attempts=max_attempts,
            timeout=timeout,
        )
        if created:
            self.stats.submitted += 1
            self.log.event(
                "job_submitted",
                job_id=job.id,
                workload=workload_name,
                design=design,
                priority=priority,
            )
        else:
            self.stats.dedup_active += 1
        return job, created

    # -- trace ingestion --------------------------------------------------

    def ingest_trace(self, payload: Dict[str, Any]):
        """Store one uploaded trace; returns ``(info, created)``.

        The payload carries the trace either as ``content`` (text
        records, convenient for hand-written uploads) or ``content_b64``
        (base64 of text/binary/gzip bytes), plus optional ``name``,
        ``format`` (``auto``/``text``/``binary``) and ``mode``
        (``strict``/``lenient``).  Raises :class:`IngestError` on a
        payload that cannot be parsed or stored.
        """
        if not isinstance(payload, dict):
            raise IngestError("trace payload must be a JSON object")
        content = payload.get("content")
        content_b64 = payload.get("content_b64")
        if (content is None) == (content_b64 is None):
            raise IngestError("provide exactly one of 'content' or 'content_b64'")
        if content is not None:
            if not isinstance(content, str):
                raise IngestError("'content' must be a string of text records")
            data = content.encode("utf-8")
        else:
            import base64
            import binascii

            try:
                data = base64.b64decode(content_b64, validate=True)
            except (binascii.Error, TypeError, ValueError) as exc:
                raise IngestError(f"bad content_b64: {exc}") from None
        name = payload.get("name") or ""
        fmt = payload.get("format", "auto")
        mode = payload.get("mode", "strict")
        try:
            info, created = self.traces.ingest_bytes(
                data, name=str(name), fmt=fmt, mode=mode
            )
        except (TraceParseError, TraceStoreError, ValueError) as exc:
            raise IngestError(str(exc)) from None
        self.log.event(
            "trace_ingested",
            hash=info.hash,
            name=info.name,
            records=info.records,
            created=created,
        )
        return info, created

    def result_for(self, job: Job) -> Optional[SimResult]:
        """The completed job's :class:`SimResult` from the shared cache."""
        return self.cache.get(job.key)

    # -- remote-worker protocol (claim / heartbeat / result / fail) ------

    @staticmethod
    def _worker_fields(payload: Any) -> Tuple[str, float]:
        if not isinstance(payload, dict):
            raise WorkerProtocolError("worker payload must be a JSON object")
        worker_id = payload.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise WorkerProtocolError("'worker_id' is a required string")
        lease = payload.get("lease_seconds")
        lease = float(lease) if lease is not None else 0.0
        return worker_id, lease

    def claim_job(self, payload: Dict[str, Any]) -> Optional[Job]:
        """Lease the best queued job to a remote worker (``None`` = empty)."""
        worker_id, lease = self._worker_fields(payload)
        lease = lease or self.lease_seconds
        if lease <= 0:
            raise WorkerProtocolError("lease_seconds must be > 0")
        self.workers_seen.seen(worker_id)
        job = self.store.claim(worker_id=worker_id, lease_seconds=lease)
        if job is not None:
            self.log.event(
                "job_claimed",
                job_id=job.id,
                worker_id=worker_id,
                lease_seconds=lease,
            )
        return job

    def heartbeat_job(self, job_id: str, payload: Dict[str, Any]) -> Job:
        """Renew a worker's lease; raises :class:`LeaseLostError` if gone."""
        worker_id, lease = self._worker_fields(payload)
        self.workers_seen.seen(worker_id)
        job = self.store.find(job_id)  # KeyError -> 404 at the API layer
        ok = self.store.heartbeat(
            job.id, worker_id, lease or self.lease_seconds
        )
        if not ok:
            raise LeaseLostError(
                f"job {job.id} is not leased to worker {worker_id!r} "
                f"(state {self.store.get(job.id).state})"
            )
        return self.store.get(job.id)

    def remote_result(self, job_id: str, payload: Dict[str, Any]) -> Job:
        """Adopt a worker's finished result: cache it, mark the job done.

        The payload carries the :meth:`SimResult.to_json_dict` dict; the
        daemon writes it through its content-addressed cache under the
        job's key, so results replicate to the shared store exactly as
        if the local pool had produced them.
        """
        worker_id, _lease = self._worker_fields(payload)
        job = self.store.find(job_id)
        result_dict = payload.get("result")
        if not isinstance(result_dict, dict):
            raise WorkerProtocolError("'result' must be a SimResult JSON object")
        try:
            result = SimResult.from_json_dict(result_dict)
        except (ResultDecodeError, TypeError, ValueError, KeyError) as exc:
            raise WorkerProtocolError(f"undecodable result payload: {exc}") from None
        if result.design != job.design:
            raise WorkerProtocolError(
                f"result is for design {result.design!r}, job wants {job.design!r}"
            )
        source = payload.get("source") or "remote"
        if not isinstance(source, str):
            raise WorkerProtocolError("'source' must be a string")
        # Persist before the state flip so a GET /jobs/<id>/result that
        # races the transition never sees done-without-result.
        self.cache.put(job.key, result)
        if not self.store.finish(job.id, source, worker_id=worker_id):
            raise LeaseLostError(
                f"job {job.id} is no longer leased to worker {worker_id!r}; "
                f"result cached but job state unchanged"
            )
        self.stats.completed += 1
        self.workers_seen.completed(worker_id)
        self.log.event(
            "job_completed", job_id=job.id, source=source, worker_id=worker_id
        )
        return self.store.get(job.id)

    def remote_fail(self, job_id: str, payload: Dict[str, Any]) -> Job:
        """Record a worker-side failure (retries with backoff like local)."""
        worker_id, _lease = self._worker_fields(payload)
        job = self.store.find(job_id)
        error = str(payload.get("error") or "worker reported failure")
        self.workers_seen.seen(worker_id)
        if job.attempts < job.max_attempts:
            delay = min(
                self.scheduler.backoff_base
                * self.scheduler.backoff_factor ** (max(job.attempts, 1) - 1),
                self.scheduler.backoff_max,
            )
            ok = self.store.fail(
                job.id, error, retry_delay=delay, worker_id=worker_id
            )
            if ok:
                self.stats.retried += 1
        else:
            ok = self.store.fail(job.id, error, worker_id=worker_id)
            if ok:
                self.stats.failed += 1
        if not ok:
            raise LeaseLostError(
                f"job {job.id} is no longer leased to worker {worker_id!r}"
            )
        self.log.event(
            "job_worker_failed", job_id=job.id, worker_id=worker_id, error=error
        )
        return self.store.get(job.id)

    # -- lease reaper ----------------------------------------------------

    def reap_leases(self) -> List[Job]:
        """One reaper pass: requeue/fail every job whose lease lapsed."""
        reaped = self.store.reap_expired()
        for job in reaped:
            self.workers_seen.lease_expired(job.worker_id)
            self.log.event(
                "lease_expired",
                job_id=job.id,
                worker_id=job.worker_id,
                attempt=job.attempts,
            )
        return reaped

    def _reaper_loop(self) -> None:
        while not self._reaper_stop.wait(self.reaper_interval):
            try:
                self.reap_leases()
            except Exception:  # noqa: BLE001 — never kill the reaper thread
                pass

    def _start_reaper(self) -> None:
        self._reaper_stop.clear()
        self._reaper_thread = threading.Thread(
            target=self._reaper_loop, name="repro-service-reaper", daemon=True
        )
        self._reaper_thread.start()

    def _stop_reaper(self) -> None:
        self._reaper_stop.set()
        if self._reaper_thread is not None:
            self._reaper_thread.join(5.0)
            self._reaper_thread = None

    def health(self) -> Dict[str, Any]:
        counts = self.store.counts()
        return {
            "ok": True,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue": counts,
            "queue_depth": counts[jobstore.QUEUED],
            "inflight": self.scheduler.inflight,
            "workers": self.scheduler.workers,
            "live_workers": self.workers_seen.live(),
            "lease_seconds": self.lease_seconds,
            "auth": self.token is not None,
            "draining": self.scheduler.stopping,
            "cache_dir": str(self.cache.root),
            "trace_dir": str(self.traces.root),
            "db": str(self.store.path),
        }

    def metrics(self) -> Dict[str, Any]:
        """Current value of every registered stat (``GET /metrics``)."""
        return self.registry.delta()

    # -- lifecycle -------------------------------------------------------

    def start(self, run_scheduler: bool = True) -> None:
        """Start HTTP, the lease reaper (and optionally the scheduler)."""
        self._http_thread = threading.Thread(
            target=self.server.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        self._start_reaper()
        if run_scheduler:
            self._scheduler_thread = threading.Thread(
                target=self.scheduler.run, name="repro-service-scheduler", daemon=True
            )
            self._scheduler_thread.start()

    def run(self) -> None:
        """Blocking serve loop for the CLI: HTTP on a thread, scheduler here."""
        self._http_thread = threading.Thread(
            target=self.server.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        self._start_reaper()
        try:
            self.scheduler.run()
        finally:
            self._stop_reaper()
            self._stop_http()
            self.store.close()

    def request_stop(self) -> None:
        """Signal-handler hook: begin graceful drain."""
        self.scheduler.request_stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop background threads started by :meth:`start` and close up."""
        self.scheduler.request_stop()
        if self._scheduler_thread is not None:
            self._scheduler_thread.join(timeout)
            self._scheduler_thread = None
        self._stop_reaper()
        self._stop_http()
        self.store.close()

    def _stop_http(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._http_thread is not None:
            self._http_thread.join(5.0)
            self._http_thread = None


__all__ = [
    "ALLOWED_CONFIG_KEYS",
    "IngestError",
    "LeaseLostError",
    "QueueFullError",
    "SERVICE_TOKEN_ENV",
    "ServiceDaemon",
    "SubmitError",
    "TokenBucketLimiter",
    "WorkerProtocolError",
    "WorkerTracker",
]
