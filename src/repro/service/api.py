"""Stdlib-only HTTP JSON API for the job-queue daemon.

Routes (all JSON in, JSON out)::

    POST   /jobs             submit {workload, design, config?, priority?,
                             max_attempts?, timeout?} -> job (201 created,
                             200 when joined/served-from-cache)
    GET    /jobs             list jobs (?state=queued&limit=50)
    GET    /jobs/<id>        one job
    GET    /jobs/<id>/result the finished job's SimResult JSON
    DELETE /jobs/<id>        cancel a queued job
    POST   /jobs/claim       lease the best queued job to a worker
                             {worker_id, lease_seconds?} -> job or
                             {"job": null} when the queue is empty
    POST   /jobs/<id>/heartbeat
                             renew a worker's lease {worker_id,
                             lease_seconds?}; 409 when the lease is lost
    PUT    /jobs/<id>/result upload a worker's finished result
                             {worker_id, result, source?}; the daemon
                             caches it and marks the job done
    POST   /jobs/<id>/fail   report a worker-side failure {worker_id,
                             error} (retries with backoff like local)
    POST   /traces           upload {content | content_b64, name?, format?,
                             mode?} -> characterization sidecar (201 new,
                             200 when deduplicated by content hash)
    GET    /traces           list stored traces (characterizations)
    GET    /traces/<hash>    one trace's characterization (prefix ok)
    GET    /healthz          liveness + queue counts + uptime
    GET    /metrics          telemetry registry dump (service.*, runner.*,
                             trace.*, worker.*)
    GET    /metrics?format=prometheus
                             the same registry as Prometheus text
                             exposition (scrapeable by stock tooling)

Errors are ``{"error": <message>}`` with a meaningful status: 400 for a
bad submission, 401 for a missing/invalid bearer token on a mutating
route, 404 unknown job, 409 for result-of-unfinished, cancel-of-running
or a lost lease, 410 when a done job's cache entry was pruned, 429
(with ``Retry-After``) under rate limiting or queue backpressure.
Every error body is JSON — including the stdlib-generated ones
(unsupported method, unparseable request line), via the ``send_error``
override.

Auth: when the daemon holds a token (``REPRO_SERVICE_TOKEN`` or the
``--token`` flag), every mutating request (POST/PUT/DELETE) must carry
``Authorization: Bearer <token>``; comparison is constant-time.  Reads
stay open — metrics scrapers and dashboards need no secret.
"""

from __future__ import annotations

import hmac
import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs import prometheus
from repro.obs.tracing import span
from repro.service import jobstore
from repro.service.daemon import (
    IngestError,
    LeaseLostError,
    QueueFullError,
    SubmitError,
    WorkerProtocolError,
)
from repro.traces.store import TraceStoreError

if TYPE_CHECKING:
    from repro.service.daemon import ServiceDaemon

#: Maximum accepted request body, bytes (a job submission is tiny).
MAX_BODY_BYTES = 1 << 20

#: Result uploads carry a full SimResult (with time series) — allow more.
MAX_RESULT_BODY_BYTES = 16 << 20

#: Trace uploads carry whole trace files (base64 in JSON) — allow more.
MAX_TRACE_BODY_BYTES = 64 << 20

#: ``Retry-After`` hint on queue-full backpressure responses, seconds.
QUEUE_FULL_RETRY_AFTER = 2.0


class ApiError(Exception):
    """An HTTP-visible error: (status, message[, extra headers])."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the daemon; one instance per request."""

    daemon_ref: "ServiceDaemon" = None  # set by make_server on the subclass
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1.0"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; telemetry covers observability

    def _reply(
        self, status: int, payload: Any, headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._reply_bytes(status, body, "application/json", headers)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        self._reply_bytes(status, text.encode("utf-8"), content_type)

    def _reply_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def send_error(self, code, message=None, explain=None) -> None:  # noqa: A002
        """JSON error bodies even for stdlib-raised errors.

        ``BaseHTTPRequestHandler`` calls this itself for unsupported
        methods (``PUT /metrics`` → 501) and malformed request lines;
        the default implementation writes an HTML page, which no JSON
        client of this API expects.
        """
        self._reply(code, {"error": message or self.responses.get(code, ("", ""))[0]})

    def _body(self, max_bytes: int = MAX_BODY_BYTES) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > max_bytes:
            raise ApiError(413, "request body too large")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}") from None

    def _route(self) -> Tuple[str, Optional[str], Optional[str], Any]:
        """``(collection, job_id, subresource, query)`` for this request."""
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        collection = parts[0] if parts else ""
        job_id = parts[1] if len(parts) > 1 else None
        sub = parts[2] if len(parts) > 2 else None
        if len(parts) > 3:
            raise ApiError(404, f"no route for {split.path!r}")
        return collection, job_id, sub, query

    def _job(self, job_id: str) -> jobstore.Job:
        try:
            return self.daemon_ref.store.find(job_id)
        except KeyError as exc:
            raise ApiError(404, str(exc)) from None

    def _check_rate_limit(self, collection: str) -> None:
        """Token-bucket limiting per client address (``/healthz`` exempt)."""
        if collection == "healthz":
            return
        client = self.client_address[0] if self.client_address else "?"
        allowed, retry_after = self.daemon_ref.limiter.allow(client)
        if not allowed:
            raise ApiError(
                429,
                "rate limit exceeded; slow down",
                headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"},
            )

    def _check_auth(self, method: str) -> None:
        """Constant-time bearer-token check on mutating methods."""
        token = self.daemon_ref.token
        if token is None or method == "GET":
            return
        header = self.headers.get("Authorization") or ""
        presented = header[7:] if header.startswith("Bearer ") else ""
        if not hmac.compare_digest(presented.encode(), token.encode()):
            raise ApiError(
                401,
                "missing or invalid bearer token",
                headers={"WWW-Authenticate": "Bearer"},
            )

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        self._status = 0
        with span("http.request", category="http", method=method, path=self.path):
            try:
                collection, job_id, sub, query = self._route()
                self._check_rate_limit(collection)
                self._check_auth(method)
                handler = getattr(self, f"_{method}_{collection}", None)
                if handler is None:
                    # PUT exists solely for /jobs/<id>/result; elsewhere
                    # it stays 501 exactly as before do_PUT existed.
                    if method == "PUT" and collection != "jobs":
                        raise ApiError(
                            501, f"method PUT not supported on /{collection}"
                        )
                    raise ApiError(404, f"no route for {method} {self.path!r}")
                handler(job_id, sub, query)
            except ApiError as exc:
                self._reply(exc.status, {"error": exc.message}, exc.headers)
            except Exception as exc:  # noqa: BLE001 — never kill the server thread
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        elapsed = time.perf_counter() - started
        daemon = self.daemon_ref
        if daemon.stats.http_request_seconds is not None:
            daemon.stats.http_request_seconds.observe(elapsed)
        daemon.log.event(
            "http_request",
            method=method,
            path=self.path,
            status=self._status,
            seconds=round(elapsed, 6),
        )

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- routes ----------------------------------------------------------

    def _POST_jobs(self, job_id, sub, query) -> None:  # noqa: N802
        if job_id == "claim" and sub is None:
            self._claim_job()
            return
        if job_id is not None and sub == "heartbeat":
            self._heartbeat_job(job_id)
            return
        if job_id is not None and sub == "fail":
            self._fail_job(job_id)
            return
        if job_id is not None or sub is not None:
            raise ApiError(404, "POST only to /jobs, /jobs/claim, "
                                "/jobs/<id>/heartbeat, or /jobs/<id>/fail")
        try:
            job, created = self.daemon_ref.submit(self._body())
        except QueueFullError as exc:
            raise ApiError(
                429,
                str(exc),
                headers={"Retry-After": f"{QUEUE_FULL_RETRY_AFTER:.3f}"},
            ) from None
        except SubmitError as exc:
            raise ApiError(400, str(exc)) from None
        self._reply(201 if created else 200, {"job": job.as_dict(), "created": created})

    def _claim_job(self) -> None:
        try:
            job = self.daemon_ref.claim_job(self._body())
        except WorkerProtocolError as exc:
            raise ApiError(400, str(exc)) from None
        self._reply(200, {"job": job.as_dict() if job is not None else None})

    def _heartbeat_job(self, job_id: str) -> None:
        try:
            job = self.daemon_ref.heartbeat_job(job_id, self._body())
        except WorkerProtocolError as exc:
            raise ApiError(400, str(exc)) from None
        except KeyError as exc:
            raise ApiError(404, str(exc)) from None
        except LeaseLostError as exc:
            raise ApiError(409, str(exc)) from None
        self._reply(200, {"job": job.as_dict()})

    def _fail_job(self, job_id: str) -> None:
        try:
            job = self.daemon_ref.remote_fail(job_id, self._body())
        except WorkerProtocolError as exc:
            raise ApiError(400, str(exc)) from None
        except KeyError as exc:
            raise ApiError(404, str(exc)) from None
        except LeaseLostError as exc:
            raise ApiError(409, str(exc)) from None
        self._reply(200, {"job": job.as_dict()})

    def _PUT_jobs(self, job_id, sub, query) -> None:  # noqa: N802
        if job_id is None or sub != "result":
            raise ApiError(404, "PUT only to /jobs/<id>/result")
        try:
            job = self.daemon_ref.remote_result(
                job_id, self._body(max_bytes=MAX_RESULT_BODY_BYTES)
            )
        except WorkerProtocolError as exc:
            raise ApiError(400, str(exc)) from None
        except KeyError as exc:
            raise ApiError(404, str(exc)) from None
        except LeaseLostError as exc:
            raise ApiError(409, str(exc)) from None
        self._reply(200, {"job": job.as_dict()})

    def _GET_jobs(self, job_id, sub, query) -> None:  # noqa: N802
        if job_id is None:
            state = (query.get("state") or [None])[0]
            if state is not None and state not in jobstore.STATES:
                raise ApiError(400, f"unknown state {state!r}")
            limit = int((query.get("limit") or ["100"])[0])
            jobs = self.daemon_ref.store.list_jobs(state=state, limit=limit)
            self._reply(200, {"jobs": [job.as_dict() for job in jobs]})
            return
        job = self._job(job_id)
        if sub is None:
            self._reply(200, {"job": job.as_dict()})
            return
        if sub != "result":
            raise ApiError(404, f"no subresource {sub!r}")
        if job.state != jobstore.DONE:
            raise ApiError(409, f"job {job.id} is {job.state}, not done")
        result = self.daemon_ref.result_for(job)
        if result is None:
            raise ApiError(410, f"result for job {job.id} evicted from cache; resubmit")
        self._reply(200, {"job_id": job.id, "result": result.to_json_dict()})

    def _DELETE_jobs(self, job_id, sub, query) -> None:  # noqa: N802
        if job_id is None or sub is not None:
            raise ApiError(404, "DELETE /jobs/<id>")
        job = self._job(job_id)
        if self.daemon_ref.store.cancel(job.id):
            self.daemon_ref.stats.cancelled += 1
            self._reply(200, {"job": self.daemon_ref.store.get(job.id).as_dict()})
            return
        raise ApiError(409, f"job {job.id} is {job.state}; only queued jobs cancel")

    def _POST_traces(self, job_id, sub, query) -> None:  # noqa: N802
        if job_id is not None or sub is not None:
            raise ApiError(404, "POST only to /traces")
        try:
            info, created = self.daemon_ref.ingest_trace(
                self._body(max_bytes=MAX_TRACE_BODY_BYTES)
            )
        except IngestError as exc:
            raise ApiError(400, str(exc)) from None
        self._reply(
            201 if created else 200,
            {"trace": info.to_json_dict(), "created": created},
        )

    def _GET_traces(self, job_id, sub, query) -> None:  # noqa: N802
        if sub is not None:
            raise ApiError(404, f"no subresource {sub!r}")
        if job_id is None:
            infos = self.daemon_ref.traces.list()
            self._reply(200, {"traces": [info.to_json_dict() for info in infos]})
            return
        try:
            info = self.daemon_ref.traces.info(job_id)
        except TraceStoreError as exc:
            raise ApiError(404, str(exc)) from None
        self._reply(200, {"trace": info.to_json_dict()})

    def _GET_healthz(self, job_id, sub, query) -> None:  # noqa: N802
        if job_id is not None or sub is not None:
            raise ApiError(404, f"no route for {self.path!r}; try GET /healthz")
        self._reply(200, self.daemon_ref.health())

    def _GET_metrics(self, job_id, sub, query) -> None:  # noqa: N802
        if job_id is not None or sub is not None:
            raise ApiError(404, f"no route for {self.path!r}; try GET /metrics")
        fmt = (query.get("format") or ["json"])[0]
        if fmt == "prometheus":
            self._reply_text(
                200,
                prometheus.prometheus_exposition(self.daemon_ref.registry),
                prometheus.CONTENT_TYPE,
            )
            return
        if fmt != "json":
            raise ApiError(400, f"unknown format {fmt!r}; choose json or prometheus")
        self._reply(200, {"metrics": self.daemon_ref.metrics()})


def make_server(
    daemon: "ServiceDaemon", host: str, port: int
) -> ThreadingHTTPServer:
    """A threaded HTTP server bound to ``daemon`` (``port=0`` picks one)."""
    handler = type("BoundHandler", (_Handler,), {"daemon_ref": daemon})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


__all__ = [
    "ApiError",
    "MAX_BODY_BYTES",
    "MAX_RESULT_BODY_BYTES",
    "MAX_TRACE_BODY_BYTES",
    "QUEUE_FULL_RETRY_AFTER",
    "make_server",
]
