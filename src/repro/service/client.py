"""urllib-based client for the job-queue daemon's HTTP API.

The CLI verbs (``repro submit/jobs/result/cancel/wait``) are thin
wrappers over :class:`ServiceClient`; scripts can use it directly::

    client = ServiceClient("http://127.0.0.1:8035")
    job = client.submit("lbm06", "dynamic_ptmc", ops=4000, warmup=6000)
    done = client.wait(job["id"], timeout=300)
    result = client.result(job["id"])          # a SimResult
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.sim.results import SimResult

#: Environment variable naming the daemon to talk to.
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

#: Default daemon address (must match the CLI's ``serve`` default port).
DEFAULT_URL = "http://127.0.0.1:8035"


def default_url() -> str:
    """``$REPRO_SERVICE_URL`` or the well-known local daemon address."""
    return os.environ.get(SERVICE_URL_ENV) or DEFAULT_URL


class ServiceError(RuntimeError):
    """The daemon answered with an error (or could not be reached).

    ``retry_after`` carries the daemon's ``Retry-After`` hint (seconds)
    on 429 backpressure/rate-limit answers, ``None`` otherwise.
    """

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class JobFailed(ServiceError):
    """Waited-on job reached a terminal state other than ``done``."""

    def __init__(self, job: Dict[str, Any]) -> None:
        self.job = job
        super().__init__(
            409, f"job {job['id']} ended {job['state']}: {job.get('error')}"
        )


class ServiceClient:
    """Talks JSON to one daemon; raises :class:`ServiceError` on failure.

    ``token`` (default ``$REPRO_SERVICE_TOKEN``) is sent as a bearer
    token on every request; daemons without auth ignore it.
    """

    def __init__(
        self,
        url: Optional[str] = None,
        timeout: float = 10.0,
        token: Optional[str] = None,
    ) -> None:
        self.url = (url or default_url()).rstrip("/")
        self.timeout = timeout
        self.token = (
            token if token is not None
            else os.environ.get("REPRO_SERVICE_TOKEN") or None
        )

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> Any:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except Exception:  # noqa: BLE001 — error body is best-effort
                message = str(exc)
            retry_after = None
            raw = exc.headers.get("Retry-After") if exc.headers else None
            if raw is not None:
                try:
                    retry_after = float(raw)
                except ValueError:
                    pass
            raise ServiceError(exc.code, message, retry_after=retry_after) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.url}: {exc.reason}") from None

    # -- verbs -----------------------------------------------------------

    def submit(
        self,
        workload: str,
        design: str,
        ops: Optional[int] = None,
        warmup: Optional[int] = None,
        llc_policy: Optional[str] = None,
        trace_limit: Optional[int] = None,
        trace_loop: Optional[bool] = None,
        trace_seed: Optional[int] = None,
        priority: int = 0,
        max_attempts: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit one job; returns the job dict (``job["created"]`` set).

        ``workload`` may be a roster name or ``trace:<hash>``; the
        ``trace_*`` knobs apply only to the latter.
        """
        config: Dict[str, Any] = {}
        if ops is not None:
            config["ops_per_core"] = ops
        if warmup is not None:
            config["warmup_ops"] = warmup
        if llc_policy is not None:
            config["llc_policy"] = llc_policy
        if trace_limit is not None:
            config["trace_limit"] = trace_limit
        if trace_loop is not None:
            config["trace_loop"] = trace_loop
        if trace_seed is not None:
            config["trace_seed"] = trace_seed
        payload: Dict[str, Any] = {
            "workload": workload,
            "design": design,
            "config": config,
            "priority": priority,
        }
        if max_attempts is not None:
            payload["max_attempts"] = max_attempts
        if timeout is not None:
            payload["timeout"] = timeout
        answer = self._request("POST", "/jobs", payload)
        job = answer["job"]
        job["created"] = answer["created"]
        return job

    def jobs(self, state: Optional[str] = None, limit: int = 100) -> List[Dict[str, Any]]:
        query = f"?limit={limit}" + (f"&state={state}" if state else "")
        return self._request("GET", f"/jobs{query}")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> SimResult:
        answer = self._request("GET", f"/jobs/{job_id}/result")
        return SimResult.from_json_dict(answer["result"])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")["job"]

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; raise :class:`JobFailed` unless done."""
        deadline = (time.monotonic() + timeout) if timeout else None
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if job["state"] in ("failed", "cancelled"):
                raise JobFailed(job)
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(408, f"timed out waiting for job {job_id}")
            time.sleep(poll)

    # -- worker protocol (used by ``repro worker``) ----------------------

    def claim(
        self, worker_id: str, lease_seconds: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Lease the best queued job; ``None`` when the queue is empty."""
        payload: Dict[str, Any] = {"worker_id": worker_id}
        if lease_seconds is not None:
            payload["lease_seconds"] = lease_seconds
        return self._request("POST", "/jobs/claim", payload)["job"]

    def heartbeat(
        self,
        job_id: str,
        worker_id: str,
        lease_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Renew a lease; raises :class:`ServiceError` (409) when lost."""
        payload: Dict[str, Any] = {"worker_id": worker_id}
        if lease_seconds is not None:
            payload["lease_seconds"] = lease_seconds
        return self._request("POST", f"/jobs/{job_id}/heartbeat", payload)["job"]

    def upload_result(
        self,
        job_id: str,
        worker_id: str,
        result: SimResult,
        source: str = "remote",
    ) -> Dict[str, Any]:
        """Replicate a finished result to the daemon's cache; job -> done."""
        payload = {
            "worker_id": worker_id,
            "result": result.to_json_dict(),
            "source": source,
        }
        return self._request("PUT", f"/jobs/{job_id}/result", payload)["job"]

    def fail_job(self, job_id: str, worker_id: str, error: str) -> Dict[str, Any]:
        """Report a worker-side failure (daemon applies its retry policy)."""
        payload = {"worker_id": worker_id, "error": error}
        return self._request("POST", f"/jobs/{job_id}/fail", payload)["job"]

    def upload_trace(
        self,
        data: bytes,
        name: str = "",
        fmt: str = "auto",
        mode: str = "strict",
    ) -> Dict[str, Any]:
        """Upload raw trace bytes (text/binary/gzip); returns the sidecar.

        The answer dict is the trace characterization with ``created``
        merged in (``False`` when deduplicated by content hash).
        """
        import base64

        payload = {
            "content_b64": base64.b64encode(data).decode("ascii"),
            "name": name,
            "format": fmt,
            "mode": mode,
        }
        answer = self._request("POST", "/traces", payload)
        trace = answer["trace"]
        trace["created"] = answer["created"]
        return trace

    def traces(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/traces")["traces"]

    def trace_info(self, hash_or_prefix: str) -> Dict[str, Any]:
        return self._request("GET", f"/traces/{hash_or_prefix}")["trace"]

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")["metrics"]


__all__ = [
    "DEFAULT_URL",
    "JobFailed",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "ServiceError",
    "default_url",
]
