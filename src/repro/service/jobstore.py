"""SQLite-backed durable job store for the simulation service.

One row per submitted simulation job.  The store is the service's only
durable state: results themselves live in the content-addressed disk
cache (:mod:`repro.sim.diskcache`), keyed by the same ``cache_key`` the
offline runner uses, so the daemon and CLI sweeps share one result
store and a job row only needs to remember its key.

State machine::

    queued ──claim──▶ running ──finish──▶ done
      ▲                 │
      │   retry/drain/  ├──fail (attempts exhausted)──▶ failed
      └─lease expiry────┘
    queued ──cancel──▶ cancelled

Identical jobs deduplicate on their cache key: a partial unique index
over active rows guarantees at most one ``queued``/``running`` job per
(workload, design, config) identity, and :meth:`JobStore.submit`
returns the existing row instead of inserting a twin (raising the
surviving row's priority when the new submission outranks it).

Claims are *leases*: :meth:`JobStore.claim` records which worker took
the job (``worker_id``) and until when the claim is valid
(``lease_until``).  Workers renew via :meth:`JobStore.heartbeat`; a
reaper (:meth:`JobStore.reap_expired`) continuously re-queues jobs
whose lease lapsed — a crashed or partitioned worker loses its jobs
within one lease interval instead of holding them forever.  Owner
guards on :meth:`finish`/:meth:`fail` make a worker that lost its
lease unable to complete a job that has since been handed elsewhere.

The store is safe for concurrent use from the HTTP handler threads,
the scheduler thread, and the reaper thread of one daemon process (one
connection guarded by a lock, WAL journal, ``BEGIN IMMEDIATE`` claims).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
#: States that still occupy the dedup slot for a cache key.
ACTIVE_STATES = (QUEUED, RUNNING)
#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Environment variable overriding the default job database location.
SERVICE_DB_ENV = "REPRO_SERVICE_DB"


def default_db_path() -> Path:
    """``$REPRO_SERVICE_DB``, else ``$XDG_CACHE_HOME/repro-ptmc/service.db``."""
    override = os.environ.get(SERVICE_DB_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or (Path.home() / ".cache")
    return Path(base) / "repro-ptmc" / "service.db"


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id           TEXT PRIMARY KEY,
    key          TEXT NOT NULL,
    workload     TEXT NOT NULL,
    design       TEXT NOT NULL,
    config_json  TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    state        TEXT NOT NULL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    timeout      REAL,
    not_before   REAL NOT NULL DEFAULT 0,
    source       TEXT,
    error        TEXT,
    created_at   REAL NOT NULL,
    updated_at   REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    worker_id    TEXT,
    lease_until  REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim
    ON jobs (state, not_before, priority, created_at);
CREATE UNIQUE INDEX IF NOT EXISTS idx_jobs_active_key
    ON jobs (key) WHERE state IN ('queued', 'running');
"""

#: Columns added after the v1 schema shipped; applied by ALTER TABLE on
#: databases created before them (CREATE TABLE IF NOT EXISTS is a no-op
#: there).
_MIGRATIONS = (
    ("worker_id", "TEXT"),
    ("lease_until", "REAL"),
)

@dataclasses.dataclass
class Job:
    """One job row, as seen by the scheduler, API, and CLI."""

    id: str
    key: str
    workload: str
    design: str
    config: Dict[str, Any]
    priority: int
    state: str
    attempts: int
    max_attempts: int
    timeout: Optional[float]
    not_before: float
    source: Optional[str]
    error: Optional[str]
    created_at: float
    updated_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    worker_id: Optional[str] = None
    lease_until: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (what ``GET /jobs/<id>`` returns)."""
        return dataclasses.asdict(self)


def _row_to_job(row: sqlite3.Row) -> Job:
    return Job(
        id=row["id"],
        key=row["key"],
        workload=row["workload"],
        design=row["design"],
        config=json.loads(row["config_json"]),
        priority=row["priority"],
        state=row["state"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        timeout=row["timeout"],
        not_before=row["not_before"],
        source=row["source"],
        error=row["error"],
        created_at=row["created_at"],
        updated_at=row["updated_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
        worker_id=row["worker_id"],
        lease_until=row["lease_until"],
    )


def _escape_like(prefix: str) -> str:
    """Escape LIKE wildcards in a user-supplied prefix (``ESCAPE '\\'``)."""
    return (
        prefix.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
    )


class JobStore:
    """Durable queue of simulation jobs in one SQLite file."""

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else default_db_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            existing = {
                row["name"]
                for row in self._conn.execute("PRAGMA table_info(jobs)")
            }
            for column, decl in _MIGRATIONS:
                if column not in existing:
                    self._conn.execute(
                        f"ALTER TABLE jobs ADD COLUMN {column} {decl}"
                    )
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- submission ------------------------------------------------------

    def submit(
        self,
        workload: str,
        design: str,
        key: str,
        config: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        max_attempts: int = 3,
        timeout: Optional[float] = None,
        state: str = QUEUED,
        source: Optional[str] = None,
    ) -> "tuple[Job, bool]":
        """Insert a job, deduplicating on its cache key.

        Returns ``(job, created)``: when an active (queued/running) job
        already exists for ``key`` the existing row is returned with
        ``created=False`` — after raising its priority to
        ``MAX(existing, new)``, so joining a higher-priority submission
        never leaves the surviving row stuck at its old rank.
        ``state=DONE`` records an instantly-complete job (the submit
        path found a cached result).
        """
        if state not in (QUEUED, DONE):
            raise ValueError(f"jobs are submitted queued or done, not {state!r}")
        now = time.time()
        job_id = uuid.uuid4().hex
        with self._lock:
            if state == QUEUED:
                existing = self._conn.execute(
                    "SELECT * FROM jobs WHERE key = ? AND state IN (?, ?)",
                    (key, QUEUED, RUNNING),
                ).fetchone()
                if existing is not None:
                    if priority > existing["priority"]:
                        self._conn.execute(
                            "UPDATE jobs SET priority = ?, updated_at = ? "
                            "WHERE id = ?",
                            (priority, now, existing["id"]),
                        )
                        self._conn.commit()
                        return self.get(existing["id"]), False
                    return _row_to_job(existing), False
            self._conn.execute(
                "INSERT INTO jobs (id, key, workload, design, config_json, "
                "priority, state, attempts, max_attempts, timeout, not_before, "
                "source, created_at, updated_at, finished_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, 0, ?, ?, 0, ?, ?, ?, ?)",
                (
                    job_id,
                    key,
                    workload,
                    design,
                    json.dumps(config or {}, sort_keys=True),
                    priority,
                    state,
                    max_attempts,
                    timeout,
                    source,
                    now,
                    now,
                    now if state == DONE else None,
                ),
            )
            self._conn.commit()
        return self.get(job_id), True

    # -- scheduler side --------------------------------------------------

    def claim(
        self,
        now: Optional[float] = None,
        worker_id: Optional[str] = None,
        lease_seconds: Optional[float] = None,
    ) -> Optional[Job]:
        """Atomically lease the best eligible queued job to one worker.

        Eligibility honours backoff (``not_before``); ordering is
        priority (higher first), then FIFO on submission time.  The
        claimed row records ``worker_id`` and, when ``lease_seconds``
        is given, ``lease_until = now + lease_seconds`` — the deadline
        by which the worker must :meth:`heartbeat` or lose the job to
        :meth:`reap_expired`.  A claim without a lease (legacy callers)
        is never reaped.
        """
        now = time.time() if now is None else now
        lease_until = (now + lease_seconds) if lease_seconds else None
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT id FROM jobs WHERE state = ? AND not_before <= ? "
                    "ORDER BY priority DESC, created_at ASC, id ASC LIMIT 1",
                    (QUEUED, now),
                ).fetchone()
                if row is None:
                    self._conn.execute("ROLLBACK")
                    return None
                self._conn.execute(
                    "UPDATE jobs SET state = ?, attempts = attempts + 1, "
                    "started_at = ?, updated_at = ?, worker_id = ?, "
                    "lease_until = ? WHERE id = ?",
                    (RUNNING, now, now, worker_id, lease_until, row["id"]),
                )
                self._conn.commit()
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            return self.get(row["id"])

    def heartbeat(
        self,
        job_id: str,
        worker_id: Optional[str] = None,
        lease_seconds: float = 30.0,
        now: Optional[float] = None,
    ) -> bool:
        """Renew one running job's lease; ``False`` means the lease is lost.

        The renewal is owner-guarded: a worker whose job was reaped (and
        possibly re-leased to another worker) gets ``False`` back and
        must abandon the attempt — its eventual ``finish``/``fail`` will
        be rejected by the same guard.
        """
        now = time.time() if now is None else now
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET lease_until = ?, updated_at = ? "
                "WHERE id = ? AND state = ? AND worker_id IS ?",
                (now + lease_seconds, now, job_id, RUNNING, worker_id),
            )
            self._conn.commit()
            return cur.rowcount > 0

    def reap_expired(self, now: Optional[float] = None) -> List[Job]:
        """Re-queue (or terminally fail) every job whose lease lapsed.

        The claim's attempt is *not* refunded — a job whose worker keeps
        dying must still exhaust its bounded retries.  A job already on
        its last attempt fails terminally here rather than looping.
        Returns the reaped jobs as they were *before* reaping (so the
        caller can see which worker lost each lease).
        """
        now = time.time() if now is None else now
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state = ? "
                "AND lease_until IS NOT NULL AND lease_until < ?",
                (RUNNING, now),
            ).fetchall()
            expired = [_row_to_job(row) for row in rows]
            for job in expired:
                if job.attempts >= job.max_attempts:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, error = ?, updated_at = ?, "
                        "finished_at = ?, lease_until = NULL "
                        "WHERE id = ? AND state = ?",
                        (
                            FAILED,
                            f"lease expired (worker {job.worker_id or '?'} "
                            f"presumed dead; attempts exhausted)",
                            now,
                            now,
                            job.id,
                            RUNNING,
                        ),
                    )
                else:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, not_before = 0, "
                        "started_at = NULL, worker_id = NULL, "
                        "lease_until = NULL, updated_at = ? "
                        "WHERE id = ? AND state = ?",
                        (QUEUED, now, job.id, RUNNING),
                    )
            self._conn.commit()
        return expired

    def finish(
        self, job_id: str, source: str, worker_id: Optional[str] = None
    ) -> bool:
        """``running -> done`` (result already persisted in the disk cache).

        When ``worker_id`` is given the transition is owner-guarded:
        ``False`` means the caller no longer holds the lease (the job
        was reaped and re-queued or handed to another worker).
        """
        return self._transition(
            job_id, RUNNING, DONE, source=source, worker_id=worker_id
        )

    def fail(
        self,
        job_id: str,
        error: str,
        retry_delay: Optional[float] = None,
        worker_id: Optional[str] = None,
    ) -> bool:
        """``running -> failed``, or back to ``queued`` after ``retry_delay``.

        The retrying path clears the claim bookkeeping (``started_at``,
        ``worker_id``, ``lease_until``) exactly like requeue/reap do, so
        a re-queued row never carries a stale claim.  Owner-guarded when
        ``worker_id`` is given (see :meth:`finish`).
        """
        now = time.time()
        guard = "" if worker_id is None else " AND worker_id IS ?"
        guard_args = () if worker_id is None else (worker_id,)
        with self._lock:
            if retry_delay is None:
                cur = self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, updated_at = ?, "
                    "finished_at = ?, lease_until = NULL "
                    f"WHERE id = ? AND state = ?{guard}",
                    (FAILED, error, now, now, job_id, RUNNING, *guard_args),
                )
            else:
                cur = self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, not_before = ?, "
                    "started_at = NULL, worker_id = NULL, lease_until = NULL, "
                    f"updated_at = ? WHERE id = ? AND state = ?{guard}",
                    (QUEUED, error, now + retry_delay, now, job_id, RUNNING,
                     *guard_args),
                )
            self._conn.commit()
            return cur.rowcount > 0

    def requeue(self, job_id: str, refund_attempt: bool = False) -> None:
        """``running -> queued`` (graceful drain; optionally refund the claim)."""
        now = time.time()
        refund = 1 if refund_attempt else 0
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, not_before = 0, started_at = NULL, "
                "worker_id = NULL, lease_until = NULL, "
                "attempts = MAX(attempts - ?, 0), updated_at = ? "
                "WHERE id = ? AND state = ?",
                (QUEUED, refund, now, job_id, RUNNING),
            )
            self._conn.commit()

    def recover_orphans(self, only_leaseless: bool = False) -> List[Job]:
        """Re-queue ``running`` jobs abandoned by a crash (daemon boot).

        ``only_leaseless=True`` restricts recovery to rows claimed
        without a lease (legacy lease-less schedulers): *leased* rows
        are left for the continuous reaper (:meth:`reap_expired`), since
        a live remote worker may still legitimately hold them across a
        daemon restart.  Unlike a graceful drain, the claim's attempt is
        *not* refunded — a job that keeps crashing the daemon must still
        exhaust its bounded retries instead of looping forever.
        """
        now = time.time()
        lease_filter = " AND lease_until IS NULL" if only_leaseless else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT id FROM jobs WHERE state = ?{lease_filter}", (RUNNING,)
            ).fetchall()
            ids = [row["id"] for row in rows]
            self._conn.execute(
                "UPDATE jobs SET state = ?, not_before = 0, started_at = NULL, "
                "worker_id = NULL, lease_until = NULL, "
                f"updated_at = ? WHERE state = ?{lease_filter}",
                (QUEUED, now, RUNNING),
            )
            self._conn.commit()
        return [self.get(job_id) for job_id in ids]

    # -- client side -----------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/terminal jobs are left alone."""
        now = time.time()
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state = ?, updated_at = ?, finished_at = ? "
                "WHERE id = ? AND state = ?",
                (CANCELLED, now, now, job_id, QUEUED),
            )
            self._conn.commit()
            return cur.rowcount > 0

    def active_for_key(self, key: str) -> Optional[Job]:
        """The queued/running job occupying ``key``'s dedup slot, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE key = ? AND state IN (?, ?)",
                (key, QUEUED, RUNNING),
            ).fetchone()
        return _row_to_job(row) if row is not None else None

    def get(self, job_id: str) -> Job:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id!r}")
        return _row_to_job(row)

    def find(self, job_id_prefix: str) -> Job:
        """Exact-id lookup, falling back to a unique id prefix (CLI sugar).

        The prefix is user input, so LIKE metacharacters (``%``, ``_``)
        are escaped — ``repro wait '%'`` must not match every job.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ? OR id LIKE ? ESCAPE '\\' "
                "LIMIT 3",
                (job_id_prefix, _escape_like(job_id_prefix) + "%"),
            ).fetchall()
        if not rows:
            raise KeyError(f"no job {job_id_prefix!r}")
        if len(rows) > 1:
            raise KeyError(f"ambiguous job id prefix {job_id_prefix!r}")
        return _row_to_job(rows[0])

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[Job]:
        """Most recently updated first, optionally filtered by state."""
        with self._lock:
            if state is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY updated_at DESC LIMIT ?",
                    (limit,),
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE state = ? "
                    "ORDER BY updated_at DESC LIMIT ?",
                    (state, limit),
                ).fetchall()
        return [_row_to_job(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Row count per state (zero-filled over all states)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    # -- internals -------------------------------------------------------

    def _transition(
        self,
        job_id: str,
        from_state: str,
        to_state: str,
        source: Optional[str],
        worker_id: Optional[str] = None,
    ) -> bool:
        now = time.time()
        guard = "" if worker_id is None else " AND worker_id IS ?"
        guard_args = () if worker_id is None else (worker_id,)
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state = ?, source = ?, updated_at = ?, "
                "finished_at = ?, lease_until = NULL "
                f"WHERE id = ? AND state = ?{guard}",
                (to_state, source, now, now, job_id, from_state, *guard_args),
            )
            self._conn.commit()
            return cur.rowcount > 0


__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "SERVICE_DB_ENV",
    "STATES",
    "TERMINAL_STATES",
    "default_db_path",
]
