"""SQLite-backed durable job store for the simulation service.

One row per submitted simulation job.  The store is the service's only
durable state: results themselves live in the content-addressed disk
cache (:mod:`repro.sim.diskcache`), keyed by the same ``cache_key`` the
offline runner uses, so the daemon and CLI sweeps share one result
store and a job row only needs to remember its key.

State machine::

    queued ──claim──▶ running ──finish──▶ done
      ▲                 │
      │   retry/drain/  ├──fail (attempts exhausted)──▶ failed
      └───orphan────────┘
    queued ──cancel──▶ cancelled

Identical jobs deduplicate on their cache key: a partial unique index
over active rows guarantees at most one ``queued``/``running`` job per
(workload, design, config) identity, and :meth:`JobStore.submit`
returns the existing row instead of inserting a twin.

The store is safe for concurrent use from the HTTP handler threads and
the scheduler thread of one daemon process (one connection guarded by a
lock, WAL journal, ``BEGIN IMMEDIATE`` claims).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
#: States that still occupy the dedup slot for a cache key.
ACTIVE_STATES = (QUEUED, RUNNING)
#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Environment variable overriding the default job database location.
SERVICE_DB_ENV = "REPRO_SERVICE_DB"


def default_db_path() -> Path:
    """``$REPRO_SERVICE_DB``, else ``$XDG_CACHE_HOME/repro-ptmc/service.db``."""
    override = os.environ.get(SERVICE_DB_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or (Path.home() / ".cache")
    return Path(base) / "repro-ptmc" / "service.db"


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id           TEXT PRIMARY KEY,
    key          TEXT NOT NULL,
    workload     TEXT NOT NULL,
    design       TEXT NOT NULL,
    config_json  TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    state        TEXT NOT NULL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    timeout      REAL,
    not_before   REAL NOT NULL DEFAULT 0,
    source       TEXT,
    error        TEXT,
    created_at   REAL NOT NULL,
    updated_at   REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim
    ON jobs (state, not_before, priority, created_at);
CREATE UNIQUE INDEX IF NOT EXISTS idx_jobs_active_key
    ON jobs (key) WHERE state IN ('queued', 'running');
"""

@dataclasses.dataclass
class Job:
    """One job row, as seen by the scheduler, API, and CLI."""

    id: str
    key: str
    workload: str
    design: str
    config: Dict[str, Any]
    priority: int
    state: str
    attempts: int
    max_attempts: int
    timeout: Optional[float]
    not_before: float
    source: Optional[str]
    error: Optional[str]
    created_at: float
    updated_at: float
    started_at: Optional[float]
    finished_at: Optional[float]

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (what ``GET /jobs/<id>`` returns)."""
        return dataclasses.asdict(self)


def _row_to_job(row: sqlite3.Row) -> Job:
    return Job(
        id=row["id"],
        key=row["key"],
        workload=row["workload"],
        design=row["design"],
        config=json.loads(row["config_json"]),
        priority=row["priority"],
        state=row["state"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        timeout=row["timeout"],
        not_before=row["not_before"],
        source=row["source"],
        error=row["error"],
        created_at=row["created_at"],
        updated_at=row["updated_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
    )


class JobStore:
    """Durable queue of simulation jobs in one SQLite file."""

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else default_db_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- submission ------------------------------------------------------

    def submit(
        self,
        workload: str,
        design: str,
        key: str,
        config: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        max_attempts: int = 3,
        timeout: Optional[float] = None,
        state: str = QUEUED,
        source: Optional[str] = None,
    ) -> "tuple[Job, bool]":
        """Insert a job, deduplicating on its cache key.

        Returns ``(job, created)``: when an active (queued/running) job
        already exists for ``key`` the existing row is returned with
        ``created=False``.  ``state=DONE`` records an instantly-complete
        job (the submit path found a cached result).
        """
        if state not in (QUEUED, DONE):
            raise ValueError(f"jobs are submitted queued or done, not {state!r}")
        now = time.time()
        job_id = uuid.uuid4().hex
        with self._lock:
            if state == QUEUED:
                existing = self._conn.execute(
                    "SELECT * FROM jobs WHERE key = ? AND state IN (?, ?)",
                    (key, QUEUED, RUNNING),
                ).fetchone()
                if existing is not None:
                    return _row_to_job(existing), False
            self._conn.execute(
                "INSERT INTO jobs (id, key, workload, design, config_json, "
                "priority, state, attempts, max_attempts, timeout, not_before, "
                "source, created_at, updated_at, finished_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, 0, ?, ?, 0, ?, ?, ?, ?)",
                (
                    job_id,
                    key,
                    workload,
                    design,
                    json.dumps(config or {}, sort_keys=True),
                    priority,
                    state,
                    max_attempts,
                    timeout,
                    source,
                    now,
                    now,
                    now if state == DONE else None,
                ),
            )
            self._conn.commit()
        return self.get(job_id), True

    # -- scheduler side --------------------------------------------------

    def claim(self, now: Optional[float] = None) -> Optional[Job]:
        """Atomically move the best eligible queued job to ``running``.

        Eligibility honours backoff (``not_before``); ordering is
        priority (higher first), then FIFO on submission time.
        """
        now = time.time() if now is None else now
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT id FROM jobs WHERE state = ? AND not_before <= ? "
                    "ORDER BY priority DESC, created_at ASC, id ASC LIMIT 1",
                    (QUEUED, now),
                ).fetchone()
                if row is None:
                    self._conn.execute("ROLLBACK")
                    return None
                self._conn.execute(
                    "UPDATE jobs SET state = ?, attempts = attempts + 1, "
                    "started_at = ?, updated_at = ? WHERE id = ?",
                    (RUNNING, now, now, row["id"]),
                )
                self._conn.commit()
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            return self.get(row["id"])

    def finish(self, job_id: str, source: str) -> None:
        """``running -> done`` (result already persisted in the disk cache)."""
        self._transition(job_id, RUNNING, DONE, source=source)

    def fail(
        self,
        job_id: str,
        error: str,
        retry_delay: Optional[float] = None,
    ) -> None:
        """``running -> failed``, or back to ``queued`` after ``retry_delay``."""
        now = time.time()
        with self._lock:
            if retry_delay is None:
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, updated_at = ?, "
                    "finished_at = ? WHERE id = ? AND state = ?",
                    (FAILED, error, now, now, job_id, RUNNING),
                )
            else:
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, not_before = ?, "
                    "updated_at = ? WHERE id = ? AND state = ?",
                    (QUEUED, error, now + retry_delay, now, job_id, RUNNING),
                )
            self._conn.commit()

    def requeue(self, job_id: str, refund_attempt: bool = False) -> None:
        """``running -> queued`` (graceful drain; optionally refund the claim)."""
        now = time.time()
        refund = 1 if refund_attempt else 0
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, not_before = 0, started_at = NULL, "
                "attempts = MAX(attempts - ?, 0), updated_at = ? "
                "WHERE id = ? AND state = ?",
                (QUEUED, refund, now, job_id, RUNNING),
            )
            self._conn.commit()

    def recover_orphans(self) -> List[Job]:
        """Re-queue every ``running`` job (crash recovery at daemon boot).

        Unlike a graceful drain, the claim's attempt is *not* refunded —
        a job that keeps crashing the daemon must still exhaust its
        bounded retries instead of looping forever.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT id FROM jobs WHERE state = ?", (RUNNING,)
            ).fetchall()
            ids = [row["id"] for row in rows]
            self._conn.execute(
                "UPDATE jobs SET state = ?, not_before = 0, started_at = NULL, "
                "updated_at = ? WHERE state = ?",
                (QUEUED, now, RUNNING),
            )
            self._conn.commit()
        return [self.get(job_id) for job_id in ids]

    # -- client side -----------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/terminal jobs are left alone."""
        now = time.time()
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state = ?, updated_at = ?, finished_at = ? "
                "WHERE id = ? AND state = ?",
                (CANCELLED, now, now, job_id, QUEUED),
            )
            self._conn.commit()
            return cur.rowcount > 0

    def get(self, job_id: str) -> Job:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id!r}")
        return _row_to_job(row)

    def find(self, job_id_prefix: str) -> Job:
        """Exact-id lookup, falling back to a unique id prefix (CLI sugar)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ? OR id LIKE ? LIMIT 3",
                (job_id_prefix, job_id_prefix + "%"),
            ).fetchall()
        if not rows:
            raise KeyError(f"no job {job_id_prefix!r}")
        if len(rows) > 1:
            raise KeyError(f"ambiguous job id prefix {job_id_prefix!r}")
        return _row_to_job(rows[0])

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[Job]:
        """Most recently updated first, optionally filtered by state."""
        with self._lock:
            if state is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY updated_at DESC LIMIT ?",
                    (limit,),
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE state = ? "
                    "ORDER BY updated_at DESC LIMIT ?",
                    (state, limit),
                ).fetchall()
        return [_row_to_job(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Row count per state (zero-filled over all states)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    # -- internals -------------------------------------------------------

    def _transition(
        self, job_id: str, from_state: str, to_state: str, source: Optional[str]
    ) -> None:
        now = time.time()
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, source = ?, updated_at = ?, "
                "finished_at = ? WHERE id = ? AND state = ?",
                (to_state, source, now, now, job_id, from_state),
            )
            self._conn.commit()


__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "SERVICE_DB_ENV",
    "STATES",
    "TERMINAL_STATES",
    "default_db_path",
]
