"""Persistent simulation job-queue service.

Turns the one-shot simulation CLI into a long-lived daemon: jobs are
submitted over a stdlib HTTP JSON API, persisted in a SQLite
:class:`~repro.service.jobstore.JobStore`, executed by a retrying
process worker pool (:class:`~repro.service.scheduler.Scheduler`) built
on the parallel sweep engine, and their results written through the
same content-addressed disk cache the offline runner uses — so the
service and CLI sweeps share one result store, and re-submitting a
solved identity completes instantly.

Layout:

- :mod:`repro.service.jobstore` — durable queue (states, priorities,
  dedup, crash recovery)
- :mod:`repro.service.scheduler` — worker pool, timeouts, retry with
  exponential backoff, graceful drain
- :mod:`repro.service.api` — HTTP JSON routes
- :mod:`repro.service.client` — urllib client used by the CLI verbs
- :mod:`repro.service.daemon` — one process wiring it all together

See DESIGN.md §8 for the architecture and the state machine.
"""

from repro.service.client import JobFailed, ServiceClient, ServiceError, default_url
from repro.service.daemon import ServiceDaemon, SubmitError
from repro.service.jobstore import Job, JobStore, default_db_path
from repro.service.scheduler import Scheduler, ServiceStats

__all__ = [
    "Job",
    "JobFailed",
    "JobStore",
    "Scheduler",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "ServiceStats",
    "SubmitError",
    "default_db_path",
    "default_url",
]
