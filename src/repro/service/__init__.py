"""Persistent simulation job-queue service.

Turns the one-shot simulation CLI into a long-lived daemon: jobs are
submitted over a stdlib HTTP JSON API, persisted in a SQLite
:class:`~repro.service.jobstore.JobStore`, executed by a retrying
process worker pool (:class:`~repro.service.scheduler.Scheduler`) built
on the parallel sweep engine, and their results written through the
same content-addressed disk cache the offline runner uses — so the
service and CLI sweeps share one result store, and re-submitting a
solved identity completes instantly.

The queue also shards across machines: remote ``repro worker``
processes (:class:`~repro.service.worker.RemoteWorker`) claim jobs over
the same HTTP API under renewable work leases, execute them with the
identical parallel primitives, and upload results back into the
daemon's cache.  A lease reaper re-queues the claims of workers that
stop heartbeating, so a crashed worker costs one lease interval, never
a job.  Mutating routes can require a bearer token
(``$REPRO_SERVICE_TOKEN``) and are protected by queue-depth
backpressure and optional per-client rate limiting (HTTP 429 +
``Retry-After``).

Layout:

- :mod:`repro.service.jobstore` — durable queue (states, priorities,
  dedup, work leases, crash recovery)
- :mod:`repro.service.scheduler` — worker pool, timeouts, retry with
  exponential backoff, graceful drain
- :mod:`repro.service.api` — HTTP JSON routes (auth, backpressure)
- :mod:`repro.service.client` — urllib client used by the CLI verbs
- :mod:`repro.service.worker` — remote claim/execute/upload loop
- :mod:`repro.service.daemon` — one process wiring it all together

See DESIGN.md §8 for the architecture and the state machine, and §13
for the distributed sweep fabric.
"""

from repro.service.client import JobFailed, ServiceClient, ServiceError, default_url
from repro.service.daemon import (
    QueueFullError,
    ServiceDaemon,
    SubmitError,
    WorkerProtocolError,
)
from repro.service.jobstore import Job, JobStore, default_db_path
from repro.service.scheduler import Scheduler, ServiceStats
from repro.service.worker import RemoteWorker, WorkerStats

__all__ = [
    "Job",
    "JobFailed",
    "JobStore",
    "QueueFullError",
    "RemoteWorker",
    "Scheduler",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "ServiceStats",
    "SubmitError",
    "WorkerProtocolError",
    "WorkerStats",
    "default_db_path",
    "default_url",
]
