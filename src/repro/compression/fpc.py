"""Frequent Pattern Compression (FPC).

FPC (Alameldeen & Wood, ISCA 2004) compresses a cache line one 32-bit word
at a time.  Each word is encoded as a 3-bit prefix plus a variable-width
data field, exploiting frequently occurring patterns: runs of zeros, small
sign-extended integers, half-word patterns and repeated bytes.

The payload is a raw MSB-first bit stream; exactly 16 words (one 64-byte
line) are decoded, so no explicit length header is needed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError
from repro.util.bits import BitReader

_WORD_BITS = 32
_WORDS_PER_LINE = LINE_SIZE // 4

# 3-bit prefixes (values from the FPC paper).
_P_ZERO_RUN = 0b000
_P_4BIT = 0b001
_P_8BIT = 0b010
_P_16BIT = 0b011
_P_HALF_PADDED = 0b100
_P_TWO_HALF_BYTES = 0b101
_P_REPEATED_BYTES = 0b110
_P_UNCOMPRESSED = 0b111

_MAX_ZERO_RUN = 8


def _fits_signed(word: int, nbits: int) -> bool:
    """True if the 32-bit word is the sign extension of its low ``nbits``."""
    low = word & ((1 << nbits) - 1)
    sign = (low >> (nbits - 1)) & 1
    extended = low if not sign else low | (~((1 << nbits) - 1) & 0xFFFFFFFF)
    return extended == word


def _sign_extend(value: int, nbits: int, out_bits: int) -> int:
    """Sign-extend the ``nbits``-bit ``value`` to ``out_bits`` (unsigned)."""
    sign = (value >> (nbits - 1)) & 1
    if sign:
        value |= (~((1 << nbits) - 1)) & ((1 << out_bits) - 1)
    return value


class FPC(CompressionAlgorithm):
    """Frequent Pattern Compression over 32-bit words."""

    name = "fpc"

    def compress(self, line: bytes) -> Optional[bytes]:
        self.check_line(line)
        words = [int.from_bytes(line[i : i + 4], "little") for i in range(0, LINE_SIZE, 4)]
        # hot path: accumulate the bit stream in a single int (MSB-first),
        # equivalent to BitWriter but without per-field call overhead
        acc = 0
        nbits = 0
        i = 0
        while i < 16:
            word = words[i]
            if word == 0:
                run = 1
                while i + run < 16 and words[i + run] == 0 and run < _MAX_ZERO_RUN:
                    run += 1
                acc = (acc << 6) | (run - 1)  # prefix 000 + 3-bit length
                nbits += 6
                i += run
                continue
            i += 1
            if word < 8 or word >= 0xFFFFFFF8:  # sign-extended 4-bit
                acc = (acc << 7) | (_P_4BIT << 4) | (word & 0xF)
                nbits += 7
            elif word < 0x80 or word >= 0xFFFFFF80:  # sign-extended 8-bit
                acc = (acc << 11) | (_P_8BIT << 8) | (word & 0xFF)
                nbits += 11
            elif word < 0x8000 or word >= 0xFFFF8000:  # sign-extended 16-bit
                acc = (acc << 19) | (_P_16BIT << 16) | (word & 0xFFFF)
                nbits += 19
            elif word & 0xFFFF == 0:
                acc = (acc << 19) | (_P_HALF_PADDED << 16) | (word >> 16)
                nbits += 19
            elif self._is_two_half_bytes(word):
                acc = (acc << 19) | (_P_TWO_HALF_BYTES << 16) | (
                    ((word >> 16) & 0xFF) << 8
                ) | (word & 0xFF)
                nbits += 19
            elif word == (word & 0xFF) * 0x01010101:
                acc = (acc << 11) | (_P_REPEATED_BYTES << 8) | (word & 0xFF)
                nbits += 11
            else:
                acc = (acc << 35) | (_P_UNCOMPRESSED << 32) | word
                nbits += 35
        nbytes = (nbits + 7) // 8
        if nbytes >= LINE_SIZE:
            return None
        pad = nbytes * 8 - nbits
        return (acc << pad).to_bytes(nbytes, "big")

    def decompress(self, payload: bytes) -> bytes:
        reader = BitReader(payload)
        words: List[int] = []
        try:
            while len(words) < _WORDS_PER_LINE:
                prefix = reader.read(3)
                if prefix == _P_ZERO_RUN:
                    run = reader.read(3) + 1
                    words.extend([0] * run)
                elif prefix == _P_4BIT:
                    words.append(_sign_extend(reader.read(4), 4, _WORD_BITS))
                elif prefix == _P_8BIT:
                    words.append(_sign_extend(reader.read(8), 8, _WORD_BITS))
                elif prefix == _P_16BIT:
                    words.append(_sign_extend(reader.read(16), 16, _WORD_BITS))
                elif prefix == _P_HALF_PADDED:
                    words.append(reader.read(16) << 16)
                elif prefix == _P_TWO_HALF_BYTES:
                    hi = _sign_extend(reader.read(8), 8, 16)
                    lo = _sign_extend(reader.read(8), 8, 16)
                    words.append((hi << 16) | lo)
                elif prefix == _P_REPEATED_BYTES:
                    byte = reader.read(8)
                    words.append(byte * 0x01010101)
                else:
                    words.append(reader.read(32))
        except EOFError as exc:
            raise CompressionError("truncated FPC payload") from exc
        if len(words) != _WORDS_PER_LINE:
            raise CompressionError("FPC payload decoded to wrong word count")
        return b"".join(word.to_bytes(4, "little") for word in words)

    def batch_sizes(self, lines):
        """Vectorized FPC sizes over a ``(n, 64)`` uint8 array.

        Per-word costs are a pure classification (the same prefix
        priority as :meth:`compress`); zero-run accounting walks the 16
        word columns once, charging a new 6-bit run token whenever a zero
        starts a run or extends one past the 8-word cap.
        """
        import numpy as np

        from repro.compression.batch import check_batch, finalize_sizes, words_le

        array = check_batch(lines)
        words = words_le(array, 4)
        zero = words == 0
        hi = words >> np.uint32(16)
        lo = words & np.uint32(0xFFFF)
        cost = np.select(
            [
                (words < 8) | (words >= 0xFFFFFFF8),
                (words < 0x80) | (words >= 0xFFFFFF80),
                (words < 0x8000) | (words >= 0xFFFF8000),
                lo == 0,
                ((hi < 0x80) | (hi >= 0xFF80)) & ((lo < 0x80) | (lo >= 0xFF80)),
                words == (words & np.uint32(0xFF)) * np.uint32(0x01010101),
            ],
            [7, 11, 19, 19, 19, 11],
            default=35,
        )
        cost = np.where(zero, 0, cost)
        n = array.shape[0]
        run_pos = np.zeros(n, dtype=np.int64)
        runs = np.zeros(n, dtype=np.int64)
        for column in range(_WORDS_PER_LINE):
            zeros_here = zero[:, column]
            runs += zeros_here & (run_pos % _MAX_ZERO_RUN == 0)
            run_pos = np.where(zeros_here, run_pos + 1, 0)
        return finalize_sizes(cost.sum(axis=1) + 6 * runs)

    @staticmethod
    def _is_two_half_bytes(word: int) -> bool:
        """Each 16-bit half is the sign extension of its low byte."""
        hi, lo = word >> 16, word & 0xFFFF
        return all(
            half == (_sign_extend(half & 0xFF, 8, 16)) for half in (hi, lo)
        )

    @staticmethod
    def _is_repeated_bytes(word: int) -> bool:
        """All four bytes of the word are identical."""
        byte = word & 0xFF
        return word == byte * 0x01010101
