"""Cache-line compression algorithms (FPC, BDI, C-Pack, zero-line, hybrid).

All algorithms operate on 64-byte lines and produce self-describing
payloads; see :mod:`repro.compression.base` for the interface.
"""

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError
from repro.compression.batch import (
    BatchCompressor,
    array_to_lines,
    lines_to_array,
)
from repro.compression.bdi import BDI
from repro.compression.cpack import CPack
from repro.compression.fpc import FPC
from repro.compression.fvc import DEFAULT_FREQUENT_VALUES, FVC, train_dictionary
from repro.compression.hybrid import HybridCompressor
from repro.compression.zeroline import ZeroLine

__all__ = [
    "LINE_SIZE",
    "CompressionAlgorithm",
    "CompressionError",
    "BatchCompressor",
    "BDI",
    "CPack",
    "FPC",
    "FVC",
    "DEFAULT_FREQUENT_VALUES",
    "train_dictionary",
    "HybridCompressor",
    "ZeroLine",
    "array_to_lines",
    "lines_to_array",
]
