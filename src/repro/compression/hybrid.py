"""Hybrid compressor: pick the best algorithm per line.

The paper's evaluation compresses each line with both FPC and BDI and
keeps whichever is smaller (§III-A).  The chosen algorithm must be
recorded inside the compressed line, so the payload carries a one-byte
algorithm tag that is charged against the compressed size.

Selection is **deterministic**: the smallest tagged payload wins, and on
equal sizes the algorithm listed *first* wins (strict ``<`` comparison in
constructor order).  That stability is load-bearing — the vectorized
batch kernel and the scalar reference must never diverge on ties, or a
batch-driven simulation would stop being bitwise identical to a scalar
one.  ``tests/test_hybrid.py`` locks the rule with a regression test.

``HybridCompressor`` is configurable with any set of
:class:`~repro.compression.base.CompressionAlgorithm` instances, which is
how the benchmarks explore PTMC's algorithm-orthogonality claim (§VII-A).
Results are memoized by line content — the algorithms are pure functions,
and workloads repeat data patterns heavily, so this makes the simulator
orders of magnitude faster without changing any result.  Two memo layers
exist: payloads (``compress``) and sizes (``compressed_size``); the size
memo can be bulk-seeded from the vectorized batch kernel
(:meth:`seed_sizes`), which is how the batch-driven simulator avoids
recompressing whole trace chunks line by line.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError
from repro.compression.bdi import BDI
from repro.compression.fpc import FPC

#: process-wide payload memo pools, keyed by the algorithm-name tuple
_SHARED_CACHES: Dict[Tuple[str, ...], Dict[bytes, Optional[bytes]]] = {}

#: process-wide size memo pools (same keying); sizes are derivable from
#: payloads but much cheaper to produce in batch, so they get their own
#: layer that the vectorized kernels can seed directly
_SHARED_SIZE_CACHES: Dict[Tuple[str, ...], Dict[bytes, int]] = {}


class HybridCompressor(CompressionAlgorithm):
    """Try several algorithms and keep the smallest self-describing payload."""

    name = "hybrid"

    def __init__(
        self,
        algorithms: Optional[Iterable[CompressionAlgorithm]] = None,
        memoize: bool = True,
    ) -> None:
        algs: List[CompressionAlgorithm] = (
            list(algorithms) if algorithms is not None else [FPC(), BDI()]
        )
        if not algs:
            raise ValueError("need at least one algorithm")
        if len(algs) > 255:
            raise ValueError("at most 255 algorithms (one-byte tag)")
        self._algorithms: Tuple[CompressionAlgorithm, ...] = tuple(algs)
        self._memoize = memoize
        # results are shared across instances with the same algorithm list:
        # simulations run several designs over identical workload data, and
        # compression is a pure function of (algorithms, line)
        key = tuple(a.name for a in self._algorithms)
        self._cache: Dict[bytes, Optional[bytes]] = _SHARED_CACHES.setdefault(key, {})
        self._sizes: Dict[bytes, int] = _SHARED_SIZE_CACHES.setdefault(key, {})

    @property
    def algorithms(self) -> Tuple[CompressionAlgorithm, ...]:
        """The candidate algorithms, in tag order."""
        return self._algorithms

    def compress(self, line: bytes) -> Optional[bytes]:
        self.check_line(line)
        if self._memoize:
            cached = self._cache.get(line)
            if cached is not None or line in self._cache:
                return cached
        best: Optional[bytes] = None
        for tag, algorithm in enumerate(self._algorithms):
            payload = algorithm.compress(line)
            if payload is None:
                continue
            tagged = bytes([tag]) + payload
            # strict < on both checks: ties keep the earliest algorithm,
            # matching the batch kernel's first-minimum selection
            if len(tagged) < LINE_SIZE and (best is None or len(tagged) < len(best)):
                best = tagged
        if self._memoize:
            self._cache[bytes(line)] = best
            self._sizes.setdefault(
                bytes(line), LINE_SIZE if best is None else len(best)
            )
        return best

    def compress_and_size(self, line: bytes) -> Tuple[Optional[bytes], int]:
        """One compression, both answers (payload memo consulted first)."""
        payload = self.compress(line)
        return payload, (LINE_SIZE if payload is None else len(payload))

    def compressed_size(self, line: bytes) -> int:
        """Charged size; served from the size memo without compressing."""
        if self._memoize:
            size = self._sizes.get(line)
            if size is not None:
                return size
        return self.compress_and_size(line)[1]

    def cached_size(self, line: bytes) -> Optional[int]:
        """The memoized size, or ``None`` when it was never computed."""
        if not self._memoize:
            return None
        size = self._sizes.get(line)
        if size is not None:
            return size
        if line in self._cache:  # derive from the payload memo once
            payload = self._cache[line]
            size = LINE_SIZE if payload is None else len(payload)
            self._sizes[line] = size
            return size
        return None

    def seed_sizes(self, lines: Sequence[bytes], sizes) -> None:
        """Bulk-load the size memo from a vectorized batch result.

        The batch kernels are golden-tested to match the scalar sizes, so
        seeding can never change a simulation outcome — only skip work.
        No-op when memoization is disabled.
        """
        if not self._memoize:
            return
        memo = self._sizes
        for line, size in zip(lines, sizes):
            memo[bytes(line)] = int(size)

    def batch_sizes(self, lines):
        """Vectorized hybrid sizes: component minima plus the tag byte.

        A component that cannot beat the raw line (size 64) is skipped;
        the tagged candidate must itself stay under 64 bytes.  ``minimum``
        is applied in constructor order with strict comparison, so equal
        sizes resolve to the earliest algorithm exactly like the scalar
        path (the *size* is identical either way; the invariant matters
        for the tag/encoding outputs).
        """
        import numpy as np

        from repro.compression.batch import check_batch

        array = check_batch(lines)
        best = np.full(array.shape[0], LINE_SIZE, dtype=np.int64)
        for algorithm in self._algorithms:
            sizes = algorithm.batch_sizes(array)
            tagged = sizes + 1
            candidate = (sizes < LINE_SIZE) & (tagged < best)
            best = np.where(candidate, tagged, best)
        return best

    def decompress(self, payload: bytes) -> bytes:
        if not payload:
            raise CompressionError("empty hybrid payload")
        tag = payload[0]
        if tag >= len(self._algorithms):
            raise CompressionError(f"unknown algorithm tag {tag}")
        return self._algorithms[tag].decompress(payload[1:])

    def clear_cache(self) -> None:
        """Drop memoized results (useful to bound memory in long sweeps)."""
        self._cache.clear()
        self._sizes.clear()
