"""Hybrid compressor: pick the best algorithm per line.

The paper's evaluation compresses each line with both FPC and BDI and
keeps whichever is smaller (§III-A).  The chosen algorithm must be
recorded inside the compressed line, so the payload carries a one-byte
algorithm tag that is charged against the compressed size.

``HybridCompressor`` is configurable with any set of
:class:`~repro.compression.base.CompressionAlgorithm` instances, which is
how the benchmarks explore PTMC's algorithm-orthogonality claim (§VII-A).
Results are memoized by line content — the algorithms are pure functions,
and workloads repeat data patterns heavily, so this makes the simulator
orders of magnitude faster without changing any result.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError
from repro.compression.bdi import BDI
from repro.compression.fpc import FPC

#: process-wide memo pools, keyed by the algorithm-name tuple
_SHARED_CACHES: Dict[Tuple[str, ...], Dict[bytes, Optional[bytes]]] = {}


class HybridCompressor(CompressionAlgorithm):
    """Try several algorithms and keep the smallest self-describing payload."""

    name = "hybrid"

    def __init__(
        self,
        algorithms: Optional[Iterable[CompressionAlgorithm]] = None,
        memoize: bool = True,
    ) -> None:
        algs: List[CompressionAlgorithm] = (
            list(algorithms) if algorithms is not None else [FPC(), BDI()]
        )
        if not algs:
            raise ValueError("need at least one algorithm")
        if len(algs) > 255:
            raise ValueError("at most 255 algorithms (one-byte tag)")
        self._algorithms: Tuple[CompressionAlgorithm, ...] = tuple(algs)
        self._memoize = memoize
        # results are shared across instances with the same algorithm list:
        # simulations run several designs over identical workload data, and
        # compression is a pure function of (algorithms, line)
        key = tuple(a.name for a in self._algorithms)
        self._cache: Dict[bytes, Optional[bytes]] = _SHARED_CACHES.setdefault(key, {})

    @property
    def algorithms(self) -> Tuple[CompressionAlgorithm, ...]:
        """The candidate algorithms, in tag order."""
        return self._algorithms

    def compress(self, line: bytes) -> Optional[bytes]:
        self.check_line(line)
        if self._memoize:
            cached = self._cache.get(line)
            if cached is not None or line in self._cache:
                return cached
        best: Optional[bytes] = None
        for tag, algorithm in enumerate(self._algorithms):
            payload = algorithm.compress(line)
            if payload is None:
                continue
            tagged = bytes([tag]) + payload
            if len(tagged) < LINE_SIZE and (best is None or len(tagged) < len(best)):
                best = tagged
        if self._memoize:
            self._cache[bytes(line)] = best
        return best

    def decompress(self, payload: bytes) -> bytes:
        if not payload:
            raise CompressionError("empty hybrid payload")
        tag = payload[0]
        if tag >= len(self._algorithms):
            raise CompressionError(f"unknown algorithm tag {tag}")
        return self._algorithms[tag].decompress(payload[1:])

    def clear_cache(self) -> None:
        """Drop memoized results (useful to bound memory in long sweeps)."""
        self._cache.clear()
