"""Base-Delta-Immediate (BDI) compression.

BDI (Pekhimenko et al., PACT 2012) represents a cache line as one base
value plus small per-element deltas.  The "immediate" part is an implicit
second base of zero: each element stores either ``base + delta`` or
``0 + delta``, selected by a per-element bitmask.  We implement the full
set of encodings from the paper: all-zeros, repeated 8-byte value, and the
six (base-size, delta-size) combinations B8D1/B8D2/B8D4/B4D1/B4D2/B2D1.

Payload layout (self-describing, all sizes charged):
``[1B encoding id][base (k bytes)][mask ((n+7)//8 bytes)][deltas (n*d bytes)]``
where ``n = 64 / k`` elements.  Zeros/repeat encodings shrink accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError

_ENC_ZEROS = 0
_ENC_REPEAT = 1
# (encoding id, base bytes, delta bytes)
_DELTA_ENCODINGS: Tuple[Tuple[int, int, int], ...] = (
    (2, 8, 1),
    (3, 8, 2),
    (4, 8, 4),
    (5, 4, 1),
    (6, 4, 2),
    (7, 2, 1),
)
_ENC_PARAMS = {enc: (base, delta) for enc, base, delta in _DELTA_ENCODINGS}

#: the same encodings ordered by resulting payload size, so a first-fit
#: scan returns the smallest feasible encoding immediately
_ENCODINGS_BY_SIZE: Tuple[Tuple[int, int, int], ...] = tuple(
    sorted(
        _DELTA_ENCODINGS,
        key=lambda e: 1 + e[1] + (LINE_SIZE // e[1] + 7) // 8 + (LINE_SIZE // e[1]) * e[2],
    )
)


@dataclass(frozen=True)
class _DeltaPlan:
    """A feasible base+delta encoding for one line."""

    encoding: int
    base: int
    mask: int  # bit i set => element i uses the explicit base
    deltas: List[int]  # signed deltas, one per element


def _signed_fits(value: int, nbytes: int) -> bool:
    bits = nbytes * 8
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


class BDI(CompressionAlgorithm):
    """Base-Delta-Immediate with an implicit zero base."""

    name = "bdi"

    def compress(self, line: bytes) -> Optional[bytes]:
        self.check_line(line)
        if line == b"\x00" * LINE_SIZE:
            return bytes([_ENC_ZEROS])
        first8 = line[:8]
        if line == first8 * (LINE_SIZE // 8):
            return bytes([_ENC_REPEAT]) + first8

        # elements are parsed once per base width and encodings are tried
        # in ascending payload size, so the first feasible plan is optimal
        elements_cache = {}
        for encoding, base_bytes, delta_bytes in _ENCODINGS_BY_SIZE:
            elements = elements_cache.get(base_bytes)
            if elements is None:
                elements = [
                    int.from_bytes(line[i : i + base_bytes], "little")
                    for i in range(0, LINE_SIZE, base_bytes)
                ]
                elements_cache[base_bytes] = elements
            plan = self._plan_elements(elements, encoding, delta_bytes)
            if plan is not None:
                payload = self._encode(plan, base_bytes, delta_bytes)
                if len(payload) < LINE_SIZE:
                    return payload
        return None

    def decompress(self, payload: bytes) -> bytes:
        if not payload:
            raise CompressionError("empty BDI payload")
        encoding = payload[0]
        if encoding == _ENC_ZEROS:
            return b"\x00" * LINE_SIZE
        if encoding == _ENC_REPEAT:
            if len(payload) != 9:
                raise CompressionError("bad BDI repeat payload")
            return payload[1:9] * (LINE_SIZE // 8)
        if encoding not in _ENC_PARAMS:
            raise CompressionError(f"unknown BDI encoding {encoding}")
        base_bytes, delta_bytes = _ENC_PARAMS[encoding]
        n = LINE_SIZE // base_bytes
        mask_bytes = (n + 7) // 8
        expected = 1 + base_bytes + mask_bytes + n * delta_bytes
        if len(payload) != expected:
            raise CompressionError("bad BDI payload length")
        pos = 1
        base = int.from_bytes(payload[pos : pos + base_bytes], "little")
        pos += base_bytes
        mask = int.from_bytes(payload[pos : pos + mask_bytes], "little")
        pos += mask_bytes
        out = bytearray()
        modulus = 1 << (base_bytes * 8)
        for i in range(n):
            delta = int.from_bytes(
                payload[pos : pos + delta_bytes], "little", signed=True
            )
            pos += delta_bytes
            anchor = base if (mask >> i) & 1 else 0
            out.extend(((anchor + delta) % modulus).to_bytes(base_bytes, "little"))
        return bytes(out)

    def batch_sizes(self, lines):
        """Vectorized BDI sizes over a ``(n, 64)`` uint8 array."""
        return self.batch_classify(lines)[0]

    def batch_classify(self, lines):
        """Vectorized ``(sizes, encodings)`` over a ``(n, 64)`` uint8 array.

        The encoding tag is the scalar payload's first byte (0 zeros,
        1 repeat, 2–7 the base/delta encodings) or 255 for incompressible
        lines — cheap to emit because feasibility is computed per
        encoding anyway.
        """
        import numpy as np

        from repro.compression.batch import check_batch, words_le

        array = check_batch(lines)
        n = array.shape[0]
        sizes = np.full(n, LINE_SIZE, dtype=np.int64)
        encodings = np.full(n, 255, dtype=np.int64)

        zeros = ~array.any(axis=1)
        chunks = array.reshape(n, LINE_SIZE // 8, 8)
        repeat = (chunks == chunks[:, :1, :]).all(axis=(1, 2))
        sizes[zeros] = 1
        encodings[zeros] = _ENC_ZEROS
        repeat_only = repeat & ~zeros
        sizes[repeat_only] = 9
        encodings[repeat_only] = _ENC_REPEAT

        decided = zeros | repeat
        rows = np.arange(n)
        for encoding, base_bytes, delta_bytes in _ENCODINGS_BY_SIZE:
            if decided.all():
                break
            elements = words_le(array, base_bytes)
            count = LINE_SIZE // base_bytes
            high = 1 << (delta_bytes * 8 - 1)
            immediate = elements < high
            # the first non-immediate element anchors the explicit base
            # (argmax yields 0 for all-immediate rows, where feasibility
            # holds regardless of the base value)
            base = elements[rows, np.argmax(~immediate, axis=1)][:, None]
            if base_bytes == 8:
                # 64-bit elements: uint64 wraparound plus an explicit sign
                # split reproduces the scalar arbitrary-precision check
                wrapped = elements - base
                fits = np.where(
                    elements >= base,
                    wrapped < np.uint64(high),
                    wrapped >= np.uint64((1 << 64) - high),
                )
            else:
                delta = elements.astype(np.int64) - base.astype(np.int64)
                fits = (delta >= -high) & (delta < high)
            feasible = (immediate | fits).all(axis=1) & ~decided
            payload = 1 + base_bytes + (count + 7) // 8 + count * delta_bytes
            sizes[feasible] = payload
            encodings[feasible] = encoding
            decided |= feasible
        return sizes, encodings

    def _plan(
        self, line: bytes, encoding: int, base_bytes: int, delta_bytes: int
    ) -> Optional[_DeltaPlan]:
        """Find base/deltas for one (k, d) configuration, or None."""
        elements = [
            int.from_bytes(line[i : i + base_bytes], "little")
            for i in range(0, LINE_SIZE, base_bytes)
        ]
        return self._plan_elements(elements, encoding, delta_bytes)

    @staticmethod
    def _plan_elements(
        elements: List[int], encoding: int, delta_bytes: int
    ) -> Optional[_DeltaPlan]:
        """Plan over pre-parsed unsigned elements (hot path)."""
        bits = delta_bytes * 8
        low = -(1 << (bits - 1))
        high = 1 << (bits - 1)
        base: Optional[int] = None
        mask = 0
        deltas: List[int] = []
        for i, element in enumerate(elements):
            if element < high:  # unsigned small => fits implicit zero base
                deltas.append(element)
                continue
            if base is None:
                base = element  # first non-immediate element anchors the base
            delta = element - base
            if not low <= delta < high:
                return None
            mask |= 1 << i
            deltas.append(delta)
        if base is None:
            base = 0
        return _DeltaPlan(encoding, base, mask, deltas)

    @staticmethod
    def _encode(plan: _DeltaPlan, base_bytes: int, delta_bytes: int) -> bytes:
        n = LINE_SIZE // base_bytes
        mask_bytes = (n + 7) // 8
        out = bytearray([plan.encoding])
        out.extend(plan.base.to_bytes(base_bytes, "little"))
        out.extend(plan.mask.to_bytes(mask_bytes, "little"))
        for delta in plan.deltas:
            out.extend(delta.to_bytes(delta_bytes, "little", signed=True))
        return bytes(out)
