"""Common interface for hardware cache-line compression algorithms.

Every algorithm compresses a single 64-byte cache line into a
self-describing payload (the payload alone is enough to decompress — the
paper stores algorithm choice and algorithm metadata, e.g. BDI bases,
inside the compressed line and charges them against its size).

``compress`` returns ``None`` when the algorithm cannot beat the original
size; callers treat that as "store uncompressed".

Two query shapes exist on top of ``compress``:

- :meth:`CompressionAlgorithm.compress_and_size` — the single-compression
  path for callers that need both the payload and its charged size
  (controllers previously called ``compress`` + ``compressed_size`` and
  compressed every line twice);
- :meth:`CompressionAlgorithm.batch_sizes` — per-line compressed sizes
  over a ``(n_lines, 64)`` uint8 array.  The base implementation loops
  the scalar path (the reference semantics); algorithms override it with
  a numpy kernel that must match the scalar sizes bit for bit (see
  :mod:`repro.compression.batch` and DESIGN.md §9).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

LINE_SIZE = 64
"""Cache-line size in bytes, fixed at 64 throughout the system."""


class CompressionError(ValueError):
    """Raised when a payload cannot be decompressed (corrupt stream)."""


class CompressionAlgorithm(ABC):
    """A per-line compression algorithm.

    Subclasses must be stateless: the same input always yields the same
    payload, which lets the simulator memoize results for speed.
    """

    #: Short identifier used in payload headers and statistics.
    name: str = "base"

    @abstractmethod
    def compress(self, line: bytes) -> Optional[bytes]:
        """Compress a 64-byte line.

        Returns the payload (strictly smaller than the input) or ``None``
        when the line is incompressible under this algorithm.
        """

    @abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`, returning the original 64-byte line."""

    def compress_and_size(self, line: bytes) -> Tuple[Optional[bytes], int]:
        """Compress once, returning ``(payload, charged size)``.

        The size is ``LINE_SIZE`` when the line is incompressible
        (``payload is None``), else ``len(payload)``.  Controllers that
        need both the payload and the size use this instead of calling
        ``compress`` and ``compressed_size`` back to back.
        """
        payload = self.compress(line)
        return payload, (LINE_SIZE if payload is None else len(payload))

    def compressed_size(self, line: bytes) -> int:
        """Size in bytes after compression (line size if incompressible)."""
        return self.compress_and_size(line)[1]

    def cached_size(self, line: bytes) -> Optional[int]:
        """The memoized compressed size of ``line``, without computing it.

        Returns ``None`` when the size is not already known.  Memoizing
        algorithms (:class:`~repro.compression.hybrid.HybridCompressor`)
        override this; the sim's hot paths use it to reject impossible
        packings without compressing anything.
        """
        return None

    def batch_sizes(self, lines):
        """Per-line compressed sizes over a ``(n_lines, 64)`` uint8 array.

        Returns an ``int64`` array of charged sizes (``LINE_SIZE`` for
        incompressible lines).  This base implementation is the scalar
        reference — it loops :meth:`compressed_size` — and is what every
        vectorized override is golden-tested against.
        """
        import numpy as np

        from repro.compression.batch import check_batch

        array = check_batch(lines)
        return np.fromiter(
            (self.compressed_size(row.tobytes()) for row in array),
            dtype=np.int64,
            count=array.shape[0],
        )

    @staticmethod
    def check_line(line: bytes) -> None:
        """Validate that ``line`` is exactly one 64-byte cache line."""
        if len(line) != LINE_SIZE:
            raise ValueError(f"expected {LINE_SIZE}-byte line, got {len(line)}")
