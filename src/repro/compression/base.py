"""Common interface for hardware cache-line compression algorithms.

Every algorithm compresses a single 64-byte cache line into a
self-describing payload (the payload alone is enough to decompress — the
paper stores algorithm choice and algorithm metadata, e.g. BDI bases,
inside the compressed line and charges them against its size).

``compress`` returns ``None`` when the algorithm cannot beat the original
size; callers treat that as "store uncompressed".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

LINE_SIZE = 64
"""Cache-line size in bytes, fixed at 64 throughout the system."""


class CompressionError(ValueError):
    """Raised when a payload cannot be decompressed (corrupt stream)."""


class CompressionAlgorithm(ABC):
    """A per-line compression algorithm.

    Subclasses must be stateless: the same input always yields the same
    payload, which lets the simulator memoize results for speed.
    """

    #: Short identifier used in payload headers and statistics.
    name: str = "base"

    @abstractmethod
    def compress(self, line: bytes) -> Optional[bytes]:
        """Compress a 64-byte line.

        Returns the payload (strictly smaller than the input) or ``None``
        when the line is incompressible under this algorithm.
        """

    @abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`, returning the original 64-byte line."""

    def compressed_size(self, line: bytes) -> int:
        """Size in bytes after compression (line size if incompressible)."""
        payload = self.compress(line)
        return LINE_SIZE if payload is None else len(payload)

    @staticmethod
    def check_line(line: bytes) -> None:
        """Validate that ``line`` is exactly one 64-byte cache line."""
        if len(line) != LINE_SIZE:
            raise ValueError(f"expected {LINE_SIZE}-byte line, got {len(line)}")
