"""Trivial zero-line compression (a degenerate but useful algorithm).

Many real workloads have a large fraction of all-zero cache lines (freshly
allocated pages, sparse matrices).  This algorithm compresses exactly those
lines to a single byte and rejects everything else.  It exists mainly as a
cheap first stage for the hybrid compressor and as a simple reference
implementation in tests.
"""

from __future__ import annotations

from typing import Optional

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError

_ZERO_LINE = b"\x00" * LINE_SIZE


class ZeroLine(CompressionAlgorithm):
    """Compress all-zero lines to one byte; reject everything else."""

    name = "zero"

    def compress(self, line: bytes) -> Optional[bytes]:
        self.check_line(line)
        if line == _ZERO_LINE:
            return b"\x00"
        return None

    def batch_sizes(self, lines):
        """Vectorized zero-line sizes: 1 for all-zero rows, else 64."""
        import numpy as np

        from repro.compression.batch import check_batch

        array = check_batch(lines)
        return np.where(array.any(axis=1), LINE_SIZE, 1).astype(np.int64)

    def decompress(self, payload: bytes) -> bytes:
        if payload != b"\x00":
            raise CompressionError("bad zero-line payload")
        return _ZERO_LINE
