"""C-Pack: dictionary-based cache-line compression.

C-Pack (Chen et al., TVLSI 2010) compresses a line one 32-bit word at a
time against a small FIFO dictionary built from previously seen words in
the same line.  Each word is emitted with one of six pattern codes:

==========  ======  ==============================================
pattern     code    payload
==========  ======  ==============================================
``zzzz``    00      word is all zeros
``xxxx``    01      literal 32-bit word (pushed into dictionary)
``mmmm``    10      full match, 4-bit dictionary index
``mmxx``    1100    upper 2 bytes match, 4-bit index + 16-bit rest
``zzzx``    1101    three zero bytes, 8-bit low byte
``mmmx``    1110    upper 3 bytes match, 4-bit index + 8-bit rest
==========  ======  ==============================================

The paper lists dictionary compressors as drop-in alternatives for PTMC
(§VII-A); this implementation lets benchmarks explore that claim.
"""

from __future__ import annotations

from typing import List, Optional

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError
from repro.util.bits import BitReader, BitWriter

_DICT_SIZE = 16
_WORDS_PER_LINE = LINE_SIZE // 4


class CPack(CompressionAlgorithm):
    """C-Pack dictionary compression over 32-bit words."""

    name = "cpack"

    def compress(self, line: bytes) -> Optional[bytes]:
        self.check_line(line)
        words = [int.from_bytes(line[i : i + 4], "big") for i in range(0, LINE_SIZE, 4)]
        writer = BitWriter()
        dictionary: List[int] = []
        for word in words:
            if word == 0:
                writer.write(0b00, 2)
                continue
            if word & 0xFFFFFF00 == 0:
                writer.write(0b1101, 4)
                writer.write(word & 0xFF, 8)
                continue
            full = self._find(dictionary, word, 4)
            if full is not None:
                writer.write(0b10, 2)
                writer.write(full, 4)
                continue
            three = self._find(dictionary, word, 3)
            if three is not None:
                writer.write(0b1110, 4)
                writer.write(three, 4)
                writer.write(word & 0xFF, 8)
                self._push(dictionary, word)
                continue
            two = self._find(dictionary, word, 2)
            if two is not None:
                writer.write(0b1100, 4)
                writer.write(two, 4)
                writer.write(word & 0xFFFF, 16)
                self._push(dictionary, word)
                continue
            writer.write(0b01, 2)
            writer.write(word, 32)
            self._push(dictionary, word)
        if writer.byte_length >= LINE_SIZE:
            return None
        return writer.to_bytes()

    def decompress(self, payload: bytes) -> bytes:
        reader = BitReader(payload)
        words: List[int] = []
        dictionary: List[int] = []
        try:
            while len(words) < _WORDS_PER_LINE:
                if reader.read(1) == 0:
                    if reader.read(1) == 0:
                        words.append(0)  # zzzz
                    else:
                        word = reader.read(32)  # xxxx
                        words.append(word)
                        self._push(dictionary, word)
                    continue
                if reader.read(1) == 0:
                    words.append(self._lookup(dictionary, reader.read(4)))  # mmmm
                    continue
                code = reader.read(2)
                if code == 0b00:  # mmxx
                    word = (self._lookup(dictionary, reader.read(4)) & 0xFFFF0000) | reader.read(16)
                    words.append(word)
                    self._push(dictionary, word)
                elif code == 0b01:  # zzzx
                    words.append(reader.read(8))
                elif code == 0b10:  # mmmx
                    word = (self._lookup(dictionary, reader.read(4)) & 0xFFFFFF00) | reader.read(8)
                    words.append(word)
                    self._push(dictionary, word)
                else:
                    raise CompressionError("bad C-Pack pattern code")
        except EOFError as exc:
            raise CompressionError("truncated C-Pack payload") from exc
        return b"".join(word.to_bytes(4, "big") for word in words)

    def batch_sizes(self, lines):
        """Vectorized C-Pack sizes over a ``(n, 64)`` uint8 array.

        The FIFO dictionary is inherently sequential *within* a line, so
        the kernel walks the 16 word columns in order while staying
        vectorized *across* lines: each line's dictionary is one row of a
        ``(n, 16)`` array.  A line pushes at most 16 words, so the
        16-entry FIFO never evicts and insertion order is append order —
        exactly the scalar ``_push`` behaviour.
        """
        import numpy as np

        from repro.compression.batch import check_batch, finalize_sizes, words_be

        array = check_batch(lines)
        words = words_be(array, 4)
        n = array.shape[0]
        dictionary = np.zeros((n, _DICT_SIZE), dtype=np.uint32)
        filled = np.zeros(n, dtype=np.intp)
        slots = np.arange(_DICT_SIZE)[None, :]
        bits = np.zeros(n, dtype=np.int64)
        rows = np.arange(n)
        for column in range(_WORDS_PER_LINE):
            word = words[:, column]
            valid = slots < filled[:, None]
            zero = word == 0
            low_byte = ~zero & ((word & np.uint32(0xFFFFFF00)) == 0)
            match4 = ((dictionary == word[:, None]) & valid).any(axis=1)
            match3 = (
                ((dictionary >> np.uint32(8)) == (word >> np.uint32(8))[:, None])
                & valid
            ).any(axis=1)
            match2 = (
                ((dictionary >> np.uint32(16)) == (word >> np.uint32(16))[:, None])
                & valid
            ).any(axis=1)
            bits += np.select(
                [zero, low_byte, match4, match3, match2],
                [2, 12, 6, 16, 24],
                default=34,
            )
            push = ~(zero | low_byte | match4)
            pushed_rows = rows[push]
            dictionary[pushed_rows, filled[pushed_rows]] = word[pushed_rows]
            filled[pushed_rows] += 1
        return finalize_sizes(bits)

    @staticmethod
    def _find(dictionary: List[int], word: int, match_bytes: int) -> Optional[int]:
        """Index of a dictionary entry whose top ``match_bytes`` match."""
        shift = (4 - match_bytes) * 8
        target = word >> shift
        for index, entry in enumerate(dictionary):
            if entry >> shift == target:
                return index
        return None

    @staticmethod
    def _push(dictionary: List[int], word: int) -> None:
        dictionary.append(word)
        if len(dictionary) > _DICT_SIZE:
            dictionary.pop(0)

    @staticmethod
    def _lookup(dictionary: List[int], index: int) -> int:
        if index >= len(dictionary):
            raise CompressionError("C-Pack dictionary index out of range")
        return dictionary[index]
