"""Frequent Value Compression (FVC).

FVC (Yang & Gupta, MICRO 2000 lineage) exploits the skewed distribution
of data values: a small dictionary of *frequent* 32-bit values covers a
large fraction of all words.  Each word is encoded as either

- ``1 + index``: a hit in the frequent-value dictionary, or
- ``0 + literal``: the raw 32-bit word.

Unlike C-Pack's line-local dictionary, FVC's dictionary is a property of
the *workload* (the hardware trains it over time).  The implementation
profiles a training sample once and then encodes lines against the fixed
dictionary, storing the dictionary id in the payload so decompression is
self-contained.  A default dictionary of universally frequent values
(0, ±1, small powers of two, 0xFF.. patterns) works reasonably without
training, mirroring how real designs bootstrap.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.compression.base import LINE_SIZE, CompressionAlgorithm, CompressionError
from repro.util.bits import BitReader, BitWriter

_WORDS_PER_LINE = LINE_SIZE // 4

#: values that are frequent in almost any workload's memory image
DEFAULT_FREQUENT_VALUES: Tuple[int, ...] = (
    0x00000000,
    0xFFFFFFFF,
    0x00000001,
    0x00000002,
    0x00000004,
    0x00000008,
    0x00000010,
    0x00000100,
    0x00010000,
    0x01000000,
    0xFFFFFFFE,
    0x7FFFFFFF,
    0x80000000,
    0x0000FFFF,
    0xFFFF0000,
    0x00000003,
)


def train_dictionary(lines: Iterable[bytes], size: int = 16) -> Tuple[int, ...]:
    """Profile sample lines and return the ``size`` most frequent words."""
    counts: Counter = Counter()
    for line in lines:
        if len(line) != LINE_SIZE:
            raise ValueError("training lines must be 64 bytes")
        for i in range(0, LINE_SIZE, 4):
            counts[int.from_bytes(line[i : i + 4], "little")] += 1
    return tuple(value for value, _ in counts.most_common(size))


class FVC(CompressionAlgorithm):
    """Frequent Value Compression with a fixed (trainable) dictionary."""

    name = "fvc"

    def __init__(self, dictionary: Optional[Sequence[int]] = None) -> None:
        values = tuple(dictionary) if dictionary is not None else DEFAULT_FREQUENT_VALUES
        if not values:
            raise ValueError("dictionary must not be empty")
        if len(values) > 256:
            raise ValueError("dictionary is limited to 256 entries")
        if len(set(values)) != len(values):
            raise ValueError("dictionary values must be unique")
        for value in values:
            if not 0 <= value < 2**32:
                raise ValueError("dictionary holds 32-bit words")
        self._values = values
        self._index: Dict[int, int] = {v: i for i, v in enumerate(values)}
        self._index_bits = max(1, (len(values) - 1).bit_length())

    @property
    def dictionary(self) -> Tuple[int, ...]:
        return self._values

    def compress(self, line: bytes) -> Optional[bytes]:
        self.check_line(line)
        writer = BitWriter()
        for i in range(0, LINE_SIZE, 4):
            word = int.from_bytes(line[i : i + 4], "little")
            index = self._index.get(word)
            if index is not None:
                writer.write(1, 1)
                writer.write(index, self._index_bits)
            else:
                writer.write(0, 1)
                writer.write(word, 32)
        if writer.byte_length >= LINE_SIZE:
            return None
        return writer.to_bytes()

    def batch_sizes(self, lines):
        """Vectorized FVC sizes over a ``(n, 64)`` uint8 array.

        One membership test of every word against the (≤256-entry)
        dictionary replaces the per-word scalar lookups.
        """
        import numpy as np

        from repro.compression.batch import check_batch, finalize_sizes, words_le

        array = check_batch(lines)
        words = words_le(array, 4)
        table = np.asarray(self._values, dtype=np.uint32)
        hit = np.isin(words, table)
        bits = np.where(hit, 1 + self._index_bits, 1 + 32).sum(axis=1)
        return finalize_sizes(bits)

    def decompress(self, payload: bytes) -> bytes:
        reader = BitReader(payload)
        words: List[int] = []
        try:
            while len(words) < _WORDS_PER_LINE:
                if reader.read(1):
                    index = reader.read(self._index_bits)
                    if index >= len(self._values):
                        raise CompressionError("FVC index out of range")
                    words.append(self._values[index])
                else:
                    words.append(reader.read(32))
        except EOFError as exc:
            raise CompressionError("truncated FVC payload") from exc
        return b"".join(word.to_bytes(4, "little") for word in words)
