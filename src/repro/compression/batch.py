"""Vectorized batch compression: sizes for whole line populations at once.

The simulator's hot path only rarely needs a compressed *payload* — most
queries ("would this group fit one slot?", "how many bursts does this
line need?") consume the compressed **size**.  Sizes are where the paper's
evaluation spends its time too: CRAM and Pekhimenko's thesis both sweep
compression over whole-trace line populations.  This module computes
per-line sizes for a ``(n_lines, 64)`` uint8 numpy array in one shot.

Contract
--------

Every vectorized kernel (each algorithm's ``batch_sizes`` override) must
return **exactly** the sizes the scalar ``compressed_size`` reference
produces, line for line.  The scalar path is the specification; the
property/golden tests in ``tests/test_batch_compression.py`` enforce the
equivalence over random, patterned and adversarial corpora, and the
seven-design sim golden test proves a batch-driven run is bitwise
identical to a scalar one.

:class:`BatchCompressor` wraps one scalar algorithm and adds the glue the
simulator needs: bytes⇄array conversion, per-line size vectors, and
(for memoizing algorithms) seeding the shared size memo so subsequent
scalar ``compressed_size``/``cached_size`` queries become dict hits.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.compression.base import LINE_SIZE, CompressionAlgorithm


def lines_to_array(lines: Sequence[bytes]) -> np.ndarray:
    """Stack 64-byte lines into one ``(n, 64)`` uint8 array."""
    for line in lines:
        if len(line) != LINE_SIZE:
            raise ValueError(f"expected {LINE_SIZE}-byte lines, got {len(line)}")
    if not lines:
        return np.empty((0, LINE_SIZE), dtype=np.uint8)
    return np.frombuffer(b"".join(lines), dtype=np.uint8).reshape(-1, LINE_SIZE)


def array_to_lines(array: np.ndarray) -> List[bytes]:
    """Invert :func:`lines_to_array` (one ``bytes`` per row)."""
    array = check_batch(array)
    return [row.tobytes() for row in array]


def check_batch(lines) -> np.ndarray:
    """Validate/coerce a batch into a C-contiguous ``(n, 64)`` uint8 array."""
    array = np.ascontiguousarray(lines, dtype=np.uint8)
    if array.ndim != 2 or array.shape[1] != LINE_SIZE:
        raise ValueError(
            f"batch must have shape (n_lines, {LINE_SIZE}), got {array.shape}"
        )
    return array


def words_le(array: np.ndarray, width: int) -> np.ndarray:
    """Little-endian ``width``-byte elements of each line, as unsigned ints."""
    dtype = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}[width]
    return check_batch(array).view(dtype)


def words_be(array: np.ndarray, width: int) -> np.ndarray:
    """Big-endian ``width``-byte elements of each line, as unsigned ints."""
    dtype = {2: ">u2", 4: ">u4", 8: ">u8"}[width]
    return check_batch(array).view(dtype)


def finalize_sizes(total_bits: np.ndarray) -> np.ndarray:
    """Bit counts -> charged byte sizes (``LINE_SIZE`` when not smaller).

    Mirrors the scalar encoders: the bit stream is padded to whole bytes
    and a payload that does not beat the raw line returns ``None`` (size
    ``LINE_SIZE``).
    """
    nbytes = (total_bits.astype(np.int64) + 7) // 8
    return np.where(nbytes >= LINE_SIZE, LINE_SIZE, nbytes)


class BatchCompressor:
    """Batch front-end over one scalar :class:`CompressionAlgorithm`.

    ``sizes`` accepts either a ``(n, 64)`` uint8 array or a sequence of
    64-byte ``bytes`` and returns the per-line compressed sizes via the
    algorithm's vectorized kernel (scalar-loop fallback for algorithms
    without one).  ``precompute`` additionally pushes the results into
    the algorithm's size memo (when it has one), which is how the
    batch-driven simulator replaces per-access recompression with a
    single vectorized pass per trace chunk.
    """

    def __init__(self, algorithm: CompressionAlgorithm) -> None:
        self.algorithm = algorithm

    def sizes(self, lines) -> np.ndarray:
        """Per-line compressed sizes (``LINE_SIZE`` = incompressible)."""
        if isinstance(lines, np.ndarray):
            return self.algorithm.batch_sizes(lines)
        return self.algorithm.batch_sizes(lines_to_array(list(lines)))

    def precompute(self, lines: Iterable[bytes]) -> Optional[np.ndarray]:
        """Batch-compute sizes for ``lines`` and seed the size memo.

        Returns the size vector (``None`` for an empty batch).  Harmless
        for non-memoizing algorithms: the sizes are simply computed and
        dropped, so callers can wire the hook unconditionally.
        """
        distinct = list(dict.fromkeys(lines))
        seeder = getattr(self.algorithm, "seed_sizes", None)
        if seeder is not None:
            distinct = [line for line in distinct if self.algorithm.cached_size(line) is None]
        if not distinct:
            return None
        sizes = self.sizes(lines_to_array(distinct))
        if seeder is not None:
            seeder(distinct, sizes)
        return sizes


__all__ = [
    "BatchCompressor",
    "array_to_lines",
    "check_batch",
    "finalize_sizes",
    "lines_to_array",
    "words_be",
    "words_le",
]
