"""Shared enums and record types for the memory-compression controllers."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Dict, List


class Level(IntEnum):
    """Compression level of a line's residency in memory.

    The value equals the number of lines co-located in one 64-byte slot,
    matching the paper's "uncompressed / 2-to-1 / 4-to-1" terminology.
    """

    UNCOMPRESSED = 1
    PAIR = 2
    QUAD = 4


class Category(Enum):
    """Bandwidth accounting buckets for DRAM accesses.

    These are exactly the stack components the paper's bandwidth plots use:
    Fig. 4 splits table-based TMC into data / additional writes / metadata,
    and Fig. 14 splits PTMC into data / clean-evict+invalidate / mispredict.
    """

    DATA_READ = "data_read"
    DATA_WRITE = "data_write"
    METADATA_READ = "metadata_read"
    METADATA_WRITE = "metadata_write"
    MISPREDICT_READ = "mispredict_read"
    CLEAN_WRITEBACK = "clean_writeback"
    INVALIDATE_WRITE = "invalidate_write"
    PREFETCH_READ = "prefetch_read"
    MAINTENANCE = "maintenance"

    @property
    def is_write(self) -> bool:
        return self in (
            Category.DATA_WRITE,
            Category.METADATA_WRITE,
            Category.CLEAN_WRITEBACK,
            Category.INVALIDATE_WRITE,
        )


#: Categories that exist only because compression is enabled; the paper's
#: Dynamic-PTMC counts these as the "bandwidth cost of compression".
COMPRESSION_COST_CATEGORIES = frozenset(
    {Category.MISPREDICT_READ, Category.CLEAN_WRITEBACK, Category.INVALIDATE_WRITE}
)


@dataclass
class ReadResult:
    """Outcome of a controller read: the demanded line plus free co-fetches.

    ``extra_lines`` are neighbours streamed out of the same 64-byte slot at
    zero bandwidth cost (the paper installs them in L3).  ``accesses`` is
    the number of DRAM accesses performed, and ``completion`` the cycle at
    which the demanded data is available (after decompression latency).
    """

    addr: int
    data: bytes
    level: Level
    completion: int
    accesses: int = 1
    extra_lines: Dict[int, bytes] = field(default_factory=dict)
    mispredicted: bool = False


@dataclass
class WriteResult:
    """Outcome of a controller eviction/writeback operation."""

    writes: int = 0
    invalidates: int = 0
    clean_writebacks: int = 0
    level: Level = Level.UNCOMPRESSED
    #: line addresses whose LLC copies must also be dropped (ganged eviction)
    ganged: List[int] = field(default_factory=list)
