"""Lightweight span tracer exporting Chrome trace-event JSON.

One :class:`Tracer` collects timing events for a process — simulation
phases, batch-kernel precomputes, disk-cache reads/writes, sweep
batches, scheduler job lifecycles, HTTP requests — and serializes them
in the Chrome trace-event format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Instrumentation sites never hold a tracer reference.  They call the
module-level :func:`span` / :func:`instant` / :func:`counter` helpers,
which no-op (one global read, no allocation beyond a shared
``nullcontext``) unless a tracer has been installed with
:func:`set_tracer`.  That keeps the hot paths clean: an uninstrumented
run pays a predicate per call site, nothing more — and no site sits
inside the per-line-access simulation loop.

Every tracer carries a process-unique ``trace_id`` and hands each span
a monotonically increasing ``span_id``; the service's structured logs
embed both, so a Perfetto view and a log grep correlate on ids.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

#: Event phases this tracer emits (a subset of the Chrome format).
_PHASES = frozenset({"X", "i", "C", "b", "e", "M"})

#: Default bound on buffered events; beyond it new events are dropped
#: (and counted) so a long-lived daemon cannot grow without bound.
DEFAULT_MAX_EVENTS = 100_000


class Span:
    """Handle yielded by :meth:`Tracer.span`: ids for log correlation."""

    __slots__ = ("span_id", "trace_id")

    def __init__(self, span_id: int, trace_id: str) -> None:
        self.span_id = span_id
        self.trace_id = trace_id


class Tracer:
    """An in-memory Chrome trace-event collector (thread-safe)."""

    def __init__(
        self,
        process_name: str = "repro",
        trace_id: Optional[str] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.process_name = process_name
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.max_events = max_events
        self.dropped = 0
        self._origin_ns = time.perf_counter_ns()
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._next_span_id = 1
        self._pid = os.getpid()

    # -- recording -------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._origin_ns) / 1000.0

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    def _new_span_id(self) -> int:
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        return span_id

    @contextlib.contextmanager
    def span(self, name: str, category: str = "repro", **args: Any):
        """A complete ("X") event covering the ``with`` block."""
        span_id = self._new_span_id()
        start = self._now_us()
        try:
            yield Span(span_id, self.trace_id)
        finally:
            self._emit(
                {
                    "name": name,
                    "cat": category,
                    "ph": "X",
                    "ts": start,
                    "dur": self._now_us() - start,
                    "pid": self._pid,
                    "tid": threading.get_ident(),
                    "args": {**args, "span_id": span_id, "trace_id": self.trace_id},
                }
            )

    def instant(self, name: str, category: str = "repro", **args: Any) -> None:
        """A zero-duration marker ("i") at the current time."""
        self._emit(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "t",
                "ts": self._now_us(),
                "pid": self._pid,
                "tid": threading.get_ident(),
                "args": dict(args),
            }
        )

    def counter(self, name: str, values: Dict[str, float], category: str = "repro") -> None:
        """A counter track sample ("C"); ``values`` plot as stacked series."""
        self._emit(
            {
                "name": name,
                "cat": category,
                "ph": "C",
                "ts": self._now_us(),
                "pid": self._pid,
                "tid": threading.get_ident(),
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    def async_begin(self, name: str, async_id: str, category: str = "repro", **args: Any) -> None:
        """Open an async span ("b") — lifecycles that cross threads/calls."""
        self._emit(
            {
                "name": name,
                "cat": category,
                "ph": "b",
                "id": async_id,
                "ts": self._now_us(),
                "pid": self._pid,
                "tid": threading.get_ident(),
                "args": {**args, "trace_id": self.trace_id},
            }
        )

    def async_end(self, name: str, async_id: str, category: str = "repro", **args: Any) -> None:
        """Close an async span ("e") opened with :meth:`async_begin`."""
        self._emit(
            {
                "name": name,
                "cat": category,
                "ph": "e",
                "id": async_id,
                "ts": self._now_us(),
                "pid": self._pid,
                "tid": threading.get_ident(),
                "args": dict(args),
            }
        )

    # -- export ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def to_chrome(self) -> Dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object."""
        with self._lock:
            events = list(self._events)
            dropped = self.dropped
        tids = sorted({e["tid"] for e in events})
        metadata: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self._pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": self.process_name},
            }
        ]
        for index, tid in enumerate(tids):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self._pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": f"thread-{index}"},
                }
            )
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": self.trace_id,
                "process_name": self.process_name,
                "dropped_events": dropped,
            },
        }

    def write(self, path) -> int:
        """Serialize to ``path``; returns the number of events written."""
        payload = self.to_chrome()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        return len(payload["traceEvents"])


# -- the process-wide current tracer ------------------------------------

_current: Optional[Tracer] = None
_NULL_SPAN = Span(0, "")


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with ``None`` remove) the process-wide tracer."""
    global _current
    _current = tracer
    return tracer


def current_tracer() -> Optional[Tracer]:
    return _current


def span(name: str, category: str = "repro", **args: Any):
    """Span on the current tracer, or a shared no-op context manager."""
    tracer = _current
    if tracer is None:
        return contextlib.nullcontext(_NULL_SPAN)
    return tracer.span(name, category, **args)


def instant(name: str, category: str = "repro", **args: Any) -> None:
    tracer = _current
    if tracer is not None:
        tracer.instant(name, category, **args)


def counter(name: str, values: Dict[str, float], category: str = "repro") -> None:
    tracer = _current
    if tracer is not None:
        tracer.counter(name, values, category)


def async_begin(name: str, async_id: str, category: str = "repro", **args: Any) -> None:
    tracer = _current
    if tracer is not None:
        tracer.async_begin(name, async_id, category, **args)


def async_end(name: str, async_id: str, category: str = "repro", **args: Any) -> None:
    tracer = _current
    if tracer is not None:
        tracer.async_end(name, async_id, category, **args)


# -- validation ----------------------------------------------------------


def validate_chrome_trace(payload: Any) -> int:
    """Validate a Chrome trace-event JSON object; returns the event count.

    Checks the envelope and every event's required fields — the schema
    Perfetto's legacy JSON importer expects.  Raises ``ValueError`` with
    the first offending event on any violation.  Used by the trace tests
    and the CI ``obs-smoke`` job.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: X event needs non-negative dur")
        if phase in ("b", "e") and not isinstance(event.get("id"), str):
            raise ValueError(f"{where}: async event needs a string id")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ValueError(f"{where}: C event args must be numeric")
        if phase == "M" and "name" not in event.get("args", {}):
            raise ValueError(f"{where}: metadata event needs args.name")
    return len(events)


__all__ = [
    "DEFAULT_MAX_EVENTS",
    "Span",
    "Tracer",
    "async_begin",
    "async_end",
    "counter",
    "current_tracer",
    "instant",
    "set_tracer",
    "span",
    "validate_chrome_trace",
]
