"""Observability: time-series sampling, span tracing, standard exposition.

Three coordinated layers over the telemetry registry (DESIGN.md §11):

- **Sampling** (:mod:`repro.obs.sampler`) — an :class:`IntervalSampler`
  snapshots a run's :class:`~repro.telemetry.StatRegistry` every N
  line-accesses into a phase-resolved :class:`TimeSeries` carried on
  :class:`~repro.sim.results.SimResult` (``repro timeline`` renders it).
- **Tracing** (:mod:`repro.obs.tracing`) — ``span()`` context managers
  record Chrome trace-event JSON (Perfetto-loadable) across trace
  decode, batch kernels, disk-cache I/O, sweep batches, scheduler job
  lifecycles, and HTTP requests; trace/span ids correlate into logs.
- **Exposition** (:mod:`repro.obs.prometheus`, :mod:`repro.obs.logging`)
  — Prometheus text format for ``GET /metrics?format=prometheus`` and
  structured JSON logs for the daemon.

Everything here is strictly read-only over the simulation: the
seven-design golden test proves an instrumented run is bitwise-identical
to an uninstrumented one.
"""

from repro.obs.logging import StructuredLog
from repro.obs.prometheus import prometheus_exposition
from repro.obs.sampler import IntervalSampler, ObsConfig
from repro.obs.timeseries import TimeSeries, TimeSeriesDecodeError, TimeSeriesPoint
from repro.obs.tracing import (
    Tracer,
    counter,
    current_tracer,
    instant,
    set_tracer,
    span,
    validate_chrome_trace,
)

__all__ = [
    "IntervalSampler",
    "ObsConfig",
    "StructuredLog",
    "TimeSeries",
    "TimeSeriesDecodeError",
    "TimeSeriesPoint",
    "Tracer",
    "counter",
    "current_tracer",
    "instant",
    "prometheus_exposition",
    "set_tracer",
    "span",
    "validate_chrome_trace",
]
