"""Interval sampling of the simulation's stat registry.

The :class:`IntervalSampler` turns the registry's one-shot
snapshot/delta protocol into a phase-resolved time series: the
simulator calls :meth:`IntervalSampler.on_access` once per line-access
and every ``interval`` accesses the sampler windows every registered
stat against the previous sample, appending a
:class:`~repro.obs.timeseries.TimeSeriesPoint`.

Two rules keep the series faithful to the run's phase structure:

- :meth:`mark_phase` (called by the simulator at the warmup boundary)
  flushes the partial interval as a final point of the *old* phase, so
  no point ever mixes warmup and measured traffic, and
- :meth:`finish` flushes whatever partial interval remains at the end
  of the run, so short runs (interval longer than the run) still yield
  one point per phase they executed.

Sampling is strictly read-only over sourced counters, so an
instrumented run is bitwise-identical to an uninstrumented one (the
``tests/test_obs_golden.py`` seven-design golden test enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs import tracing
from repro.obs.timeseries import TimeSeries, TimeSeriesPoint
from repro.telemetry import StatRegistry


@dataclass(frozen=True)
class ObsConfig:
    """Per-run observability options.

    Deliberately *not* part of :class:`~repro.sim.config.SimConfig`:
    observability must never perturb simulation, so it must never
    participate in result identity — two runs differing only in their
    sampling settings share one disk-cache key.
    """

    #: line-accesses between samples; ``0`` disables sampling entirely
    sample_interval: int = 0
    #: restrict sampled metrics to these registry paths (``None`` = all)
    sample_paths: Optional[Tuple[str, ...]] = None
    #: headline counter deltas mirrored onto the active tracer as Chrome
    #: counter-track events, correlating the time series with spans
    trace_counters: Tuple[str, ...] = (
        "dram.reads",
        "dram.writes",
        "llc.hits",
        "llc.misses",
    )

    @property
    def sampling(self) -> bool:
        return self.sample_interval > 0


class IntervalSampler:
    """Snapshots a :class:`StatRegistry` every N line-accesses."""

    def __init__(
        self,
        registry: StatRegistry,
        interval: int,
        paths: Optional[Tuple[str, ...]] = None,
        phase: str = "warmup",
        trace_counters: Tuple[str, ...] = (),
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive (0 disables)")
        self.registry = registry
        self.interval = interval
        self.paths = paths
        self.phase = phase
        self.trace_counters = trace_counters
        self.accesses = 0
        self._since_sample = 0
        self._base = registry.snapshot()
        self._points: list = []

    # -- the simulator-facing protocol -----------------------------------

    def on_access(self) -> None:
        """Count one line-access; sample when the interval fills."""
        self.accesses += 1
        self._since_sample += 1
        if self._since_sample >= self.interval:
            self._sample()

    def mark_phase(self, phase: str) -> None:
        """Flush the partial interval and switch to a new phase.

        Called exactly at the warmup boundary, after the simulator's own
        baseline snapshot: the flushed point closes the old phase so no
        interval straddles the boundary, and the fresh base aligns the
        first measured point with the simulator's measurement window.
        """
        if self._since_sample > 0:
            self._sample()
        else:
            # nothing accumulated, but re-base so the first point of the
            # new phase cannot reach back across the boundary
            self._base = self.registry.snapshot()
        self.phase = phase

    def finish(self) -> None:
        """Flush whatever partial interval the end of the run leaves."""
        if self._since_sample > 0:
            self._sample()

    # -- internals -------------------------------------------------------

    def _sample(self) -> None:
        metrics = self.registry.delta(self._base)
        if self.paths is not None:
            metrics = {path: metrics[path] for path in self.paths if path in metrics}
        self._points.append(
            TimeSeriesPoint(accesses=self.accesses, phase=self.phase, metrics=metrics)
        )
        self._base = self.registry.snapshot()
        self._since_sample = 0
        if self.trace_counters:
            values = {
                path: float(metrics[path])
                for path in self.trace_counters
                if path in metrics
            }
            if values:
                tracing.counter("sim.sample", values, category="sim")

    def timeseries(self) -> TimeSeries:
        """The series collected so far (points are shared, not copied)."""
        return TimeSeries(interval=self.interval, points=self._points)


__all__ = ["IntervalSampler", "ObsConfig"]
